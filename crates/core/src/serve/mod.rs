//! Sweep-as-a-service: a persistent daemon over the sweep engine.
//!
//! One-shot `noc-cli sweep-grid` pays full simulation cost for every
//! scenario on every invocation. This module turns the sweep engine into a
//! long-lived service so repeated work is never recomputed:
//!
//! * [`cache`] — content-addressed result cache with single-flight
//!   deduplication (also usable standalone via `sweep-grid --cache`);
//! * [`protocol`] — the line-delimited JSON wire protocol;
//! * [`scheduler`] — admission-controlled fair-share scheduling over a
//!   persistent worker pool;
//! * [`daemon`] — the `std::net` TCP daemon and the blocking client.
//!
//! The whole stack leans on one invariant, pinned since PR 1: a scenario's
//! result bytes are a pure function of its label, config, and window
//! budgets. That is what makes a cache hit indistinguishable from a fresh
//! run, and what lets two concurrent clients submitting the same grid
//! receive byte-identical response streams while only one simulation runs.

pub mod cache;
pub mod daemon;
pub mod protocol;
pub mod scheduler;

pub use cache::{
    scenario_cache_key, CacheKey, CacheOutcome, CacheStats, ResultCache, CACHE_SCHEMA_VERSION,
};
pub use daemon::{Daemon, ServeClient, ServeConfig};
pub use protocol::{ErrorCode, Event, Request, SchedulerStats};
pub use scheduler::{JobId, Scheduler, SchedulerConfig};
