//! Error types for the simulator.

use std::error::Error;
use std::fmt;

/// Errors produced while building or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A configuration value is invalid (zero sizes, inconsistent limits, ...).
    InvalidConfig(String),
    /// A node id is outside the topology.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Number of nodes in the topology.
        nodes: usize,
    },
    /// A V/F level index is outside the configured table.
    VfLevelOutOfRange {
        /// The offending level index.
        level: usize,
        /// Number of levels in the table.
        levels: usize,
    },
    /// A region index is outside the configured partitioning.
    RegionOutOfRange {
        /// The offending region index.
        region: usize,
        /// Number of regions.
        regions: usize,
    },
    /// A trace or phase schedule is malformed.
    InvalidTrace(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::NodeOutOfRange { node, nodes } => {
                write!(
                    f,
                    "node {node} out of range for topology with {nodes} nodes"
                )
            }
            SimError::VfLevelOutOfRange { level, levels } => {
                write!(
                    f,
                    "V/F level {level} out of range for table with {levels} levels"
                )
            }
            SimError::RegionOutOfRange { region, regions } => {
                write!(f, "region {region} out of range for {regions} regions")
            }
            SimError::InvalidTrace(msg) => write!(f, "invalid trace: {msg}"),
        }
    }
}

impl Error for SimError {}

/// Convenience result alias used throughout the crate.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = SimError::InvalidConfig("mesh width must be > 0".into());
        assert_eq!(
            e.to_string(),
            "invalid configuration: mesh width must be > 0"
        );
        let e = SimError::NodeOutOfRange {
            node: 99,
            nodes: 64,
        };
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains("64"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error>() {}
        assert_err::<SimError>();
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<SimError>();
        assert_sync::<SimError>();
    }
}
