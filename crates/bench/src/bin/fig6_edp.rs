//! Fig 6 — energy-delay product (the paper's headline figure of merit).
//!
//! Expected shape: DRL lowest EDP overall, especially at low-mid load where
//! static-max wastes energy and static-min wastes latency.

use noc_bench::comparison::run_or_load;
use noc_bench::{fmt, print_table, save_csv, save_markdown, Scale};
use std::collections::BTreeMap;

fn main() {
    let scale = Scale::from_env();
    let points = run_or_load(scale);
    let mut rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.pattern.clone(),
                format!("{:.3}", p.rate),
                p.controller.clone(),
                fmt(p.agg.edp / 1e6), // µJ·cycles-ish scale for readability
            ]
        })
        .collect();
    rows.sort();
    let headers = ["pattern", "rate", "controller", "EDP (×10⁶ pJ·cycles)"];
    let md = print_table("Fig 6 — energy-delay product", &headers, &rows);
    save_csv("fig6_edp", &headers, &rows);
    save_markdown("fig6_edp", &md);

    // Who wins per (pattern, rate)?
    let mut wins: BTreeMap<String, usize> = BTreeMap::new();
    let mut keys: Vec<(String, f64)> = points.iter().map(|p| (p.pattern.clone(), p.rate)).collect();
    keys.sort_by(|a, b| a.partial_cmp(b).expect("no NaN rates"));
    keys.dedup();
    let mut win_rows = Vec::new();
    for (pattern, rate) in keys {
        let best = points
            .iter()
            .filter(|p| p.pattern == pattern && p.rate == rate && p.agg.edp.is_finite())
            .min_by(|a, b| a.agg.edp.partial_cmp(&b.agg.edp).expect("finite EDP"));
        if let Some(best) = best {
            *wins.entry(best.controller.clone()).or_default() += 1;
            win_rows.push(vec![pattern, format!("{rate:.3}"), best.controller.clone()]);
        }
    }
    print_table(
        "Fig 6b — lowest-EDP controller per point",
        &["pattern", "rate", "winner"],
        &win_rows,
    );
    let tally: Vec<Vec<String>> = wins
        .into_iter()
        .map(|(c, n)| vec![c, n.to_string()])
        .collect();
    print_table("Fig 6c — win tally", &["controller", "wins"], &tally);
}
