//! # noc-sim — a cycle-level network-on-chip simulator
//!
//! The evaluation substrate for the *Deep Reinforcement Learning for
//! Self-Configurable NoC* (SOCC 2020) reproduction. Everything is built from
//! scratch: wormhole switching with virtual channels and credit-based flow
//! control, eight routing algorithms, classic synthetic traffic patterns,
//! per-region DVFS with an event-energy power model, and the warmup /
//! measure / drain methodology.
//!
//! ## Quick start
//!
//! ```
//! use noc_sim::{SimConfig, Simulator, TrafficPattern};
//!
//! # fn main() -> Result<(), noc_sim::SimError> {
//! let config = SimConfig::default()
//!     .with_size(4, 4)
//!     .with_traffic(TrafficPattern::Uniform, 0.1);
//! let mut sim = Simulator::new(config)?;
//! let summary = sim.run_classic(500, 2000, 2000);
//! println!(
//!     "avg latency {:.1} cycles at throughput {:.3} flits/node/cycle",
//!     summary.window.avg_packet_latency, summary.window.throughput
//! );
//! # Ok(())
//! # }
//! ```
//!
//! ## Architecture
//!
//! * [`topology`] — mesh/torus grids, ports, neighbor wiring.
//! * [`flit`] — packets and their flit segmentation.
//! * [`routing`] — XY/YX, three turn models, Odd-Even, torus DOR and
//!   torus minimal-adaptive.
//! * [`vc`] / [`arbiter`] / [`router`] — the three-stage VC router pipeline.
//! * [`soa`] — the flat structure-of-arrays fabric state the pipeline runs
//!   on; partition tiles are contiguous slices of it.
//! * [`traffic`] — composable workloads: phase schedules binding patterns
//!   to injection processes (Bernoulli, bursty, pulsed), plus traces.
//! * [`dvfs`] / [`power`] — V/F levels, regions, clock gating, event energy.
//! * [`fault`] — timed link/router failures, fault-aware rerouting support.
//! * [`network`] — the router grid, links, injection queues, cycle loop.
//! * [`stats`] / [`sim`] — metrics and the simulation driver.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arbiter;
pub mod config;
pub mod dvfs;
pub mod error;
pub mod fault;
pub mod flit;
pub mod network;
pub mod power;
pub mod router;
pub mod routing;
pub mod sim;
pub mod soa;
pub mod stats;
pub mod topology;
pub mod trace;
pub mod traffic;
pub mod vc;

pub use config::{SimConfig, SwitchArb};
pub use dvfs::{ClockGate, RegionMap, ThrottleEvent, VfLevel, VfTable};
pub use error::{SimError, SimResult};
pub use fault::{FaultEvent, FaultPlan, FaultTarget, LinkState};
pub use flit::{Flit, FlitKind, Packet, PacketId};
pub use network::Network;
pub use power::{EnergyMeter, PowerEvent, PowerModel};
pub use routing::{RoutingAlgorithm, RoutingTables};
pub use sim::{RunSummary, Simulator};
pub use soa::{FabricState, FabricTile};
pub use stats::{EnergySink, StatsCollector, StatsOp, StatsSnapshot, WindowMetrics};
pub use topology::{Coord, NodeId, Port, Topology, TopologyKind};
pub use trace::{PacketTrace, TraceEvent};
pub use traffic::{
    InjectionProcess, LengthSpec, TrafficGenerator, TrafficPattern, TrafficSpec, WorkloadPhase,
    WorkloadSpec,
};
