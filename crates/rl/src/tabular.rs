//! Tabular Q-learning baseline with uniform state discretization.
//!
//! The "shallow RL" comparator of the evaluation: continuous features are
//! quantized into a small number of bins per dimension and a Q-table is
//! learned with the standard one-step Q-learning rule.

use crate::env::LearningAgent;
use crate::replay::Transition;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Tabular Q-learning hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TabularConfig {
    /// Observation dimensionality.
    pub state_dim: usize,
    /// Number of discrete actions.
    pub num_actions: usize,
    /// Bins per state dimension (features are assumed in `[lo, hi]`).
    pub bins: usize,
    /// Lower feature bound for quantization.
    pub lo: f32,
    /// Upper feature bound for quantization.
    pub hi: f32,
    /// Learning rate α.
    pub alpha: f64,
    /// Discount factor γ.
    pub gamma: f64,
}

impl Default for TabularConfig {
    fn default() -> Self {
        TabularConfig {
            state_dim: 1,
            num_actions: 2,
            bins: 4,
            lo: 0.0,
            hi: 1.0,
            alpha: 0.1,
            gamma: 0.95,
        }
    }
}

/// A tabular Q-learning agent over a discretized state space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TabularQ {
    config: TabularConfig,
    #[serde(with = "table_serde")]
    table: HashMap<Vec<u16>, Vec<f64>>,
    updates: u64,
}

/// JSON maps require string keys; (de)serialize the Q-table as an entry list.
mod table_serde {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::HashMap;

    pub fn serialize<S: Serializer>(
        table: &HashMap<Vec<u16>, Vec<f64>>,
        ser: S,
    ) -> Result<S::Ok, S::Error> {
        // Sorted by key so the serialized form is a pure function of the
        // table's contents, not of `HashMap` iteration order — trained
        // artifacts must be byte-identical across runs.
        let mut entries: Vec<(&Vec<u16>, &Vec<f64>)> = table.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        entries.serialize(ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        de: D,
    ) -> Result<HashMap<Vec<u16>, Vec<f64>>, D::Error> {
        let entries: Vec<(Vec<u16>, Vec<f64>)> = Vec::deserialize(de)?;
        Ok(entries.into_iter().collect())
    }
}

impl TabularQ {
    /// Build a fresh agent.
    ///
    /// # Panics
    /// Panics if dimensions, bins, or bounds are degenerate.
    pub fn new(config: TabularConfig) -> Self {
        assert!(
            config.state_dim > 0 && config.num_actions > 0,
            "dimensions must be positive"
        );
        assert!(config.bins > 0, "need at least one bin");
        assert!(config.hi > config.lo, "hi must exceed lo");
        TabularQ {
            config,
            table: HashMap::new(),
            updates: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TabularConfig {
        &self.config
    }

    /// Number of distinct discretized states visited.
    pub fn num_states(&self) -> usize {
        self.table.len()
    }

    /// Number of Q-updates applied.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Quantize a continuous observation into a bin-index key.
    pub fn discretize(&self, state: &[f32]) -> Vec<u16> {
        let c = &self.config;
        state
            .iter()
            .map(|&x| {
                let t = ((x - c.lo) / (c.hi - c.lo)).clamp(0.0, 1.0);
                (((t * c.bins as f32) as usize).min(c.bins - 1)) as u16
            })
            .collect()
    }

    /// Q-values of a (discretized) state; zeros for unvisited states.
    pub fn q_values(&self, state: &[f32]) -> Vec<f64> {
        let key = self.discretize(state);
        self.table
            .get(&key)
            .cloned()
            .unwrap_or_else(|| vec![0.0; self.config.num_actions])
    }

    /// Greedy action.
    pub fn greedy_action(&self, state: &[f32]) -> usize {
        let q = self.q_values(state);
        let mut best = 0;
        for (i, &v) in q.iter().enumerate() {
            if v > q[best] {
                best = i;
            }
        }
        best
    }

    fn entry(&mut self, key: Vec<u16>) -> &mut Vec<f64> {
        let n = self.config.num_actions;
        self.table.entry(key).or_insert_with(|| vec![0.0; n])
    }

    /// One Q-learning update from a transition. Returns the absolute TD
    /// error.
    pub fn update(&mut self, t: &Transition) -> f64 {
        let key = self.discretize(&t.state);
        let next_key = self.discretize(&t.next_state);
        let bootstrap = if t.done {
            0.0
        } else {
            self.table
                .get(&next_key)
                .map(|q| q.iter().copied().fold(f64::NEG_INFINITY, f64::max))
                .unwrap_or(0.0)
        };
        let c = self.config.clone();
        let q = self.entry(key);
        let td = t.reward as f64 + c.gamma * bootstrap - q[t.action];
        q[t.action] += c.alpha * td;
        self.updates += 1;
        td.abs()
    }
}

impl LearningAgent for TabularQ {
    fn act(&mut self, state: &[f32], epsilon: f64, rng: &mut StdRng) -> usize {
        if rng.gen::<f64>() < epsilon {
            rng.gen_range(0..self.config.num_actions)
        } else {
            self.greedy_action(state)
        }
    }

    /// Tabular Q-learning is fully online: the transition is consumed
    /// immediately rather than stored.
    fn observe(&mut self, transition: Transition) {
        self.update(&transition);
    }

    fn train_step(&mut self, _rng: &mut StdRng) -> Option<f32> {
        None // learning happens in observe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(s: f32, a: usize, r: f32, s2: f32, done: bool) -> Transition {
        Transition {
            state: vec![s],
            action: a,
            reward: r,
            next_state: vec![s2],
            done,
        }
    }

    #[test]
    fn discretization_buckets_the_range() {
        let q = TabularQ::new(TabularConfig {
            bins: 4,
            ..TabularConfig::default()
        });
        assert_eq!(q.discretize(&[0.0]), vec![0]);
        assert_eq!(q.discretize(&[0.3]), vec![1]);
        assert_eq!(q.discretize(&[0.6]), vec![2]);
        assert_eq!(q.discretize(&[1.0]), vec![3]);
        // Out-of-range clamps.
        assert_eq!(q.discretize(&[-5.0]), vec![0]);
        assert_eq!(q.discretize(&[5.0]), vec![3]);
    }

    #[test]
    fn update_moves_q_toward_target() {
        let mut q = TabularQ::new(TabularConfig {
            alpha: 0.5,
            ..TabularConfig::default()
        });
        q.update(&t(0.0, 1, 1.0, 0.9, true));
        assert_eq!(q.q_values(&[0.0])[1], 0.5);
        q.update(&t(0.0, 1, 1.0, 0.9, true));
        assert_eq!(q.q_values(&[0.0])[1], 0.75);
    }

    #[test]
    fn bootstraps_from_next_state() {
        let mut q = TabularQ::new(TabularConfig {
            alpha: 1.0,
            gamma: 0.5,
            ..TabularConfig::default()
        });
        // Make Q(next, ·) = [0, 2].
        q.update(&t(0.9, 1, 2.0, 0.0, true));
        // Non-terminal update bootstraps: target = 1 + 0.5·2 = 2.
        q.update(&t(0.0, 0, 1.0, 0.9, false));
        assert_eq!(q.q_values(&[0.0])[0], 2.0);
    }

    #[test]
    fn solves_a_two_state_chain() {
        // States {0, 1} on [0,1] with 2 bins; action 1 moves right, goal at 1.
        let mut q = TabularQ::new(TabularConfig {
            bins: 2,
            alpha: 0.3,
            gamma: 0.9,
            ..TabularConfig::default()
        });
        for _ in 0..200 {
            q.update(&t(0.0, 1, 0.0, 1.0, false));
            q.update(&t(1.0, 1, 1.0, 1.0, true));
            q.update(&t(0.0, 0, 0.0, 0.0, false));
        }
        assert!(q.greedy_action(&[0.0]) == 1);
        assert!(q.greedy_action(&[1.0]) == 1);
        assert!((q.q_values(&[1.0])[1] - 1.0).abs() < 0.05);
        assert!((q.q_values(&[0.0])[1] - 0.9).abs() < 0.1);
    }

    #[test]
    fn act_is_epsilon_greedy() {
        let mut q = TabularQ::new(TabularConfig::default());
        q.update(&t(0.0, 1, 1.0, 0.0, true));
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(q.act(&[0.0], 0.0, &mut rng), 1);
        let explored: Vec<usize> = (0..100).map(|_| q.act(&[0.0], 1.0, &mut rng)).collect();
        assert!(explored.contains(&0) && explored.contains(&1));
    }

    #[test]
    fn serialization_roundtrips_via_json() {
        let mut q = TabularQ::new(TabularConfig::default());
        q.update(&t(0.0, 1, 1.0, 0.9, true));
        q.update(&t(0.9, 0, -0.5, 0.0, false));
        let json = serde_json::to_string(&q).unwrap();
        let back: TabularQ = serde_json::from_str(&json).unwrap();
        assert_eq!(back.q_values(&[0.0]), q.q_values(&[0.0]));
        assert_eq!(back.num_states(), q.num_states());
        assert_eq!(back.updates(), q.updates());
    }

    #[test]
    fn state_count_grows_with_coverage() {
        let mut q = TabularQ::new(TabularConfig {
            bins: 10,
            ..TabularConfig::default()
        });
        for i in 0..10 {
            q.update(&t(i as f32 / 10.0 + 0.05, 0, 0.0, 0.0, true));
        }
        assert_eq!(q.num_states(), 10);
        assert_eq!(q.updates(), 10);
    }
}
