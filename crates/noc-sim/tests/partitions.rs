//! Differential guarantees of partitioned stepping.
//!
//! The tentpole claim: `Network::step` over `p` spatial tiles produces stats
//! *byte-identical* to the serial stepper, for every partition count, on
//! every topology, routing algorithm, workload, and fault plan the simulator
//! supports. The proptest below samples that whole space and diffs the full
//! `StatsCollector` (every counter, the latency histogram, the energy meter)
//! both structurally and through its serialized bytes. Golden pins and
//! liveness checks nail the property to concrete big-fabric scenarios so a
//! regression cannot hide behind generator bias.

use noc_sim::{
    FaultEvent, FaultPlan, FaultTarget, InjectionProcess, NodeId, Port, RoutingAlgorithm,
    SimConfig, Simulator, StatsCollector, Topology, TopologyKind, TrafficPattern, TrafficSpec,
    WorkloadPhase, WorkloadSpec,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draw an arbitrary valid workload over a `num_nodes`-node fabric: 1–3
/// phases mixing named patterns, hotspots, and every injection process.
fn arb_workload(seed: u64, num_nodes: usize) -> WorkloadSpec {
    let mut r = StdRng::seed_from_u64(seed);
    let n = r.gen_range(1usize..4);
    let phases = (0..n)
        .map(|i| {
            let pattern = if r.gen_range(0usize..8) < 7 {
                TrafficPattern::NAMED[r.gen_range(0usize..7)].1.clone()
            } else {
                TrafficPattern::Hotspot {
                    hotspots: (0..r.gen_range(1usize..4))
                        .map(|_| NodeId(r.gen_range(0usize..num_nodes)))
                        .collect(),
                    fraction: r.gen_range(0.0f64..=1.0),
                }
            };
            let process = match r.gen_range(0usize..3) {
                0 => InjectionProcess::Bernoulli {
                    rate: r.gen_range(0.0f64..=0.3),
                },
                1 => InjectionProcess::Bursty {
                    rate_on: r.gen_range(0.0f64..=0.4),
                    switch: r.gen_range(0.001f64..=1.0),
                },
                _ => {
                    let period = r.gen_range(1u64..500);
                    InjectionProcess::Periodic {
                        rate: r.gen_range(0.0f64..=0.3),
                        period,
                        on: r.gen_range(1u64..=period),
                    }
                }
            };
            let cycles = if i + 1 == n && r.gen::<bool>() {
                0 // unbounded terminal hold
            } else {
                r.gen_range(1u64..400)
            };
            WorkloadPhase::new(pattern, process, cycles)
        })
        .collect();
    WorkloadSpec::new(phases)
}

/// Run `cfg` under `partitions` tiles and return the final collector.
fn run_partitioned(cfg: &SimConfig, partitions: usize, cycles: u64) -> StatsCollector {
    let mut sim =
        Simulator::new(cfg.clone().with_partitions(partitions)).expect("valid partitioned config");
    sim.run(cycles);
    sim.stats().clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The differential harness: partitions ∈ {2, 4} vs serial, over
    /// sampled topology kind, fabric size, routing algorithm, workload
    /// spec, fault plan, and seed. Both the structural comparison and the
    /// serialized bytes must match exactly — f64 sums included, which is
    /// only possible if the parallel stepper replays the serial mutation
    /// order bit for bit.
    #[test]
    fn partitioned_step_is_byte_identical_to_serial(
        seed in 0u64..10_000,
        size_sel in 0usize..2,
        torus in any::<bool>(),
        route_sel in 0usize..3,
        num_faults in 0usize..3,
        wl_seed in 0u64..1_000_000,
    ) {
        // Square power-of-two fabrics only: the sampled workloads include
        // bit-reverse/shuffle (power-of-two node count) and transpose
        // (square grid) patterns, which reject anything else.
        let (w, h) = [(4usize, 4usize), (8, 8)][size_sel];
        let routing = if torus {
            [
                RoutingAlgorithm::TorusDor,
                RoutingAlgorithm::TorusMinAdaptive,
                RoutingAlgorithm::TorusDor,
            ][route_sel]
        } else {
            [
                RoutingAlgorithm::Xy,
                RoutingAlgorithm::OddEven,
                RoutingAlgorithm::WestFirst,
            ][route_sel]
        };
        let mut cfg = SimConfig::default()
            .with_size(w, h)
            .with_regions(2, 2)
            .with_workload(arb_workload(wl_seed, w * h))
            .with_routing(routing)
            .with_seed(seed);
        cfg.kind = if torus { TopologyKind::Torus } else { TopologyKind::Mesh };
        if num_faults > 0 {
            let topo = match cfg.kind {
                TopologyKind::Mesh => Topology::mesh(w, h),
                TopologyKind::Torus => Topology::torus(w, h),
            };
            cfg = cfg.with_faults(FaultPlan::random_links(
                &topo,
                num_faults,
                seed ^ 0xF001,
                50,
                None,
            ));
        }
        let serial = run_partitioned(&cfg, 1, 400);
        let serial_bytes = serde_json::to_string(&serial).expect("stats serialize");
        for p in [2usize, 4] {
            let tiled = run_partitioned(&cfg, p, 400);
            prop_assert_eq!(&tiled, &serial, "partitions={} diverged structurally", p);
            let tiled_bytes = serde_json::to_string(&tiled).expect("stats serialize");
            prop_assert_eq!(
                &tiled_bytes, &serial_bytes,
                "partitions={} diverged in serialized bytes", p
            );
        }
    }
}

/// Golden pin of a partitioned 16×16 run: exact counters and f64 sums for
/// 4 tiles on a uniform-load mesh. Any change to tile carving, boundary
/// exchange, or the log-replay commit order shows up here as a concrete
/// diff, independent of the differential property above.
#[test]
fn partitioned_16x16_golden_metrics() {
    let cfg = SimConfig::default()
        .with_size(16, 16)
        .with_traffic(TrafficPattern::Uniform, 0.10)
        .with_seed(42)
        .with_partitions(4);
    let mut sim = Simulator::new(cfg).expect("valid 16x16 config");
    sim.run(1_000);
    let s = sim.stats();
    assert_eq!(
        (
            s.offered_packets,
            s.injected_flits,
            s.ejected_flits,
            s.ejected_packets,
            s.dropped_flits,
        ),
        (4_997, 24_937, 24_074, 4_804, 0),
        "partitioned 16x16 counters drifted"
    );
    assert_eq!(
        (s.sum_packet_latency, s.sum_network_latency, s.sum_hops),
        (207_681.0, 206_179.0, 50_823.0),
        "partitioned 16x16 latency sums drifted"
    );
    assert_eq!(
        s.energy.total_pj(),
        1_478_453.3499950438,
        "partitioned 16x16 energy drifted"
    );
    // And the golden run itself must equal its serial twin, bytewise.
    let serial = run_partitioned(
        &SimConfig::default()
            .with_size(16, 16)
            .with_traffic(TrafficPattern::Uniform, 0.10)
            .with_seed(42),
        1,
        1_000,
    );
    assert_eq!(s, &serial, "golden partitioned run must match serial");
}

/// Liveness at scale: a doubly-faulted 16×16 torus stepped in 4 partitions
/// drains completely — every offered packet delivered or counted dropped,
/// nothing wedged behind a tile boundary.
#[test]
fn partitioned_faulted_torus_delivers_or_drops() {
    let mut cfg = SimConfig::default()
        .with_size(16, 16)
        .with_traffic(TrafficPattern::Uniform, 0.05)
        .with_routing(RoutingAlgorithm::TorusMinAdaptive)
        .with_partitions(4)
        .with_seed(11);
    cfg.kind = TopologyKind::Torus;
    cfg = cfg.with_faults(
        FaultPlan::new(vec![
            FaultEvent {
                start: 0,
                duration: None,
                // A wrap link out of the east edge: crosses no tile
                // boundary (tiles are row bands) but exercises the dateline.
                target: FaultTarget::Link {
                    node: NodeId(15),
                    port: Port::East,
                },
            },
            FaultEvent {
                start: 0,
                duration: None,
                // A southbound link out of row 3 into row 4: crosses the
                // tile 0 / tile 1 boundary of the 4-partition carve.
                target: FaultTarget::Link {
                    node: NodeId(3 * 16 + 7),
                    port: Port::South,
                },
            },
        ])
        .unwrap(),
    );
    let mut sim = Simulator::new(cfg).expect("valid faulted torus");
    sim.run(2_000);
    sim.set_traffic(TrafficSpec::stationary(TrafficPattern::Uniform, 0.0))
        .expect("valid spec");
    let mut budget = 8_000u64;
    while sim.network().in_flight() > 0 {
        assert!(budget > 0, "partitioned faulted torus wedged");
        sim.run(100);
        budget = budget.saturating_sub(100);
    }
    let s = sim.stats();
    assert!(s.offered_packets > 500, "too little traffic to judge");
    assert_eq!(
        s.offered_packets,
        s.ejected_packets + s.dropped_packets,
        "every offered packet must be delivered or counted dropped"
    );
}

/// Fault placement relative to tile boundaries is invisible: a fault on a
/// link that crosses tiles and a fault on a link interior to one tile both
/// reproduce their serial runs exactly. The boundary exchange may not treat
/// severed cross-tile wires differently from intra-tile ones.
#[test]
fn cross_tile_and_intra_tile_faults_match_serial() {
    // 8x8 mesh in 4 partitions: tiles are 16-router bands (rows 0-1, 2-3,
    // 4-5, 6-7). Node 12's South link (row 1 -> row 2) crosses tiles;
    // node 4's South link (row 0 -> row 1) stays inside tile 0.
    for (node, port, what) in [
        (NodeId(12), Port::South, "cross-tile"),
        (NodeId(4), Port::South, "intra-tile"),
    ] {
        let cfg = SimConfig::default()
            .with_traffic(TrafficPattern::Uniform, 0.10)
            .with_routing(RoutingAlgorithm::OddEven)
            .with_seed(7)
            .with_faults(
                FaultPlan::new(vec![FaultEvent {
                    start: 200,
                    duration: None,
                    target: FaultTarget::Link { node, port },
                }])
                .unwrap(),
            );
        let serial = run_partitioned(&cfg, 1, 2_000);
        for p in [2usize, 4] {
            let tiled = run_partitioned(&cfg, p, 2_000);
            assert_eq!(
                tiled, serial,
                "{what} fault diverged from serial at partitions={p}"
            );
        }
        assert!(
            serial.dropped_flits > 0,
            "{what} fault scenario must actually drop traffic"
        );
    }
}

/// The `u64::MAX` sentinel of `latency_percentile` never leaks into any
/// rendered figure: a histogram whose tail mass sits in the open-ended
/// overflow bucket formats as a saturated `> <edge>` display at every
/// percentile, raw digits never.
#[test]
fn latency_percentile_sentinel_never_renders_raw() {
    let mut s = StatsCollector::new(4);
    // Push the whole latency mass into the overflow bucket.
    let overflow = s.latency_hist.len() - 1;
    s.latency_hist[overflow] = 100;
    s.latency_samples = 100;
    for p in [0.5, 0.95, 0.99, 1.0] {
        let shown = s.latency_percentile_display(p);
        assert!(
            !shown.contains("18446744073709551615"),
            "p{p} leaked the raw u64::MAX sentinel: {shown}"
        );
        assert!(
            shown.starts_with("> "),
            "overflowed percentile must render saturated, got: {shown}"
        );
    }
    assert_eq!(
        s.latency_percentile(0.95),
        u64::MAX,
        "numeric API keeps the sentinel"
    );
}
