//! Content-addressed result cache with single-flight deduplication.
//!
//! The sweep engine's determinism contract (same scenario label + config ⇒
//! same report bytes, pinned since PR 1 and re-pinned by every axis PR) means
//! a finished [`ScenarioResult`] is a pure function of its inputs — so it
//! never has to be computed twice. This module turns that guarantee into a
//! cache:
//!
//! * **Content-addressed keys.** [`scenario_cache_key`] hashes the canonical
//!   scenario label *plus the full canonical JSON of the resolved
//!   `SimConfig`* (with the byte-identity-neutral `partitions` knob
//!   normalized out), the pinned DVFS level, and the warmup/measure/drain
//!   window budgets. Hashing the whole serialized config — rather than a
//!   hand-picked field list — makes the key complete by construction: any
//!   new behavior-affecting field (e.g. PR 8's `switch_arb` and per-phase
//!   `LengthSpec`s) lands in the hash the moment it lands in serde, with no
//!   audit to forget. The only excluded field is `partitions`, whose
//!   byte-identity is pinned by the partition differential harness.
//! * **Two tiers.** An in-memory index (everything this process resolved)
//!   over an optional on-disk store `<dir>/<key>.json` shared across
//!   processes and daemon restarts. Disk writes go through a
//!   temp-file-plus-rename so concurrent readers never observe torn JSON.
//! * **Single-flight.** N concurrent requests for one key trigger exactly
//!   one simulation; the rest block on a condvar and reuse the result. If
//!   the computing thread fails, one waiter is promoted to retry.
//!
//! Cache I/O failures are soft everywhere except construction:
//! [`ResultCache::open`] probes writability up front (a daemon with an
//! unwritable cache directory should refuse to start, not panic mid-job),
//! while runtime write/parse failures are counted in [`CacheStats`] and the
//! result is served from the computation — a degraded cache never fails a
//! job.

use crate::sweep::{Scenario, ScenarioResult};
use noc_sim::SimResult;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Bumped whenever the cached artifact's schema or the key derivation
/// changes; part of the hashed text, so stale on-disk entries from older
/// layouts simply miss instead of deserializing wrongly.
pub const CACHE_SCHEMA_VERSION: u32 = 1;

/// A content-addressed cache key: 128 bits of FNV-1a over the scenario's
/// canonical identity, rendered as 32 hex digits (also the on-disk file
/// stem, so keys never need escaping).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey(String);

impl CacheKey {
    /// The hex digest as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// 64-bit FNV-1a over `bytes`, seeded with `h` (two different seeds give
/// the two independent halves of the 128-bit key).
pub(crate) fn fnv1a64(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derive the content-addressed key of one resolved sweep scenario.
///
/// The hashed text is: schema version, canonical scenario label, canonical
/// JSON of the config with `partitions` normalized to 1 (its byte-identity
/// is pinned — caching across partition counts is the point), the pinned
/// DVFS level, and the window budgets. Everything that can change the
/// result bytes is inside; nothing that cannot is.
pub fn scenario_cache_key(scenario: &Scenario, warmup: u64, measure: u64, drain: u64) -> CacheKey {
    let mut config = scenario.config.clone();
    config.partitions = 1;
    let config_json = serde_json::to_string(&config).expect("SimConfig serializes");
    let text = format!(
        "v{CACHE_SCHEMA_VERSION}\n{}\n{config_json}\nlevel={:?}\nw{warmup}/m{measure}/d{drain}",
        scenario.label, scenario.level
    );
    let bytes = text.as_bytes();
    CacheKey(format!(
        "{:016x}{:016x}",
        fnv1a64(bytes, 0xCBF2_9CE4_8422_2325),
        fnv1a64(bytes, 0x6C62_272E_07BB_0142)
    ))
}

/// How a [`ResultCache::get_or_compute`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the in-memory index.
    MemoryHit,
    /// Loaded from the on-disk store.
    DiskHit,
    /// Computed fresh (and stored).
    Computed,
    /// Another thread computed it while this one waited (single-flight).
    Coalesced,
}

/// Monotone cache counters, serializable for the daemon's `stats` reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct CacheStats {
    /// Hits served from the in-memory index.
    pub memory_hits: u64,
    /// Hits loaded from the on-disk store.
    pub disk_hits: u64,
    /// Requests coalesced onto another thread's in-flight computation.
    pub coalesced: u64,
    /// Fresh computations (each one is exactly one simulation run).
    pub computed: u64,
    /// On-disk entries that failed to write (soft: the result is still
    /// served; the entry is simply not persisted).
    pub write_errors: u64,
    /// On-disk entries that failed to parse (soft: treated as misses and
    /// overwritten).
    pub read_errors: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.memory_hits + self.disk_hits + self.coalesced + self.computed
    }
}

#[derive(Default)]
struct CacheIndex {
    /// Finished results by key.
    done: HashMap<String, ScenarioResult>,
    /// Keys currently being computed by some thread.
    inflight: HashSet<String>,
}

/// The two-tier, single-flight result cache. Cheap to share behind an
/// `Arc`; all methods take `&self`.
pub struct ResultCache {
    dir: Option<PathBuf>,
    index: Mutex<CacheIndex>,
    flight_cv: Condvar,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    coalesced: AtomicU64,
    computed: AtomicU64,
    write_errors: AtomicU64,
    read_errors: AtomicU64,
    tmp_counter: AtomicU64,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("dir", &self.dir)
            .field("stats", &self.stats())
            .finish()
    }
}

impl ResultCache {
    /// A memory-only cache (no persistence) — what the bench harness and
    /// most tests use.
    pub fn in_memory() -> Self {
        ResultCache {
            dir: None,
            index: Mutex::new(CacheIndex::default()),
            flight_cv: Condvar::new(),
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            read_errors: AtomicU64::new(0),
            tmp_counter: AtomicU64::new(0),
        }
    }

    /// Open (creating if needed) an on-disk cache at `dir`, probing
    /// writability up front.
    ///
    /// # Errors
    /// Returns the underlying I/O error when the directory cannot be
    /// created or written — callers (the daemon, `sweep-grid --cache`)
    /// should refuse to start rather than degrade silently.
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        // Probe: an unwritable directory must fail here, not mid-job.
        let probe = dir.join(".write_probe");
        std::fs::write(&probe, b"probe")?;
        std::fs::remove_file(&probe)?;
        let mut cache = ResultCache::in_memory();
        cache.dir = Some(dir.to_path_buf());
        Ok(cache)
    }

    /// The on-disk store directory, if this cache has one.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            computed: self.computed.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            read_errors: self.read_errors.load(Ordering::Relaxed),
        }
    }

    fn entry_path(&self, key: &CacheKey) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{key}.json")))
    }

    /// Probe the disk tier. Parse failures are counted and treated as
    /// misses (the entry will be rewritten).
    fn load_disk(&self, key: &CacheKey) -> Option<ScenarioResult> {
        let path = self.entry_path(key)?;
        let text = std::fs::read_to_string(path).ok()?;
        match serde_json::from_str::<ScenarioResult>(&text) {
            Ok(result) => Some(result),
            Err(_) => {
                self.read_errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persist an entry via temp-file + rename so concurrent readers never
    /// observe torn JSON. Failures are soft (counted, result still served).
    fn store_disk(&self, key: &CacheKey, result: &ScenarioResult) {
        let Some(path) = self.entry_path(key) else {
            return;
        };
        let json = serde_json::to_string(result).expect("ScenarioResult serializes");
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        let ok =
            std::fs::write(&tmp, json.as_bytes()).is_ok() && std::fs::rename(&tmp, &path).is_ok();
        if !ok {
            let _ = std::fs::remove_file(&tmp);
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Resolve `key`, computing at most once across all concurrent callers.
    ///
    /// Lookup order: memory index → on-disk store → `compute`. While one
    /// thread computes, other callers of the same key block and reuse its
    /// result ([`CacheOutcome::Coalesced`]); if the computation fails, one
    /// waiter is promoted to retry and the error is returned to the
    /// original caller only.
    ///
    /// # Errors
    /// Propagates `compute`'s error (cache tiers never fail a lookup).
    pub fn get_or_compute<F>(
        &self,
        key: &CacheKey,
        compute: F,
    ) -> SimResult<(ScenarioResult, CacheOutcome)>
    where
        F: FnOnce() -> SimResult<ScenarioResult>,
    {
        let mut waited = false;
        {
            let mut index = self.index.lock().expect("cache index poisoned");
            loop {
                if let Some(result) = index.done.get(key.as_str()) {
                    let (counter, outcome) = if waited {
                        (&self.coalesced, CacheOutcome::Coalesced)
                    } else {
                        (&self.memory_hits, CacheOutcome::MemoryHit)
                    };
                    counter.fetch_add(1, Ordering::Relaxed);
                    return Ok((result.clone(), outcome));
                }
                if index.inflight.insert(key.as_str().to_string()) {
                    break; // this thread owns the computation
                }
                index = self.flight_cv.wait(index).expect("cache index poisoned");
                waited = true;
            }
        }
        // This thread owns the in-flight slot; make sure it is released on
        // every exit path (including compute errors).
        if let Some(result) = self.load_disk(key) {
            self.finish(key, &result);
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((result, CacheOutcome::DiskHit));
        }
        match compute() {
            Ok(result) => {
                self.store_disk(key, &result);
                self.finish(key, &result);
                self.computed.fetch_add(1, Ordering::Relaxed);
                Ok((result, CacheOutcome::Computed))
            }
            Err(e) => {
                // Release the slot so a waiter can retry; wake them all.
                let mut index = self.index.lock().expect("cache index poisoned");
                index.inflight.remove(key.as_str());
                drop(index);
                self.flight_cv.notify_all();
                Err(e)
            }
        }
    }

    /// Publish a finished result and wake single-flight waiters.
    fn finish(&self, key: &CacheKey, result: &ScenarioResult) {
        let mut index = self.index.lock().expect("cache index poisoned");
        index.inflight.remove(key.as_str());
        index.done.insert(key.as_str().to_string(), result.clone());
        drop(index);
        self.flight_cv.notify_all();
    }
}
