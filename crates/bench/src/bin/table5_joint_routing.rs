//! Table 5 (extension) — joint DVFS + routing self-configuration.
//!
//! The paper's future-work direction: let the agent pick the routing
//! algorithm *and* a uniform V/F level (`ActionSpace::LevelAndRouting`),
//! then compare against the DVFS-only policy and the static baselines on
//! adversarial traffic where adaptive routing matters (transpose, hotspot).
//!
//! Expected shape: on transpose past mid-load, the joint policy switches to
//! odd-even routing and beats the DVFS-only policy's EDP; on uniform they
//! tie (XY is already optimal there).

use noc_bench::{configs, fmt, print_table, save_csv, save_markdown, train_or_load, Scale};
use noc_selfconf::{run_controller, ActionSpace, NocEnvConfig, StaticController};
use noc_sim::{RoutingAlgorithm, TrafficPattern};

fn main() {
    let scale = Scale::from_env();
    let sim = configs::mesh8();

    // Train the joint policy.
    let mut env_cfg: NocEnvConfig = configs::train_env(sim.clone(), 21);
    env_cfg.action_space = ActionSpace::LevelAndRouting {
        num_levels: sim.vf_table.num_levels(),
        routings: vec![RoutingAlgorithm::Xy, RoutingAlgorithm::OddEven],
    };
    let mut train = configs::train_budget(scale, 21);
    train.episodes = scale.pick(100, 2);
    let joint = train_or_load(
        "mesh8_joint_routing",
        env_cfg,
        configs::dqn_default(21),
        train,
    );

    // The DVFS-only policy for comparison (shared cache with figs 4-6).
    let dvfs_only = train_or_load(
        "mesh8_drl",
        configs::train_env(sim.clone(), 7),
        configs::dqn_default(7),
        configs::train_budget(scale, 7),
    );

    let epochs = scale.pick(40usize, 3);
    let epoch_cycles = scale.pick(500u64, 200);
    let workloads = [
        ("uniform@0.10", TrafficPattern::Uniform, 0.10),
        ("transpose@0.14", TrafficPattern::Transpose, 0.14),
        ("transpose@0.20", TrafficPattern::Transpose, 0.20),
        ("hotspot@0.10", configs::hotspot(), 0.10),
    ];

    let mut rows = Vec::new();
    for (wname, pattern, rate) in &workloads {
        let cfg = sim.clone().with_traffic(pattern.clone(), *rate);
        let mut entries: Vec<(String, Box<dyn noc_selfconf::Controller>)> = vec![
            ("static-max".into(), Box::new(StaticController::max())),
            (
                "drl-dvfs".into(),
                dvfs_only.controller().expect("cached policy deploys"),
            ),
            (
                "drl-joint".into(),
                joint.controller().expect("cached policy deploys"),
            ),
        ];
        for (label, controller) in entries.iter_mut() {
            let run = run_controller(&cfg, controller.as_mut(), epochs, epoch_cycles)
                .expect("valid configuration");
            rows.push(vec![
                wname.to_string(),
                label.clone(),
                fmt(run.aggregate.avg_latency),
                fmt(run.aggregate.energy_pj / 1e3),
                fmt(run.aggregate.edp / 1e6),
                fmt(run.aggregate.mean_level),
            ]);
        }
    }
    let headers = [
        "workload",
        "controller",
        "avg latency",
        "energy (nJ)",
        "EDP (×10⁶)",
        "mean level",
    ];
    let md = print_table(
        "Table 5 — joint DVFS + routing control (extension)",
        &headers,
        &rows,
    );
    save_csv("table5_joint_routing", &headers, &rows);
    save_markdown("table5_joint_routing", &md);
}
