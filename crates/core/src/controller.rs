//! Runtime controllers: the trained DRL policy and every baseline the
//! evaluation compares against.
//!
//! A controller sees the last epoch's telemetry and the current per-region
//! V/F levels and returns the level vector for the next epoch (and
//! optionally a routing choice).

use crate::action::ActionSpace;
use crate::state::StateEncoder;
use noc_sim::{RoutingAlgorithm, WindowMetrics};
use rl::{DqnAgent, TabularQ};
use std::fmt;

/// What a controller wants the next epoch to look like.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlDecision {
    /// Target V/F level per region.
    pub levels: Vec<usize>,
    /// Routing switch, if the controller manages routing.
    pub routing: Option<RoutingAlgorithm>,
}

/// A runtime configuration policy. `Send` so experiment harnesses can
/// evaluate controllers on worker threads.
pub trait Controller: Send {
    /// Short name used in experiment tables.
    fn name(&self) -> &str;

    /// Decide the next configuration given the last epoch's telemetry and
    /// the current per-region levels (`num_levels` entries are valid:
    /// `0..num_levels`).
    fn decide(
        &mut self,
        metrics: &WindowMetrics,
        levels: &[usize],
        num_levels: usize,
    ) -> ControlDecision;
}

impl fmt::Debug for dyn Controller + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Controller({})", self.name())
    }
}

/// Holds every region at one fixed level. `StaticController::max` is the
/// performance baseline, `StaticController::min` the energy floor.
#[derive(Debug, Clone)]
pub struct StaticController {
    name: String,
    level: LevelChoice,
}

#[derive(Debug, Clone, Copy)]
enum LevelChoice {
    Max,
    Min,
    Fixed(usize),
}

impl StaticController {
    /// Always run at the nominal (fastest) level.
    pub fn max() -> Self {
        StaticController {
            name: "static-max".into(),
            level: LevelChoice::Max,
        }
    }

    /// Always run at the lowest level.
    pub fn min() -> Self {
        StaticController {
            name: "static-min".into(),
            level: LevelChoice::Min,
        }
    }

    /// Always run at a fixed level index.
    pub fn fixed(level: usize) -> Self {
        StaticController {
            name: format!("static-{level}"),
            level: LevelChoice::Fixed(level),
        }
    }
}

impl Controller for StaticController {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(
        &mut self,
        _metrics: &WindowMetrics,
        levels: &[usize],
        num_levels: usize,
    ) -> ControlDecision {
        let l = match self.level {
            LevelChoice::Max => num_levels - 1,
            LevelChoice::Min => 0,
            LevelChoice::Fixed(l) => l.min(num_levels - 1),
        };
        ControlDecision {
            levels: vec![l; levels.len()],
            routing: None,
        }
    }
}

/// The classic reactive DVFS heuristic: per region, raise the level when
/// buffer occupancy exceeds `high`, lower it when occupancy falls below
/// `low` (hysteresis band in between holds). Because wormhole flow control
/// pushes congestion back into the *source queues* rather than router
/// buffers, the controller additionally jumps every region to the top level
/// while the per-node source backlog exceeds `backlog_high` flits.
///
/// ```
/// use noc_selfconf::{run_controller, ThresholdController};
/// use noc_sim::{SimConfig, Simulator};
///
/// let cfg = SimConfig::default().with_size(4, 4).with_regions(2, 2);
/// let net = Simulator::new(cfg.clone())?;
/// let mut heuristic = ThresholdController::new(
///     net.network().region_capacity(),
///     net.network().topology().num_nodes(),
/// );
/// let run = run_controller(&cfg, &mut heuristic, 4, 100)?;
/// assert_eq!(run.epochs.len(), 4);
/// # Ok::<(), noc_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ThresholdController {
    /// Occupancy fraction above which the region speeds up.
    pub high: f64,
    /// Occupancy fraction below which the region slows down.
    pub low: f64,
    /// Source backlog (flits per node) above which every region jumps to
    /// the top level.
    pub backlog_high: f64,
    /// Buffer capacity per region (normalizer).
    region_capacity: Vec<usize>,
    /// Node count (normalizer for the backlog trigger).
    num_nodes: usize,
}

impl ThresholdController {
    /// Standard thresholds: raise above 10 % occupancy, lower below 2 %,
    /// panic to maximum when source queues back up past 1 flit/node.
    pub fn new(region_capacity: Vec<usize>, num_nodes: usize) -> Self {
        ThresholdController {
            high: 0.10,
            low: 0.02,
            backlog_high: 1.0,
            region_capacity,
            num_nodes: num_nodes.max(1),
        }
    }

    /// Custom occupancy thresholds.
    ///
    /// # Panics
    /// Panics unless `0 <= low < high <= 1`.
    pub fn with_thresholds(
        region_capacity: Vec<usize>,
        num_nodes: usize,
        low: f64,
        high: f64,
    ) -> Self {
        assert!(
            0.0 <= low && low < high && high <= 1.0,
            "need 0 <= low < high <= 1"
        );
        ThresholdController {
            high,
            low,
            backlog_high: 1.0,
            region_capacity,
            num_nodes: num_nodes.max(1),
        }
    }
}

impl Controller for ThresholdController {
    fn name(&self) -> &str {
        "threshold"
    }

    fn decide(
        &mut self,
        metrics: &WindowMetrics,
        levels: &[usize],
        num_levels: usize,
    ) -> ControlDecision {
        // Saturation escape hatch: source queues backing up means the
        // network is under-clocked regardless of buffer occupancy.
        if metrics.avg_backlog / self.num_nodes as f64 > self.backlog_high {
            return ControlDecision {
                levels: vec![num_levels - 1; levels.len()],
                routing: None,
            };
        }
        let out = levels
            .iter()
            .enumerate()
            .map(|(r, &l)| {
                let cap = self.region_capacity.get(r).copied().unwrap_or(1).max(1) as f64;
                let occ = metrics.region_occupancy.get(r).copied().unwrap_or(0.0) / cap;
                if occ > self.high {
                    (l + 1).min(num_levels - 1)
                } else if occ < self.low {
                    l.saturating_sub(1)
                } else {
                    l
                }
            })
            .collect();
        ControlDecision {
            levels: out,
            routing: None,
        }
    }
}

/// The trained deep-RL policy: encodes telemetry with the shared
/// [`StateEncoder`], queries the DQN greedily, and translates the action
/// through the [`ActionSpace`].
#[derive(Debug)]
pub struct DrlController {
    agent: DqnAgent,
    encoder: StateEncoder,
    action_space: ActionSpace,
    name: String,
}

impl DrlController {
    /// Wrap a trained agent.
    ///
    /// # Panics
    /// Panics if the agent's dimensions disagree with the encoder/action
    /// space.
    pub fn new(agent: DqnAgent, encoder: StateEncoder, action_space: ActionSpace) -> Self {
        assert_eq!(
            agent.config().state_dim,
            encoder.state_dim(),
            "state dim mismatch"
        );
        assert_eq!(
            agent.config().num_actions,
            action_space.num_actions(),
            "action count mismatch"
        );
        DrlController {
            agent,
            encoder,
            action_space,
            name: "drl".into(),
        }
    }

    /// The wrapped agent (e.g. for checkpointing).
    pub fn agent(&self) -> &DqnAgent {
        &self.agent
    }

    /// The greedy action the policy would take for the given telemetry.
    pub fn action_for(&self, metrics: &WindowMetrics, levels: &[usize]) -> usize {
        let state = self.encoder.encode(metrics, levels);
        self.agent.greedy_action(&state)
    }
}

impl Controller for DrlController {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(
        &mut self,
        metrics: &WindowMetrics,
        levels: &[usize],
        _num_levels: usize,
    ) -> ControlDecision {
        let action = self.action_for(metrics, levels);
        ControlDecision {
            levels: self.action_space.levels_after(action, levels),
            routing: self.action_space.routing_after(action),
        }
    }
}

/// The tabular Q-learning baseline wrapped as a controller.
#[derive(Debug)]
pub struct TabularController {
    agent: TabularQ,
    encoder: StateEncoder,
    action_space: ActionSpace,
}

impl TabularController {
    /// Wrap a trained tabular agent.
    ///
    /// # Panics
    /// Panics if the agent's dimensions disagree with the encoder/action
    /// space.
    pub fn new(agent: TabularQ, encoder: StateEncoder, action_space: ActionSpace) -> Self {
        assert_eq!(
            agent.config().state_dim,
            encoder.state_dim(),
            "state dim mismatch"
        );
        assert_eq!(
            agent.config().num_actions,
            action_space.num_actions(),
            "action count mismatch"
        );
        TabularController {
            agent,
            encoder,
            action_space,
        }
    }
}

impl Controller for TabularController {
    fn name(&self) -> &str {
        "tabular-q"
    }

    fn decide(
        &mut self,
        metrics: &WindowMetrics,
        levels: &[usize],
        _num_levels: usize,
    ) -> ControlDecision {
        let state = self.encoder.encode(metrics, levels);
        let action = self.agent.greedy_action(&state);
        ControlDecision {
            levels: self.action_space.levels_after(action, levels),
            routing: self.action_space.routing_after(action),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics_with_occupancy(occ: Vec<f64>) -> WindowMetrics {
        WindowMetrics {
            cycles: 100,
            offered_packets: 0,
            injection_burstiness: 0.0,
            phase_cycles: vec![],
            phase_offered_packets: vec![],
            injected_flits: 0,
            injected_packets: 0,
            ejected_flits: 0,
            ejected_packets: 0,
            dropped_flits: 0,
            dropped_packets: 0,
            avg_dead_links: 0.0,
            latency_samples: 0,
            avg_packet_latency: f64::NAN,
            avg_network_latency: f64::NAN,
            avg_hops: f64::NAN,
            throughput: 0.0,
            injection_rate: 0.0,
            energy_pj: 0.0,
            dynamic_pj: 0.0,
            leakage_pj: 0.0,
            avg_occupancy: occ.iter().sum(),
            region_injected_flits: vec![0; occ.len()],
            region_occupancy: occ,
            avg_backlog: 0.0,
        }
    }

    #[test]
    fn static_controllers_pin_levels() {
        let m = metrics_with_occupancy(vec![0.0; 4]);
        let mut hi = StaticController::max();
        let mut lo = StaticController::min();
        let mut two = StaticController::fixed(2);
        assert_eq!(hi.decide(&m, &[0, 1, 2, 3], 4).levels, vec![3; 4]);
        assert_eq!(lo.decide(&m, &[0, 1, 2, 3], 4).levels, vec![0; 4]);
        assert_eq!(two.decide(&m, &[0, 1, 2, 3], 4).levels, vec![2; 4]);
        assert_eq!(hi.name(), "static-max");
    }

    #[test]
    fn threshold_raises_on_congestion_and_lowers_when_idle() {
        let mut c = ThresholdController::new(vec![100; 2], 16);
        // Region 0 congested (40%), region 1 idle (1%).
        let m = metrics_with_occupancy(vec![40.0, 1.0]);
        let d = c.decide(&m, &[1, 2], 4);
        assert_eq!(d.levels, vec![2, 1]);
    }

    #[test]
    fn threshold_holds_inside_hysteresis_band() {
        let mut c = ThresholdController::new(vec![100; 1], 16);
        let m = metrics_with_occupancy(vec![5.0]); // between 2% and 10%
        assert_eq!(c.decide(&m, &[2], 4).levels, vec![2]);
    }

    #[test]
    fn threshold_saturates_at_bounds() {
        let mut c = ThresholdController::new(vec![100; 1], 16);
        let hot = metrics_with_occupancy(vec![90.0]);
        assert_eq!(c.decide(&hot, &[3], 4).levels, vec![3]);
        let cold = metrics_with_occupancy(vec![0.0]);
        assert_eq!(c.decide(&cold, &[0], 4).levels, vec![0]);
    }

    #[test]
    fn threshold_panics_to_max_on_backlog() {
        let mut c = ThresholdController::new(vec![100; 2], 16);
        let mut m = metrics_with_occupancy(vec![0.0, 0.0]);
        m.avg_backlog = 100.0; // > 1 flit/node on 16 nodes
        assert_eq!(c.decide(&m, &[0, 1], 4).levels, vec![3, 3]);
    }

    #[test]
    #[should_panic(expected = "low < high")]
    fn bad_thresholds_panic() {
        let _ = ThresholdController::with_thresholds(vec![1], 16, 0.5, 0.2);
    }

    #[test]
    fn drl_controller_translates_actions() {
        use rl::DqnConfig;
        let encoder = StateEncoder::new(vec![100; 4], vec![4; 4], 4, 16);
        let space = ActionSpace::PerRegionDelta {
            num_regions: 4,
            num_levels: 4,
        };
        let agent =
            DqnAgent::new(DqnConfig::default().with_dims(encoder.state_dim(), space.num_actions()));
        let mut c = DrlController::new(agent, encoder, space);
        let m = metrics_with_occupancy(vec![1.0; 4]);
        let d = c.decide(&m, &[2, 2, 2, 2], 4);
        assert_eq!(d.levels.len(), 4);
        assert!(d.levels.iter().all(|&l| l < 4));
        // Deterministic: same input, same decision.
        assert_eq!(d, c.decide(&m, &[2, 2, 2, 2], 4));
        assert_eq!(c.name(), "drl");
    }

    #[test]
    fn tabular_controller_translates_actions() {
        use rl::TabularConfig;
        let encoder = StateEncoder::new(vec![100; 4], vec![4; 4], 4, 16);
        let space = ActionSpace::UniformLevel { num_levels: 4 };
        let agent = TabularQ::new(TabularConfig {
            state_dim: encoder.state_dim(),
            num_actions: space.num_actions(),
            ..TabularConfig::default()
        });
        let mut c = TabularController::new(agent, encoder, space);
        let m = metrics_with_occupancy(vec![1.0; 4]);
        let d = c.decide(&m, &[2, 2, 2, 2], 4);
        assert_eq!(
            d.levels,
            vec![0; 4],
            "untrained table is greedy toward action 0"
        );
    }
}
