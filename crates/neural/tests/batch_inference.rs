//! Property tests pinning the batched-inference fast path to the
//! per-sample reference path: `predict_batch` must be exactly (bitwise)
//! row-equivalent to `predict_one`, for any architecture and input, because
//! both run the same f32 operations in the same order — only the packing
//! differs.

use neural::{Activation, Matrix, Mlp};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `predict_batch` row `i` is bitwise-identical to `predict_one` of
    /// state `i`, across architectures, activations, batch sizes, and seeds.
    #[test]
    fn predict_batch_matches_rowwise_predict_one(
        in_dim in 1usize..6,
        hidden in 1usize..12,
        out_dim in 1usize..5,
        seed in 0u64..1000,
        act_idx in 0usize..3,
        rows in prop::collection::vec(
            prop::collection::vec(-3.0f32..3.0, 1..6),
            1..9,
        ),
    ) {
        let act = [Activation::Relu, Activation::Tanh, Activation::Sigmoid][act_idx];
        let net = Mlp::new(&[in_dim, hidden, out_dim], act, Activation::Linear, seed);
        // Re-shape the generated rows to the sampled input width.
        let states: Vec<Vec<f32>> = rows
            .iter()
            .map(|r| (0..in_dim).map(|j| r[j % r.len()]).collect())
            .collect();
        let batch = net.predict_batch(&states);
        prop_assert_eq!(batch.rows(), states.len());
        prop_assert_eq!(batch.cols(), out_dim);
        for (i, s) in states.iter().enumerate() {
            let one = net.predict_one(s);
            prop_assert_eq!(
                batch.row_slice(i),
                one.as_slice(),
                "row {} diverges from predict_one",
                i
            );
        }
    }

    /// `Matrix::from_rows` packs row-major without reordering.
    #[test]
    fn from_rows_is_row_major(
        rows in prop::collection::vec(
            prop::collection::vec(-10.0f32..10.0, 3..4),
            1..8,
        ),
    ) {
        let m = Matrix::from_rows(&rows);
        prop_assert_eq!(m.rows(), rows.len());
        prop_assert_eq!(m.cols(), 3);
        for (i, r) in rows.iter().enumerate() {
            prop_assert_eq!(m.row_slice(i), r.as_slice());
        }
    }
}

#[test]
#[should_panic(expected = "equal length")]
fn from_rows_rejects_ragged_rows() {
    let _ = Matrix::from_rows(&[vec![1.0, 2.0], vec![1.0]]);
}

#[test]
#[should_panic(expected = "at least one row")]
fn from_rows_rejects_empty() {
    let rows: Vec<Vec<f32>> = vec![];
    let _ = Matrix::from_rows(&rows);
}
