//! Trace-driven traffic: replay an explicit packet schedule instead of a
//! stochastic pattern.
//!
//! The closest stand-in for application traces (see DESIGN.md substitution
//! 1): a [`PacketTrace`] is an ordered list of `(cycle, src, dst, len)`
//! events, optionally repeating, loadable from and storable to a simple CSV
//! format (`cycle,src,dst,len` per line, `#` comments allowed).

use crate::error::{SimError, SimResult};
use crate::topology::{NodeId, Topology};
use serde::{Deserialize, Serialize};

/// One packet creation event in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Cycle (within the trace period) at which the packet is created.
    pub cycle: u64,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Packet length in flits.
    pub len_flits: u32,
}

/// An explicit packet schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketTrace {
    /// Events sorted by cycle.
    events: Vec<TraceEvent>,
    /// Repeat period in cycles. `None` plays the trace once; `Some(p)`
    /// replays it every `p` cycles (`p` must cover the last event).
    pub repeat_every: Option<u64>,
}

impl PacketTrace {
    /// Build a trace from events (sorted internally by cycle).
    ///
    /// # Errors
    /// Returns an error if any event is degenerate (`src == dst`, zero
    /// length) or the repeat period does not cover the last event.
    pub fn new(mut events: Vec<TraceEvent>, repeat_every: Option<u64>) -> SimResult<Self> {
        for e in &events {
            if e.src == e.dst {
                return Err(SimError::InvalidTrace(format!(
                    "self-addressed packet at cycle {}",
                    e.cycle
                )));
            }
            if e.len_flits == 0 {
                return Err(SimError::InvalidTrace(format!(
                    "zero-length packet at cycle {}",
                    e.cycle
                )));
            }
        }
        events.sort_by_key(|e| e.cycle);
        if let (Some(p), Some(last)) = (repeat_every, events.last()) {
            if p <= last.cycle {
                return Err(SimError::InvalidTrace(format!(
                    "repeat period {p} does not cover the last event at cycle {}",
                    last.cycle
                )));
            }
        }
        Ok(PacketTrace {
            events,
            repeat_every,
        })
    }

    /// The events, sorted by cycle.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events per period.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Check all nodes are inside the topology.
    ///
    /// # Errors
    /// Returns the first out-of-range node.
    pub fn validate(&self, topo: &Topology) -> SimResult<()> {
        let n = topo.num_nodes();
        for e in &self.events {
            for node in [e.src, e.dst] {
                if node.0 >= n {
                    return Err(SimError::NodeOutOfRange {
                        node: node.0,
                        nodes: n,
                    });
                }
            }
        }
        Ok(())
    }

    /// The events scheduled at absolute cycle `t`, honoring the repeat
    /// period.
    pub fn events_at(&self, t: u64) -> &[TraceEvent] {
        let cycle = match self.repeat_every {
            Some(p) => t % p,
            None => t,
        };
        if self.repeat_every.is_none() && t != cycle {
            return &[];
        }
        let start = self.events.partition_point(|e| e.cycle < cycle);
        let end = self.events.partition_point(|e| e.cycle <= cycle);
        &self.events[start..end]
    }

    /// Parse the CSV format: one `cycle,src,dst,len` per line; blank lines
    /// and lines starting with `#` are skipped.
    ///
    /// # Errors
    /// Returns an error describing the first malformed line.
    pub fn from_csv(text: &str, repeat_every: Option<u64>) -> SimResult<Self> {
        let mut events = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            if fields.len() != 4 {
                return Err(SimError::InvalidTrace(format!(
                    "line {}: expected `cycle,src,dst,len`, got `{line}`",
                    lineno + 1
                )));
            }
            let parse = |s: &str, what: &str| {
                s.parse::<u64>().map_err(|e| {
                    SimError::InvalidTrace(format!("line {}: bad {what}: {e}", lineno + 1))
                })
            };
            events.push(TraceEvent {
                cycle: parse(fields[0], "cycle")?,
                src: NodeId(parse(fields[1], "src")? as usize),
                dst: NodeId(parse(fields[2], "dst")? as usize),
                len_flits: parse(fields[3], "len")? as u32,
            });
        }
        PacketTrace::new(events, repeat_every)
    }

    /// Render the CSV format parsed by [`PacketTrace::from_csv`].
    pub fn to_csv(&self) -> String {
        let mut out = String::from("# cycle,src,dst,len\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{},{},{}\n",
                e.cycle, e.src.0, e.dst.0, e.len_flits
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, src: usize, dst: usize) -> TraceEvent {
        TraceEvent {
            cycle,
            src: NodeId(src),
            dst: NodeId(dst),
            len_flits: 2,
        }
    }

    #[test]
    fn events_are_sorted_and_queryable() {
        let t = PacketTrace::new(vec![ev(5, 0, 1), ev(2, 1, 2), ev(5, 2, 3)], None).unwrap();
        assert_eq!(t.events()[0].cycle, 2);
        assert_eq!(t.events_at(2).len(), 1);
        assert_eq!(t.events_at(5).len(), 2);
        assert!(t.events_at(3).is_empty());
        assert!(t.events_at(100).is_empty(), "non-repeating trace ends");
    }

    #[test]
    fn repeating_trace_wraps() {
        let t = PacketTrace::new(vec![ev(1, 0, 1)], Some(10)).unwrap();
        assert_eq!(t.events_at(1).len(), 1);
        assert_eq!(t.events_at(11).len(), 1);
        assert_eq!(t.events_at(21).len(), 1);
        assert!(t.events_at(12).is_empty());
    }

    #[test]
    fn degenerate_events_rejected() {
        assert!(PacketTrace::new(vec![ev(0, 1, 1)], None).is_err());
        let mut bad = ev(0, 0, 1);
        bad.len_flits = 0;
        assert!(PacketTrace::new(vec![bad], None).is_err());
        // Period shorter than the trace.
        assert!(PacketTrace::new(vec![ev(9, 0, 1)], Some(5)).is_err());
    }

    #[test]
    fn validate_checks_topology_bounds() {
        let topo = Topology::mesh(2, 2);
        let ok = PacketTrace::new(vec![ev(0, 0, 3)], None).unwrap();
        assert!(ok.validate(&topo).is_ok());
        let bad = PacketTrace::new(vec![ev(0, 0, 4)], None).unwrap();
        assert!(bad.validate(&topo).is_err());
    }

    #[test]
    fn csv_roundtrip() {
        let t = PacketTrace::new(vec![ev(0, 0, 1), ev(3, 2, 0), ev(7, 1, 3)], Some(20)).unwrap();
        let csv = t.to_csv();
        let back = PacketTrace::from_csv(&csv, Some(20)).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn csv_parsing_is_strict_but_tolerant_of_comments() {
        let text = "# header\n\n0, 0, 1, 2\n5,3,2,1\n";
        let t = PacketTrace::from_csv(text, None).unwrap();
        assert_eq!(t.len(), 2);
        assert!(
            PacketTrace::from_csv("0,0,1", None).is_err(),
            "missing field"
        );
        assert!(
            PacketTrace::from_csv("x,0,1,2", None).is_err(),
            "bad number"
        );
    }

    #[test]
    fn csv_skips_comments_and_blank_lines_anywhere() {
        let text =
            "# leading comment\n\n0,0,1,2\n\n   \n# interior comment\n5,3,2,1\n\n# trailing\n";
        let t = PacketTrace::from_csv(text, None).unwrap();
        assert_eq!(t.len(), 2);
        // A comment marker after leading whitespace still comments the line.
        let t = PacketTrace::from_csv("   # indented comment\n0,0,1,2\n", None).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn csv_tolerates_trailing_and_interior_whitespace() {
        let text = "0 , 0 , 1 , 2   \r\n5,3,2,1\t\n";
        let t = PacketTrace::from_csv(text, None).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].len_flits, 2);
        assert_eq!(t.events()[1].cycle, 5);
    }

    #[test]
    fn csv_unsorted_events_are_sorted_on_load() {
        let text = "9,0,1,2\n0,1,2,3\n4,2,3,1\n";
        let t = PacketTrace::from_csv(text, None).unwrap();
        let cycles: Vec<u64> = t.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 4, 9], "events sort by cycle on load");
        // Querying by cycle works after the sort.
        assert_eq!(t.events_at(4).len(), 1);
    }

    #[test]
    fn csv_store_load_store_is_the_identity() {
        // Start from a deliberately unsorted, whitespace-laden source.
        let source = "# demo\n  7, 1, 3, 2 \n0,0,1,5\n\n3,2,0,1\n";
        let t = PacketTrace::from_csv(source, Some(20)).unwrap();
        let stored = t.to_csv();
        let reloaded = PacketTrace::from_csv(&stored, Some(20)).unwrap();
        assert_eq!(reloaded, t);
        assert_eq!(
            reloaded.to_csv(),
            stored,
            "store -> load -> store must be byte-identical"
        );
    }
}
