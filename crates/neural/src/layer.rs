//! A fully connected layer with cached activations for backpropagation.

use crate::activation::Activation;
use crate::init::Init;
use crate::tensor::Matrix;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A dense layer `y = f(x·W + b)` with gradient accumulators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    w: Matrix,
    b: Vec<f32>,
    activation: Activation,
    #[serde(skip)]
    grad_w: Option<Matrix>,
    #[serde(skip)]
    grad_b: Vec<f32>,
    #[serde(skip)]
    input: Option<Matrix>,
    #[serde(skip)]
    output: Option<Matrix>,
}

impl Dense {
    /// A new layer with `fan_in` inputs and `fan_out` outputs. Weights are
    /// drawn from `init`; biases start at zero.
    pub fn new(
        fan_in: usize,
        fan_out: usize,
        activation: Activation,
        init: Init,
        rng: &mut StdRng,
    ) -> Self {
        let mut w = Matrix::zeros(fan_in, fan_out);
        w.map_inplace(|_| init.sample(fan_in, fan_out, rng));
        Dense {
            w,
            b: vec![0.0; fan_out],
            activation,
            grad_w: None,
            grad_b: vec![],
            input: None,
            output: None,
        }
    }

    /// Input width.
    pub fn fan_in(&self) -> usize {
        self.w.rows()
    }

    /// Output width.
    pub fn fan_out(&self) -> usize {
        self.w.cols()
    }

    /// The activation applied by this layer.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    /// Forward pass. With `train` set, inputs and outputs are cached for a
    /// subsequent [`Dense::backward`].
    pub fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let mut z = x.matmul(&self.w);
        z.add_row(&self.b);
        self.activation.apply(&mut z);
        if train {
            self.input = Some(x.clone());
            self.output = Some(z.clone());
        }
        z
    }

    /// Forward pass without caching (inference from a shared reference).
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let mut z = x.matmul(&self.w);
        z.add_row(&self.b);
        self.activation.apply(&mut z);
        z
    }

    /// Backward pass: consume `dL/dy`, accumulate `dL/dW` and `dL/db`, and
    /// return `dL/dx`.
    ///
    /// # Panics
    /// Panics if no training-mode forward pass preceded this call.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let input = self
            .input
            .as_ref()
            .expect("backward without cached forward");
        let output = self
            .output
            .as_ref()
            .expect("backward without cached forward");
        // dz = grad_out ⊙ f'(y)
        let mut dz = grad_out.clone();
        let act = self.activation;
        for (g, &y) in dz.as_mut_slice().iter_mut().zip(output.as_slice()) {
            *g *= act.derivative_from_output(y);
        }
        // Accumulate parameter gradients.
        let gw = input.t_matmul(&dz);
        match &mut self.grad_w {
            Some(acc) => {
                for (a, &g) in acc.as_mut_slice().iter_mut().zip(gw.as_slice()) {
                    *a += g;
                }
            }
            None => self.grad_w = Some(gw),
        }
        let gb = dz.col_sums();
        if self.grad_b.is_empty() {
            self.grad_b = gb;
        } else {
            for (a, g) in self.grad_b.iter_mut().zip(gb) {
                *a += g;
            }
        }
        // Gradient w.r.t. the input.
        dz.matmul_t(&self.w)
    }

    /// Clear accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_w = None;
        self.grad_b.clear();
    }

    /// Weights (row-major `fan_in × fan_out`), then biases.
    pub fn params(&self) -> (&[f32], &[f32]) {
        (self.w.as_slice(), &self.b)
    }

    /// Mutable weights and biases.
    pub fn params_mut(&mut self) -> (&mut [f32], &mut [f32]) {
        (self.w.as_mut_slice(), &mut self.b)
    }

    /// Accumulated gradients, if a backward pass ran: `(dW, db)`.
    pub fn grads(&self) -> Option<(&[f32], &[f32])> {
        self.grad_w
            .as_ref()
            .map(|g| (g.as_slice(), self.grad_b.as_slice()))
    }

    /// Sum of squared gradient entries (0 if no backward pass ran).
    pub fn grad_sq_sum(&self) -> f32 {
        match &self.grad_w {
            Some(gw) => {
                gw.as_slice().iter().map(|g| g * g).sum::<f32>()
                    + self.grad_b.iter().map(|g| g * g).sum::<f32>()
            }
            None => 0.0,
        }
    }

    /// Multiply all accumulated gradients by `factor` (gradient clipping).
    pub fn scale_grads(&mut self, factor: f32) {
        if let Some(gw) = &mut self.grad_w {
            gw.map_inplace(|g| g * factor);
        }
        for g in &mut self.grad_b {
            *g *= factor;
        }
    }

    /// Copy parameters from another layer of identical shape.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn copy_params_from(&mut self, other: &Dense) {
        assert_eq!(self.w.rows(), other.w.rows(), "layer shape mismatch");
        assert_eq!(self.w.cols(), other.w.cols(), "layer shape mismatch");
        self.w = other.w.clone();
        self.b = other.b.clone();
    }

    /// Polyak averaging: `θ ← τ·θ_other + (1-τ)·θ`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn soft_update_from(&mut self, other: &Dense, tau: f32) {
        assert_eq!(self.w.rows(), other.w.rows(), "layer shape mismatch");
        assert_eq!(self.w.cols(), other.w.cols(), "layer shape mismatch");
        for (a, &b) in self.w.as_mut_slice().iter_mut().zip(other.w.as_slice()) {
            *a = tau * b + (1.0 - tau) * *a;
        }
        for (a, &b) in self.b.iter_mut().zip(&other.b) {
            *a = tau * b + (1.0 - tau) * *a;
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-based finite-difference loops read clearer
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn forward_computes_affine_then_activation() {
        let mut r = rng();
        let mut layer = Dense::new(2, 1, Activation::Relu, Init::Zeros, &mut r);
        {
            let (w, b) = layer.params_mut();
            w.copy_from_slice(&[1.0, -2.0]);
            b.copy_from_slice(&[0.5]);
        }
        let y = layer.forward(&Matrix::row(vec![2.0, 1.0]), false);
        // 2*1 + 1*(-2) + 0.5 = 0.5 -> relu -> 0.5
        assert_eq!(y.as_slice(), &[0.5]);
        let y = layer.forward(&Matrix::row(vec![0.0, 1.0]), false);
        // -2 + 0.5 = -1.5 -> relu -> 0
        assert_eq!(y.as_slice(), &[0.0]);
    }

    #[test]
    fn inference_matches_training_forward() {
        let mut r = rng();
        let mut layer = Dense::new(3, 4, Activation::Tanh, Init::XavierUniform, &mut r);
        let x = Matrix::row(vec![0.3, -0.7, 1.1]);
        assert_eq!(layer.forward(&x, true), layer.forward_inference(&x));
    }

    /// Full numerical gradient check of a dense layer.
    #[test]
    fn backward_matches_numerical_gradients() {
        let mut r = rng();
        let mut layer = Dense::new(3, 2, Activation::Tanh, Init::XavierUniform, &mut r);
        let x = Matrix::from_vec(2, 3, vec![0.2, -0.4, 0.8, 1.0, 0.5, -0.9]);
        // Loss = sum(y); dL/dy = ones.
        let loss = |l: &Dense| -> f32 { l.forward_inference(&x).as_slice().iter().sum() };
        layer.forward(&x, true);
        let ones = Matrix::from_vec(2, 2, vec![1.0; 4]);
        let grad_in = layer.backward(&ones);
        let (gw, gb) = layer.grads().expect("grads accumulated");
        let gw = gw.to_vec();
        let gb = gb.to_vec();

        let h = 1e-3f32;
        // Check weight gradients.
        for i in 0..6 {
            let orig = layer.params().0[i];
            layer.params_mut().0[i] = orig + h;
            let lp = loss(&layer);
            layer.params_mut().0[i] = orig - h;
            let lm = loss(&layer);
            layer.params_mut().0[i] = orig;
            let num = (lp - lm) / (2.0 * h);
            assert!(
                (num - gw[i]).abs() < 2e-2,
                "dW[{i}]: num {num} vs ana {}",
                gw[i]
            );
        }
        // Check bias gradients.
        for i in 0..2 {
            let orig = layer.params().1[i];
            layer.params_mut().1[i] = orig + h;
            let lp = loss(&layer);
            layer.params_mut().1[i] = orig - h;
            let lm = loss(&layer);
            layer.params_mut().1[i] = orig;
            let num = (lp - lm) / (2.0 * h);
            assert!(
                (num - gb[i]).abs() < 2e-2,
                "db[{i}]: num {num} vs ana {}",
                gb[i]
            );
        }
        // Check input gradients.
        let base = loss(&layer);
        let _ = base;
        for i in 0..6 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += h;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= h;
            let lp: f32 = layer.forward_inference(&xp).as_slice().iter().sum();
            let lm: f32 = layer.forward_inference(&xm).as_slice().iter().sum();
            let num = (lp - lm) / (2.0 * h);
            assert!(
                (num - grad_in.as_slice()[i]).abs() < 2e-2,
                "dX[{i}]: num {num} vs ana {}",
                grad_in.as_slice()[i]
            );
        }
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut r = rng();
        let mut layer = Dense::new(2, 2, Activation::Linear, Init::XavierUniform, &mut r);
        let x = Matrix::row(vec![1.0, 1.0]);
        let g = Matrix::row(vec![1.0, 1.0]);
        layer.forward(&x, true);
        layer.backward(&g);
        let first = layer.grads().unwrap().0.to_vec();
        layer.forward(&x, true);
        layer.backward(&g);
        let second = layer.grads().unwrap().0.to_vec();
        for (a, b) in first.iter().zip(&second) {
            assert!((b - 2.0 * a).abs() < 1e-5, "grads should accumulate");
        }
        layer.zero_grad();
        assert!(layer.grads().is_none());
    }

    #[test]
    fn soft_update_interpolates() {
        let mut r = rng();
        let mut a = Dense::new(1, 1, Activation::Linear, Init::Zeros, &mut r);
        let mut b = Dense::new(1, 1, Activation::Linear, Init::Zeros, &mut r);
        a.params_mut().0[0] = 0.0;
        b.params_mut().0[0] = 10.0;
        a.soft_update_from(&b, 0.1);
        assert!((a.params().0[0] - 1.0).abs() < 1e-6);
        a.copy_params_from(&b);
        assert_eq!(a.params().0[0], 10.0);
    }

    #[test]
    #[should_panic(expected = "backward without cached forward")]
    fn backward_without_forward_panics() {
        let mut r = rng();
        let mut layer = Dense::new(2, 2, Activation::Linear, Init::Zeros, &mut r);
        let _ = layer.backward(&Matrix::row(vec![1.0, 1.0]));
    }
}
