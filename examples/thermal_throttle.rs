//! Thermal-emergency injection: a region is forcibly throttled to the
//! lowest V/F level mid-run (power/thermal emergency), and the runtime
//! controller must route the performance loss gracefully and recover when
//! the emergency lifts.
//!
//! Run with: `cargo run --release --example thermal_throttle`

use noc_selfconf::{run_controller, StaticController, ThresholdController};
use noc_sim::{SimConfig, SimError, Simulator, ThrottleEvent, TrafficPattern};

fn main() -> Result<(), SimError> {
    // Region 0 (top-left quadrant) hits a thermal emergency from cycle 4000
    // to 10000: capped at the lowest level no matter what the controller asks.
    let config = SimConfig::default()
        .with_traffic(TrafficPattern::Uniform, 0.12)
        .with_throttles(vec![ThrottleEvent {
            start: 4000,
            duration: 6000,
            region: 0,
            level: 0,
        }]);

    println!("workload: uniform @ 0.12; region 0 throttled during cycles 4000-10000\n");
    let caps = Simulator::new(config.clone())?.network().region_capacity();
    for mut controller in [
        Box::new(StaticController::max()) as Box<dyn noc_selfconf::Controller>,
        Box::new(ThresholdController::new(caps, 64)),
    ] {
        let run = run_controller(&config, controller.as_mut(), 32, 500)?;
        println!("=== {} ===", run.aggregate.controller);
        println!("epoch | latency | power (pJ/cyc) | backlog/node");
        for (i, m) in run.epochs.iter().enumerate() {
            if i % 2 != 0 {
                continue;
            }
            let marker = if (8..20).contains(&i) {
                "  <-- emergency"
            } else {
                ""
            };
            println!(
                "{:5} | {:7.1} | {:14.1} | {:12.2}{marker}",
                i,
                m.avg_packet_latency,
                m.energy_pj / m.cycles.max(1) as f64,
                m.avg_backlog / 64.0,
            );
        }
        println!(
            "aggregate: latency {:.1} cycles, energy {:.1} nJ\n",
            run.aggregate.avg_latency,
            run.aggregate.energy_pj / 1e3
        );
    }
    println!("During the emergency the throttled quadrant slows and upstream");
    println!("queues grow; adaptive controllers compensate with the remaining");
    println!("regions and recover once the cap lifts.");
    Ok(())
}
