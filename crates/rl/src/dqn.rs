//! Deep Q-Network (Mnih et al., 2015) with the Double-DQN target
//! (van Hasselt et al., 2016) and optional prioritized replay
//! (Schaul et al., 2016).

use crate::env::LearningAgent;
use crate::prioritized::PrioritizedReplay;
use crate::replay::{ReplayBuffer, Transition};
use neural::{Activation, Adam, Loss, Matrix, Mlp};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How the target network tracks the online network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TargetSync {
    /// Hard copy every `n` training steps.
    Hard {
        /// Interval in training steps.
        every: u64,
    },
    /// Polyak averaging with coefficient `tau` every training step.
    Soft {
        /// Interpolation coefficient in `(0, 1]`.
        tau: f32,
    },
}

/// DQN hyper-parameters (Table 2 of the evaluation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DqnConfig {
    /// Observation dimensionality.
    pub state_dim: usize,
    /// Number of discrete actions.
    pub num_actions: usize,
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Discount factor γ.
    pub gamma: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Replay buffer capacity.
    pub replay_capacity: usize,
    /// Minimum stored transitions before learning starts.
    pub min_replay: usize,
    /// Target-network synchronization scheme.
    pub target_sync: TargetSync,
    /// Use the Double-DQN target (decouple action selection from
    /// evaluation) instead of the vanilla max target.
    pub double: bool,
    /// Use prioritized replay with this α exponent (None = uniform).
    pub prioritized_alpha: Option<f64>,
    /// Importance-sampling β annealing horizon (training steps to β=1).
    pub beta_anneal_steps: u64,
    /// Training loss.
    pub loss: Loss,
    /// Clip gradients to this global L2 norm (None disables clipping).
    #[serde(default = "default_max_grad_norm")]
    pub max_grad_norm: Option<f32>,
    /// Multi-step return horizon (1 = standard one-step TD).
    #[serde(default = "default_n_step")]
    pub n_step: usize,
    /// Seed for weight init and sampling.
    pub seed: u64,
}

impl Default for DqnConfig {
    /// Paper-style defaults: 2×64 ReLU MLP, γ=0.95, Adam 1e-3, batch 32,
    /// replay 10k (min 500), hard target sync every 200 steps, Double-DQN
    /// on, uniform replay, Huber loss.
    fn default() -> Self {
        DqnConfig {
            state_dim: 1,
            num_actions: 2,
            hidden: vec![64, 64],
            gamma: 0.95,
            lr: 1e-3,
            batch_size: 32,
            replay_capacity: 10_000,
            min_replay: 500,
            target_sync: TargetSync::Hard { every: 200 },
            double: true,
            prioritized_alpha: None,
            beta_anneal_steps: 20_000,
            loss: Loss::Huber { delta: 1.0 },
            max_grad_norm: Some(10.0),
            n_step: 1,
            seed: 0,
        }
    }
}

impl DqnConfig {
    /// Set observation and action dimensions.
    pub fn with_dims(mut self, state_dim: usize, num_actions: usize) -> Self {
        self.state_dim = state_dim;
        self.num_actions = num_actions;
        self
    }

    /// Set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

fn default_max_grad_norm() -> Option<f32> {
    Some(10.0)
}

fn default_n_step() -> usize {
    1
}

/// Either replay flavor behind one interface.
#[derive(Debug)]
enum Replay {
    Uniform(ReplayBuffer),
    Prioritized(PrioritizedReplay),
}

/// A DQN agent: online + target networks, replay, and the TD update.
///
/// ```
/// use rl::{DqnAgent, DqnConfig, LearningAgent, Transition};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut agent = DqnAgent::new(
///     DqnConfig { min_replay: 32, ..DqnConfig::default().with_dims(1, 2) },
/// );
/// let mut rng = StdRng::seed_from_u64(0);
/// // A one-step bandit: action 1 pays 1, action 0 pays 0.
/// for i in 0..200 {
///     let action = i % 2;
///     agent.observe(Transition {
///         state: vec![1.0],
///         action,
///         reward: action as f32,
///         next_state: vec![1.0],
///         done: true,
///     });
///     agent.train_step(&mut rng);
/// }
/// assert_eq!(agent.greedy_action(&[1.0]), 1);
/// ```
#[derive(Debug)]
pub struct DqnAgent {
    config: DqnConfig,
    online: Mlp,
    target: Mlp,
    opt: Adam,
    replay: Replay,
    /// Sliding window for n-step return aggregation.
    nstep_buf: VecDeque<Transition>,
    train_steps: u64,
}

impl DqnAgent {
    /// Build an agent from a configuration.
    ///
    /// # Panics
    /// Panics if dimensions or batch parameters are zero.
    pub fn new(config: DqnConfig) -> Self {
        assert!(
            config.state_dim > 0 && config.num_actions > 0,
            "dimensions must be positive"
        );
        assert!(config.batch_size > 0, "batch size must be positive");
        assert!(
            config.min_replay >= config.batch_size,
            "min_replay must cover one batch"
        );
        let mut dims = vec![config.state_dim];
        dims.extend(&config.hidden);
        dims.push(config.num_actions);
        let online = Mlp::new(&dims, Activation::Relu, Activation::Linear, config.seed);
        let mut target = online.clone();
        target.copy_params_from(&online);
        let replay = match config.prioritized_alpha {
            Some(alpha) => {
                Replay::Prioritized(PrioritizedReplay::new(config.replay_capacity, alpha))
            }
            None => Replay::Uniform(ReplayBuffer::new(config.replay_capacity)),
        };
        assert!(config.n_step >= 1, "n_step must be at least 1");
        let opt = Adam::new(config.lr);
        DqnAgent {
            config,
            online,
            target,
            opt,
            replay,
            nstep_buf: VecDeque::new(),
            train_steps: 0,
        }
    }

    /// The agent's configuration.
    pub fn config(&self) -> &DqnConfig {
        &self.config
    }

    /// Number of gradient updates performed.
    pub fn train_steps(&self) -> u64 {
        self.train_steps
    }

    /// Number of stored transitions.
    pub fn replay_len(&self) -> usize {
        match &self.replay {
            Replay::Uniform(b) => b.len(),
            Replay::Prioritized(b) => b.len(),
        }
    }

    /// Q-values for one observation.
    ///
    /// # Panics
    /// Panics if `state.len() != config.state_dim`.
    pub fn q_values(&self, state: &[f32]) -> Vec<f32> {
        assert_eq!(
            state.len(),
            self.config.state_dim,
            "state dimension mismatch"
        );
        self.online.predict_one(state)
    }

    /// Greedy action for one observation.
    pub fn greedy_action(&self, state: &[f32]) -> usize {
        argmax(&self.q_values(state))
    }

    /// Q-values for a batch of observations via one batched forward pass
    /// (row `i` holds the Q-values of `states[i]`) — one matrix multiply
    /// per layer for the whole batch instead of one per state.
    ///
    /// # Panics
    /// Panics if `states` is empty or any state has the wrong dimension.
    pub fn q_values_batch<S: AsRef<[f32]>>(&self, states: &[S]) -> Matrix {
        assert!(
            states
                .iter()
                .all(|s| s.as_ref().len() == self.config.state_dim),
            "state dimension mismatch"
        );
        self.online.predict_batch(states)
    }

    /// Serialize the online network to JSON (for checkpointing).
    ///
    /// # Errors
    /// Returns an error if serialization fails.
    pub fn policy_to_json(&self) -> Result<String, neural::ModelIoError> {
        self.online.to_json()
    }

    /// Restore the online (and target) network from JSON.
    ///
    /// # Errors
    /// Returns an error if the JSON is malformed or shapes mismatch.
    pub fn policy_from_json(&mut self, json: &str) -> Result<(), neural::ModelIoError> {
        let net = Mlp::from_json(json)?;
        self.online.copy_params_from(&net);
        self.target.copy_params_from(&net);
        Ok(())
    }

    /// One TD learning step on a sampled mini-batch. Returns `None` until
    /// `min_replay` transitions are stored.
    fn learn(&mut self, rng: &mut StdRng) -> Option<f32> {
        if self.replay_len() < self.config.min_replay {
            return None;
        }
        let batch = self.config.batch_size;
        // Gather the batch (owned clones keep borrows simple).
        let (transitions, indices, weights): (Vec<Transition>, Vec<usize>, Vec<f32>) = match &self
            .replay
        {
            Replay::Uniform(b) => {
                let sample = b.sample(batch, rng);
                (
                    sample.into_iter().cloned().collect(),
                    vec![],
                    vec![1.0; batch],
                )
            }
            Replay::Prioritized(b) => {
                let beta = 0.4
                    + 0.6
                        * (self.train_steps as f64 / self.config.beta_anneal_steps as f64).min(1.0);
                let pb = b.sample(batch, beta, rng);
                let ts = pb.indices.iter().map(|&i| b.get(i).clone()).collect();
                (ts, pb.indices, pb.weights)
            }
        };

        let states: Vec<&[f32]> = transitions.iter().map(|t| t.state.as_slice()).collect();
        let next_states: Vec<&[f32]> = transitions
            .iter()
            .map(|t| t.next_state.as_slice())
            .collect();
        let states = Matrix::from_rows(&states);
        let next_states = Matrix::from_rows(&next_states);

        // Bootstrap targets: one batched forward pass per network over the
        // whole replay batch (packed once, shared by both networks).
        let q_next_target = self.target.predict(&next_states);
        let q_next_online = if self.config.double {
            Some(self.online.predict(&next_states))
        } else {
            None
        };
        let pred = self.online.forward(&states, true);
        let mut target = pred.clone();
        let mut td_errors = Vec::with_capacity(batch);
        for (i, t) in transitions.iter().enumerate() {
            let bootstrap = if t.done {
                0.0
            } else {
                match &q_next_online {
                    Some(qo) => {
                        // Double-DQN: online net picks, target net evaluates.
                        let a_star = argmax(qo.row_slice(i));
                        q_next_target.get(i, a_star)
                    }
                    None => q_next_target
                        .row_slice(i)
                        .iter()
                        .copied()
                        .fold(f32::NEG_INFINITY, f32::max),
                }
            };
            let td_target =
                t.reward + self.config.gamma.powi(self.config.n_step as i32) * bootstrap;
            let current = pred.get(i, t.action);
            let td_error = td_target - current;
            td_errors.push(td_error);
            // Importance-sampling weights scale the effective error: setting
            // target = q + w·δ makes the loss gradient w·∇ as required.
            target.set(i, t.action, current + weights[i] * td_error);
        }

        // Supervised step toward the TD targets (errors are zero off-action).
        self.online.zero_grad();
        let (loss, grad) = self.config.loss.compute(&pred, &target);
        self.online.backward(&grad);
        if let Some(max_norm) = self.config.max_grad_norm {
            self.online.clip_grad_norm(max_norm);
        }
        self.online.apply_grads(&mut self.opt);

        if let Replay::Prioritized(b) = &mut self.replay {
            b.update_priorities(&indices, &td_errors);
        }

        self.train_steps += 1;
        match self.config.target_sync {
            TargetSync::Hard { every } => {
                if self.train_steps.is_multiple_of(every.max(1)) {
                    self.target.copy_params_from(&self.online);
                }
            }
            TargetSync::Soft { tau } => self.target.soft_update_from(&self.online, tau),
        }
        Some(loss)
    }
}

impl DqnAgent {
    fn push_replay(&mut self, transition: Transition) {
        match &mut self.replay {
            Replay::Uniform(b) => b.push(transition),
            Replay::Prioritized(b) => b.push(transition),
        }
    }

    /// Fold the current n-step window into one aggregated transition:
    /// `(s_t, a_t, Σ γ^i r_{t+i}, s_{t+k}, done_{t+k})`.
    fn aggregate_window(&self) -> Transition {
        let front = self.nstep_buf.front().expect("non-empty window");
        let back = self.nstep_buf.back().expect("non-empty window");
        let mut reward = 0.0f32;
        let mut discount = 1.0f32;
        for t in &self.nstep_buf {
            reward += discount * t.reward;
            discount *= self.config.gamma;
        }
        Transition {
            state: front.state.clone(),
            action: front.action,
            reward,
            next_state: back.next_state.clone(),
            done: back.done,
        }
    }
}

impl LearningAgent for DqnAgent {
    fn act(&mut self, state: &[f32], epsilon: f64, rng: &mut StdRng) -> usize {
        if rng.gen::<f64>() < epsilon {
            rng.gen_range(0..self.config.num_actions)
        } else {
            self.greedy_action(state)
        }
    }

    fn observe(&mut self, transition: Transition) {
        debug_assert_eq!(transition.state.len(), self.config.state_dim);
        debug_assert!(transition.action < self.config.num_actions);
        if self.config.n_step <= 1 {
            self.push_replay(transition);
            return;
        }
        // Drop a stale window if the stream is non-contiguous (a new episode
        // started without a terminal transition).
        if let Some(back) = self.nstep_buf.back() {
            if back.done || back.next_state != transition.state {
                self.nstep_buf.clear();
            }
        }
        self.nstep_buf.push_back(transition);
        if self.nstep_buf.back().expect("just pushed").done {
            // Episode end: emit the truncated return from every start index
            // (none of these bootstraps, so the shorter horizon is exact).
            while !self.nstep_buf.is_empty() {
                let agg = self.aggregate_window();
                self.push_replay(agg);
                self.nstep_buf.pop_front();
            }
        } else if self.nstep_buf.len() == self.config.n_step {
            let agg = self.aggregate_window();
            self.push_replay(agg);
            self.nstep_buf.pop_front();
        }
    }

    fn train_step(&mut self, rng: &mut StdRng) -> Option<f32> {
        self.learn(rng)
    }
}

/// Index of the maximum element (first wins ties).
pub fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn agent(cfg: DqnConfig) -> DqnAgent {
        DqnAgent::new(cfg)
    }

    fn small_cfg() -> DqnConfig {
        DqnConfig {
            hidden: vec![16],
            batch_size: 8,
            min_replay: 16,
            replay_capacity: 256,
            ..DqnConfig::default().with_dims(2, 3)
        }
    }

    #[test]
    fn argmax_picks_first_maximum() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[-5.0]), 0);
    }

    #[test]
    fn no_training_until_min_replay() {
        let mut a = agent(small_cfg());
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            a.observe(Transition {
                state: vec![0.0, 0.0],
                action: 0,
                reward: 0.0,
                next_state: vec![0.0, 0.0],
                done: false,
            });
        }
        assert!(a.train_step(&mut rng).is_none());
        for _ in 0..10 {
            a.observe(Transition {
                state: vec![0.0, 0.0],
                action: 0,
                reward: 0.0,
                next_state: vec![0.0, 0.0],
                done: false,
            });
        }
        assert!(a.train_step(&mut rng).is_some());
        assert_eq!(a.train_steps(), 1);
    }

    #[test]
    fn epsilon_one_explores_uniformly() {
        let mut a = agent(small_cfg());
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[a.act(&[0.0, 0.0], 1.0, &mut rng)] += 1;
        }
        for c in counts {
            assert!(
                (800..1200).contains(&c),
                "uniform exploration expected: {counts:?}"
            );
        }
    }

    #[test]
    fn epsilon_zero_is_greedy() {
        let mut a = agent(small_cfg());
        let mut rng = StdRng::seed_from_u64(2);
        let q = a.q_values(&[0.5, -0.5]);
        let g = argmax(&q);
        for _ in 0..10 {
            assert_eq!(a.act(&[0.5, -0.5], 0.0, &mut rng), g);
        }
    }

    /// A 1-step bandit: reward 1 for action 1, 0 otherwise. DQN must learn
    /// Q(s, 1) ≈ 1 > Q(s, 0).
    #[test]
    fn learns_a_contextual_bandit() {
        let cfg = DqnConfig {
            hidden: vec![16],
            batch_size: 16,
            min_replay: 32,
            replay_capacity: 512,
            gamma: 0.9,
            lr: 5e-3,
            ..DqnConfig::default().with_dims(1, 2)
        };
        let mut a = agent(cfg);
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..400 {
            let action = i % 2;
            a.observe(Transition {
                state: vec![1.0],
                action,
                reward: action as f32,
                next_state: vec![1.0],
                done: true,
            });
            a.train_step(&mut rng);
        }
        let q = a.q_values(&[1.0]);
        assert!(q[1] > q[0], "Q(s,1)={} must beat Q(s,0)={}", q[1], q[0]);
        assert!(
            (q[1] - 1.0).abs() < 0.25,
            "Q(s,1)={} should approach 1",
            q[1]
        );
        assert!(q[0].abs() < 0.25, "Q(s,0)={} should approach 0", q[0]);
    }

    /// Two-step credit assignment: state 0 --(a=1)--> state 1 --(a=1)--> +1.
    /// Requires bootstrapping through the target network.
    #[test]
    fn bootstraps_multi_step_values() {
        let cfg = DqnConfig {
            hidden: vec![32],
            batch_size: 16,
            min_replay: 64,
            replay_capacity: 2048,
            gamma: 0.9,
            lr: 2e-3,
            target_sync: TargetSync::Hard { every: 50 },
            ..DqnConfig::default().with_dims(2, 2)
        };
        let mut a = agent(cfg);
        let mut rng = StdRng::seed_from_u64(4);
        let s0 = vec![1.0, 0.0];
        let s1 = vec![0.0, 1.0];
        for _ in 0..600 {
            // Good path.
            a.observe(Transition {
                state: s0.clone(),
                action: 1,
                reward: 0.0,
                next_state: s1.clone(),
                done: false,
            });
            a.observe(Transition {
                state: s1.clone(),
                action: 1,
                reward: 1.0,
                next_state: s1.clone(),
                done: true,
            });
            // Bad actions terminate with 0.
            a.observe(Transition {
                state: s0.clone(),
                action: 0,
                reward: 0.0,
                next_state: s0.clone(),
                done: true,
            });
            a.observe(Transition {
                state: s1.clone(),
                action: 0,
                reward: 0.0,
                next_state: s1.clone(),
                done: true,
            });
            a.train_step(&mut rng);
            a.train_step(&mut rng);
        }
        let q0 = a.q_values(&s0);
        let q1 = a.q_values(&s1);
        assert!(q1[1] > 0.7, "Q(s1,right)={} should approach 1", q1[1]);
        assert!(q0[1] > 0.5, "Q(s0,right)={} should approach γ·1=0.9", q0[1]);
        assert!(
            q0[1] > q0[0],
            "bootstrapped value must prefer the good path"
        );
    }

    #[test]
    fn double_and_vanilla_targets_both_work() {
        for double in [false, true] {
            let cfg = DqnConfig {
                hidden: vec![16],
                batch_size: 8,
                min_replay: 16,
                lr: 5e-3,
                double,
                ..DqnConfig::default().with_dims(1, 2)
            };
            let mut a = agent(cfg);
            let mut rng = StdRng::seed_from_u64(5);
            for i in 0..300 {
                a.observe(Transition {
                    state: vec![1.0],
                    action: i % 2,
                    reward: (i % 2) as f32,
                    next_state: vec![1.0],
                    done: true,
                });
                a.train_step(&mut rng);
            }
            let q = a.q_values(&[1.0]);
            assert!(q[1] > q[0], "double={double}: {q:?}");
        }
    }

    #[test]
    fn prioritized_replay_learns_too() {
        let cfg = DqnConfig {
            hidden: vec![16],
            batch_size: 16,
            min_replay: 32,
            prioritized_alpha: Some(0.6),
            lr: 5e-3,
            ..DqnConfig::default().with_dims(1, 2)
        };
        let mut a = agent(cfg);
        let mut rng = StdRng::seed_from_u64(6);
        for i in 0..300 {
            let action = i % 2;
            a.observe(Transition {
                state: vec![1.0],
                action,
                reward: action as f32,
                next_state: vec![1.0],
                done: true,
            });
            a.train_step(&mut rng);
        }
        let q = a.q_values(&[1.0]);
        assert!(
            q[1] > q[0],
            "prioritized agent must learn the bandit: {q:?}"
        );
    }

    #[test]
    fn soft_target_sync_tracks_online() {
        let cfg = DqnConfig {
            hidden: vec![8],
            batch_size: 8,
            min_replay: 8,
            target_sync: TargetSync::Soft { tau: 0.5 },
            ..DqnConfig::default().with_dims(1, 2)
        };
        let mut a = agent(cfg);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            a.observe(Transition {
                state: vec![1.0],
                action: 1,
                reward: 1.0,
                next_state: vec![1.0],
                done: true,
            });
            a.train_step(&mut rng);
        }
        // After many tau=0.5 updates, target must differ from init and be
        // close to online.
        let online_q = a.online.predict_one(&[1.0]);
        let target_q = a.target.predict_one(&[1.0]);
        for (o, t) in online_q.iter().zip(&target_q) {
            assert!(
                (o - t).abs() < 0.2,
                "soft target should track online: {o} vs {t}"
            );
        }
    }

    #[test]
    fn n_step_aggregates_discounted_rewards() {
        let cfg = DqnConfig {
            hidden: vec![8],
            n_step: 3,
            gamma: 0.5,
            min_replay: 8,
            batch_size: 8,
            ..DqnConfig::default().with_dims(1, 2)
        };
        let mut a = agent(cfg);
        // Contiguous 4-step episode: rewards 1, 2, 4, 8; terminal at the end.
        let states = [0.0f32, 1.0, 2.0, 3.0, 4.0];
        for i in 0..4 {
            a.observe(Transition {
                state: vec![states[i]],
                action: 0,
                reward: (1 << i) as f32,
                next_state: vec![states[i + 1]],
                done: i == 3,
            });
        }
        // Windows: [r0..r2] from s0, then the terminal flush emits from s1,
        // s2, s3 — four aggregates total.
        assert_eq!(a.replay_len(), 4);
        let contents: Vec<Transition> = match &a.replay {
            Replay::Uniform(b) => b.iter().cloned().collect(),
            _ => unreachable!(),
        };
        // From s0: 1 + 0.5·2 + 0.25·4 = 3; bootstraps from s3 (not done).
        assert_eq!(contents[0].state, vec![0.0]);
        assert_eq!(contents[0].reward, 3.0);
        assert_eq!(contents[0].next_state, vec![3.0]);
        assert!(!contents[0].done);
        // Terminal flush from s1: 2 + 0.5·4 + 0.25·8 = 6, done.
        assert_eq!(contents[1].reward, 6.0);
        assert!(contents[1].done);
        // From s3: 8, done.
        assert_eq!(contents[3].reward, 8.0);
    }

    #[test]
    fn n_step_window_resets_across_episodes() {
        let cfg = DqnConfig {
            hidden: vec![8],
            n_step: 3,
            min_replay: 8,
            batch_size: 8,
            ..DqnConfig::default().with_dims(1, 2)
        };
        let mut a = agent(cfg);
        // Two non-contiguous non-terminal transitions: the stale window must
        // be discarded, so nothing reaches the replay buffer yet.
        a.observe(Transition {
            state: vec![0.0],
            action: 0,
            reward: 1.0,
            next_state: vec![1.0],
            done: false,
        });
        a.observe(Transition {
            state: vec![9.0], // != previous next_state
            action: 0,
            reward: 1.0,
            next_state: vec![10.0],
            done: false,
        });
        assert_eq!(a.replay_len(), 0);
    }

    #[test]
    fn n_step_learns_the_bandit_too() {
        let cfg = DqnConfig {
            hidden: vec![16],
            batch_size: 16,
            min_replay: 32,
            n_step: 3,
            lr: 5e-3,
            ..DqnConfig::default().with_dims(1, 2)
        };
        let mut a = agent(cfg);
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..300 {
            let action = i % 2;
            a.observe(Transition {
                state: vec![1.0],
                action,
                reward: action as f32,
                next_state: vec![1.0],
                done: true,
            });
            a.train_step(&mut rng);
        }
        let q = a.q_values(&[1.0]);
        assert!(q[1] > q[0], "n-step agent must learn the bandit: {q:?}");
    }

    #[test]
    fn grad_clipping_keeps_training_stable_at_high_lr() {
        let cfg = DqnConfig {
            hidden: vec![16],
            batch_size: 8,
            min_replay: 8,
            lr: 0.05, // aggressive
            max_grad_norm: Some(1.0),
            ..DqnConfig::default().with_dims(1, 2)
        };
        let mut a = agent(cfg);
        let mut rng = StdRng::seed_from_u64(10);
        for i in 0..100 {
            a.observe(Transition {
                state: vec![1.0],
                action: i % 2,
                reward: 100.0 * (i % 2) as f32, // large-magnitude rewards
                next_state: vec![1.0],
                done: true,
            });
            a.train_step(&mut rng);
        }
        let q = a.q_values(&[1.0]);
        assert!(
            q.iter().all(|v| v.is_finite()),
            "clipped training must not diverge: {q:?}"
        );
    }

    #[test]
    fn checkpoint_roundtrip_preserves_policy() {
        let mut a = agent(small_cfg());
        let json = a.policy_to_json().unwrap();
        let q_before = a.q_values(&[0.3, 0.7]);
        let mut b = agent(small_cfg().with_seed(99));
        assert_ne!(b.q_values(&[0.3, 0.7]), q_before);
        b.policy_from_json(&json).unwrap();
        assert_eq!(b.q_values(&[0.3, 0.7]), q_before);
        assert!(a.policy_from_json("garbage").is_err());
    }
}
