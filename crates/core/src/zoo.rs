//! The policy zoo: one versioned on-disk format for trained policies, plus
//! population training and the tournament generalization matrix.
//!
//! Before this module, the workspace persisted trained policies in three
//! divergent ad-hoc JSON shapes (the CLI's `SavedPolicy`, the bench
//! harness's `PolicyArtifact` and `TabularArtifact`), with the
//! encoder/state-dim compatibility check implemented in only one of the
//! three load paths. [`PolicyArtifact`] replaces all of them:
//!
//! * **Versioned**: a `schema_version` field gates evolution; the three
//!   legacy shapes are still accepted by [`PolicyArtifact::parse`] and
//!   migrated in memory (provenance unknown, hash empty).
//! * **Self-describing**: the policy kind (DQN weights or tabular Q-table),
//!   the [`StateEncoder`] and [`ActionSpace`] it was trained with, the full
//!   training provenance ([`NocEnvConfig`], [`TrainConfig`], seed, learning
//!   curve), and a content hash of the configuration that produced it
//!   (git-sha-agnostic, same double-FNV idiom as the serve result cache).
//! * **Checked on every load**: [`PolicyArtifact::load`] validates the
//!   policy dimensions against the stored encoder/action space and returns
//!   a structured [`ZooError`] instead of letting a controller constructor
//!   panic downstream.
//!
//! On top of the unified artifact, [`train_grid`] fans a population of DQN
//! variants × scenario families over the workspace worker pool with
//! SplitMix64 per-member seeds — artifacts are byte-identical across thread
//! counts and reruns, the same contract the sweep engine honors — and
//! [`tournament_matrix`] scores every zoo policy against every scenario
//! family into one deterministic [`TournamentReport`]: the generalization
//! matrix the paper never measured.

use crate::action::ActionSpace;
use crate::controller::{Controller, DrlController, TabularController};
use crate::env::{NocEnv, NocEnvConfig};
use crate::par::parallel_map;
use crate::reward::RewardConfig;
use crate::serve::cache::fnv1a64;
use crate::state::StateEncoder;
use crate::sweep::mix_seed;
use crate::training::{run_controller, train_drl, RunAggregate, TrainedPolicy};
use noc_sim::{FaultPlan, SimConfig, SimError, TopologyKind, TrafficPattern, WorkloadSpec};
use rl::{DqnAgent, DqnConfig, EpisodeStats, TabularConfig, TabularQ, TrainConfig};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::path::Path;

/// Version of the artifact, manifest, and tournament-report schemas.
pub const ZOO_SCHEMA_VERSION: u32 = 1;

/// Result alias for zoo operations.
pub type ZooResult<T> = Result<T, ZooError>;

/// Structured errors of the zoo layer.
#[derive(Debug)]
pub enum ZooError {
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: String,
        /// The OS error.
        message: String,
    },
    /// JSON did not match any supported artifact shape, or a spec string
    /// was malformed.
    Parse {
        /// What was being parsed.
        context: String,
        /// Why it failed.
        message: String,
    },
    /// The artifact carries a schema version this build does not support.
    SchemaVersion {
        /// The version found in the artifact.
        found: u32,
        /// The version this build supports.
        supported: u32,
    },
    /// The policy's dimensions do not match its encoder/action space (or
    /// the fabric it is being deployed against).
    Incompatible {
        /// The policy's name (or `"artifact"` when unnamed).
        policy: String,
        /// The mismatched dimension.
        field: &'static str,
        /// The value the deployment target expects.
        expected: usize,
        /// The value the policy carries.
        found: usize,
    },
    /// The artifact holds a different policy kind than the caller asked for.
    WrongKind {
        /// The kind the caller needs.
        expected: &'static str,
        /// The kind the artifact holds.
        found: &'static str,
    },
    /// Training or evaluation failed inside the simulator.
    Sim(SimError),
}

impl fmt::Display for ZooError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZooError::Io { path, message } => write!(f, "zoo io error at `{path}`: {message}"),
            ZooError::Parse { context, message } => write!(f, "cannot parse {context}: {message}"),
            ZooError::SchemaVersion { found, supported } => write!(
                f,
                "unsupported policy artifact schema version {found} (this build supports \
                 {supported})"
            ),
            ZooError::Incompatible {
                policy,
                field,
                expected,
                found,
            } => write!(
                f,
                "policy `{policy}` is incompatible: {field} is {found} but the target expects \
                 {expected}; retrain with `noc-cli train` (or `train-grid`) against the current \
                 fabric"
            ),
            ZooError::WrongKind { expected, found } => {
                write!(f, "artifact holds a {found} policy, expected {expected}")
            }
            ZooError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ZooError {}

impl From<SimError> for ZooError {
    fn from(e: SimError) -> Self {
        ZooError::Sim(e)
    }
}

/// The serialized policy itself: what kind of function approximator the
/// artifact holds, and its weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PolicyKind {
    /// A trained DQN: hyper-parameters plus the serialized online network.
    Dqn {
        /// The DQN configuration the agent was built with.
        dqn: DqnConfig,
        /// The serialized online network (JSON, [`DqnAgent::policy_to_json`]).
        policy_json: String,
    },
    /// A trained tabular Q-learning baseline (table included; entries are
    /// serialized in sorted key order, so the artifact is deterministic).
    Tabular {
        /// The trained agent.
        agent: TabularQ,
    },
}

/// Where a policy came from: the exact configuration that trained it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainProvenance {
    /// The training environment.
    pub env: NocEnvConfig,
    /// The training budget and exploration schedule.
    pub train: TrainConfig,
    /// The master seed of the run.
    pub seed: u64,
}

/// One trained policy, in the single versioned on-disk format every
/// train/evaluate/bench path shares.
///
/// Legacy artifacts (the pre-zoo `SavedPolicy` / bench `PolicyArtifact` /
/// bench `TabularArtifact` JSON shapes) still load through
/// [`PolicyArtifact::parse`]; they migrate with `provenance: None` and an
/// empty `config_hash`, which any config-hash-keyed cache treats as a miss.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyArtifact {
    /// Schema version ([`ZOO_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The policy itself.
    pub kind: PolicyKind,
    /// The state encoder used in training (reuse it at deployment).
    pub encoder: StateEncoder,
    /// The action space used in training.
    pub action_space: ActionSpace,
    /// Training provenance; `None` for artifacts migrated from legacy
    /// shapes, which recorded none.
    #[serde(default)]
    pub provenance: Option<TrainProvenance>,
    /// Per-episode learning curve.
    #[serde(default)]
    pub curve: Vec<EpisodeStats>,
    /// Content hash of the configuration that trained this policy
    /// ([`dqn_config_hash`] / [`tabular_config_hash`]); empty for migrated
    /// legacy artifacts.
    #[serde(default)]
    pub config_hash: String,
}

/// The pre-zoo DQN artifact shape: covers both the CLI's `SavedPolicy`
/// (no curve) and the bench harness's `PolicyArtifact` (with curve).
#[derive(Deserialize)]
struct LegacyDqn {
    dqn: DqnConfig,
    policy_json: String,
    encoder: StateEncoder,
    action_space: ActionSpace,
    #[serde(default)]
    curve: Vec<EpisodeStats>,
}

/// The pre-zoo bench `TabularArtifact` shape.
#[derive(Deserialize)]
struct LegacyTabular {
    agent: TabularQ,
    encoder: StateEncoder,
    action_space: ActionSpace,
    #[serde(default)]
    curve: Vec<EpisodeStats>,
}

fn hash_hex(text: &str) -> String {
    let bytes = text.as_bytes();
    format!(
        "{:016x}{:016x}",
        fnv1a64(bytes, 0xCBF2_9CE4_8422_2325),
        fnv1a64(bytes, 0x6C62_272E_07BB_0142)
    )
}

fn config_hash_over(
    kind: &str,
    env: &NocEnvConfig,
    policy_cfg_json: &str,
    train: &TrainConfig,
) -> String {
    let env_json = serde_json::to_string(env).expect("env config serializes");
    let train_json = serde_json::to_string(train).expect("train config serializes");
    hash_hex(&format!(
        "zoo-v{ZOO_SCHEMA_VERSION}\nkind={kind}\n{env_json}\n{policy_cfg_json}\n{train_json}"
    ))
}

/// Content hash of a DQN training configuration: environment, DQN
/// hyper-parameters, and training budget, under the zoo schema version.
///
/// `state_dim`/`num_actions` are normalized out of the DQN config before
/// hashing — they are derived from the environment (which is hashed), so the
/// hash of a config written *before* training equals the hash stored in the
/// artifact *after* [`train_drl`] overwrote the dimensions.
pub fn dqn_config_hash(env: &NocEnvConfig, dqn: &DqnConfig, train: &TrainConfig) -> String {
    let mut d = dqn.clone();
    d.state_dim = 0;
    d.num_actions = 0;
    let dqn_json = serde_json::to_string(&d).expect("dqn config serializes");
    config_hash_over("dqn", env, &dqn_json, train)
}

/// Content hash of a tabular training configuration (see
/// [`dqn_config_hash`] for the dimension normalization).
pub fn tabular_config_hash(env: &NocEnvConfig, tab: &TabularConfig, train: &TrainConfig) -> String {
    let mut t = tab.clone();
    t.state_dim = 0;
    t.num_actions = 0;
    let tab_json = serde_json::to_string(&t).expect("tabular config serializes");
    config_hash_over("tabular", env, &tab_json, train)
}

impl PolicyArtifact {
    /// Capture a freshly trained DQN policy with full provenance.
    ///
    /// # Errors
    /// Returns [`ZooError::Parse`] if the network weights fail to serialize.
    pub fn from_dqn(
        policy: &TrainedPolicy,
        env: NocEnvConfig,
        train: TrainConfig,
    ) -> ZooResult<Self> {
        let policy_json = policy.agent.policy_to_json().map_err(|e| ZooError::Parse {
            context: "DQN weights".into(),
            message: e.to_string(),
        })?;
        let dqn = policy.agent.config().clone();
        let config_hash = dqn_config_hash(&env, &dqn, &train);
        let seed = train.seed;
        Ok(PolicyArtifact {
            schema_version: ZOO_SCHEMA_VERSION,
            kind: PolicyKind::Dqn { dqn, policy_json },
            encoder: policy.encoder.clone(),
            action_space: policy.action_space.clone(),
            provenance: Some(TrainProvenance { env, train, seed }),
            curve: policy.curve.clone(),
            config_hash,
        })
    }

    /// Capture a freshly trained tabular policy with full provenance.
    pub fn from_tabular(
        agent: TabularQ,
        curve: Vec<EpisodeStats>,
        encoder: StateEncoder,
        action_space: ActionSpace,
        env: NocEnvConfig,
        train: TrainConfig,
    ) -> Self {
        let config_hash = tabular_config_hash(&env, agent.config(), &train);
        let seed = train.seed;
        PolicyArtifact {
            schema_version: ZOO_SCHEMA_VERSION,
            kind: PolicyKind::Tabular { agent },
            encoder,
            action_space,
            provenance: Some(TrainProvenance { env, train, seed }),
            curve,
            config_hash,
        }
    }

    /// Short name of the policy kind: `"dqn"` or `"tabular"`.
    pub fn kind_name(&self) -> &'static str {
        match self.kind {
            PolicyKind::Dqn { .. } => "dqn",
            PolicyKind::Tabular { .. } => "tabular",
        }
    }

    /// Parse an artifact from JSON, accepting the versioned shape and all
    /// three legacy shapes (CLI `SavedPolicy`, bench `PolicyArtifact`,
    /// bench `TabularArtifact`). Legacy artifacts migrate with
    /// `provenance: None` and an empty `config_hash`.
    ///
    /// This only parses; call [`PolicyArtifact::validate`] (or use
    /// [`PolicyArtifact::load`], which does both) before deploying.
    ///
    /// # Errors
    /// Returns [`ZooError::Parse`] if the JSON matches none of the shapes.
    pub fn parse(json: &str) -> ZooResult<Self> {
        // The versioned shape is the only one with a `schema_version` key;
        // probing for it first keeps error messages for malformed *new*
        // artifacts precise instead of reporting three failed fallbacks.
        if json.contains("\"schema_version\"") {
            return serde_json::from_str::<PolicyArtifact>(json).map_err(|e| ZooError::Parse {
                context: "versioned policy artifact".into(),
                message: e.to_string(),
            });
        }
        if let Ok(legacy) = serde_json::from_str::<LegacyTabular>(json) {
            return Ok(PolicyArtifact {
                schema_version: ZOO_SCHEMA_VERSION,
                kind: PolicyKind::Tabular {
                    agent: legacy.agent,
                },
                encoder: legacy.encoder,
                action_space: legacy.action_space,
                provenance: None,
                curve: legacy.curve,
                config_hash: String::new(),
            });
        }
        if let Ok(legacy) = serde_json::from_str::<LegacyDqn>(json) {
            return Ok(PolicyArtifact {
                schema_version: ZOO_SCHEMA_VERSION,
                kind: PolicyKind::Dqn {
                    dqn: legacy.dqn,
                    policy_json: legacy.policy_json,
                },
                encoder: legacy.encoder,
                action_space: legacy.action_space,
                provenance: None,
                curve: legacy.curve,
                config_hash: String::new(),
            });
        }
        Err(ZooError::Parse {
            context: "policy artifact".into(),
            message: "JSON matches neither the versioned zoo shape nor any legacy shape \
                      (SavedPolicy / PolicyArtifact / TabularArtifact)"
                .into(),
        })
    }

    /// Check the artifact is deployable: supported schema version, and the
    /// policy's dimensions match the stored encoder and action space. Every
    /// load path runs this — it is *the* compatibility check the legacy
    /// formats implemented zero or one times.
    ///
    /// # Errors
    /// [`ZooError::SchemaVersion`] or [`ZooError::Incompatible`].
    pub fn validate(&self) -> ZooResult<()> {
        if self.schema_version != ZOO_SCHEMA_VERSION {
            return Err(ZooError::SchemaVersion {
                found: self.schema_version,
                supported: ZOO_SCHEMA_VERSION,
            });
        }
        let (state_dim, num_actions) = match &self.kind {
            PolicyKind::Dqn { dqn, .. } => (dqn.state_dim, dqn.num_actions),
            PolicyKind::Tabular { agent } => (agent.config().state_dim, agent.config().num_actions),
        };
        if state_dim != self.encoder.state_dim() {
            return Err(ZooError::Incompatible {
                policy: "artifact".into(),
                field: "state_dim",
                expected: self.encoder.state_dim(),
                found: state_dim,
            });
        }
        if num_actions != self.action_space.num_actions() {
            return Err(ZooError::Incompatible {
                policy: "artifact".into(),
                field: "num_actions",
                expected: self.action_space.num_actions(),
                found: num_actions,
            });
        }
        Ok(())
    }

    /// Serialize to the canonical (pretty, field-ordered) JSON form. The
    /// output is a pure function of the artifact's contents — the byte-level
    /// determinism `train_grid` promises rests on this.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("artifact serializes")
    }

    /// Write the artifact to `path` (creating parent directories).
    ///
    /// # Errors
    /// Returns [`ZooError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> ZooResult<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent).map_err(|e| ZooError::Io {
                    path: parent.display().to_string(),
                    message: e.to_string(),
                })?;
            }
        }
        fs::write(path, self.to_json()).map_err(|e| ZooError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    }

    /// Load an artifact from `path`: read, parse (versioned or legacy), and
    /// validate. This is the single entry point every consumer (CLI
    /// evaluate, bench policy cache, tournament) goes through.
    ///
    /// # Errors
    /// [`ZooError::Io`], [`ZooError::Parse`], [`ZooError::SchemaVersion`],
    /// or [`ZooError::Incompatible`].
    pub fn load(path: &Path) -> ZooResult<Self> {
        let text = fs::read_to_string(path).map_err(|e| ZooError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        let artifact = Self::parse(&text).map_err(|e| match e {
            ZooError::Parse { context, message } => ZooError::Parse {
                context: format!("{context} at `{}`", path.display()),
                message,
            },
            other => other,
        })?;
        artifact.validate()?;
        Ok(artifact)
    }

    /// Rebuild a deployable controller of whatever kind the artifact holds.
    ///
    /// # Errors
    /// Validation errors (see [`PolicyArtifact::validate`]), or
    /// [`ZooError::Parse`] if stored DQN weights fail to deserialize.
    pub fn controller(&self) -> ZooResult<Box<dyn Controller>> {
        self.validate()?;
        match &self.kind {
            PolicyKind::Dqn { .. } => Ok(Box::new(self.build_drl()?)),
            PolicyKind::Tabular { agent } => Ok(Box::new(TabularController::new(
                agent.clone(),
                self.encoder.clone(),
                self.action_space.clone(),
            ))),
        }
    }

    /// Rebuild the DQN controller (typed).
    ///
    /// # Errors
    /// [`ZooError::WrongKind`] for tabular artifacts, else as
    /// [`PolicyArtifact::controller`].
    pub fn drl_controller(&self) -> ZooResult<DrlController> {
        self.validate()?;
        match &self.kind {
            PolicyKind::Dqn { .. } => self.build_drl(),
            PolicyKind::Tabular { .. } => Err(ZooError::WrongKind {
                expected: "dqn",
                found: "tabular",
            }),
        }
    }

    /// Rebuild the tabular controller (typed).
    ///
    /// # Errors
    /// [`ZooError::WrongKind`] for DQN artifacts, else as
    /// [`PolicyArtifact::controller`].
    pub fn tabular_controller(&self) -> ZooResult<TabularController> {
        self.validate()?;
        match &self.kind {
            PolicyKind::Tabular { agent } => Ok(TabularController::new(
                agent.clone(),
                self.encoder.clone(),
                self.action_space.clone(),
            )),
            PolicyKind::Dqn { .. } => Err(ZooError::WrongKind {
                expected: "tabular",
                found: "dqn",
            }),
        }
    }

    fn build_drl(&self) -> ZooResult<DrlController> {
        let PolicyKind::Dqn { dqn, policy_json } = &self.kind else {
            unreachable!("checked by callers");
        };
        let mut agent = DqnAgent::new(dqn.clone());
        agent
            .policy_from_json(policy_json)
            .map_err(|e| ZooError::Parse {
                context: "stored DQN weights".into(),
                message: e.to_string(),
            })?;
        Ok(DrlController::new(
            agent,
            self.encoder.clone(),
            self.action_space.clone(),
        ))
    }
}

/// A scenario family: one (topology, workload, fault level) cell of the
/// training/evaluation axes. Parsed from the spec grammar
/// `<topology>/<pattern>/r<rate>[/f<n>]` or `<topology>/ph[…][/f<n>]`
/// (the same pattern/workload vocabulary as `sweep-grid`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioFamily {
    /// Canonical name: `<topology>/<workload label>/f<n>`.
    pub name: String,
    /// Fabric topology.
    pub topology: TopologyKind,
    /// Traffic workload (canonical workload grammar).
    pub workload: WorkloadSpec,
    /// Number of random link faults (0 = healthy fabric).
    pub faults: usize,
}

impl ScenarioFamily {
    /// Parse a family spec (see the type docs for the grammar).
    ///
    /// # Errors
    /// Returns [`ZooError::Parse`] describing the malformed segment.
    pub fn parse(spec: &str) -> ZooResult<Self> {
        let err = |message: String| ZooError::Parse {
            context: format!("scenario family `{spec}`"),
            message,
        };
        let tokens: Vec<&str> = spec.split('/').collect();
        if tokens.len() < 2 {
            return Err(err(
                "expected <topology>/<pattern>/r<rate>[/fN] or <topology>/ph[...][/fN]".into(),
            ));
        }
        let topology = TopologyKind::from_name(tokens[0]).ok_or_else(|| {
            err(format!(
                "unknown topology `{}` (expected one of: {})",
                tokens[0],
                TopologyKind::NAMED
                    .iter()
                    .map(|(n, _)| *n)
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })?;
        let mut rest = &tokens[1..];
        let mut faults = 0usize;
        if rest.len() > 1 {
            if let Some(n) = rest
                .last()
                .and_then(|t| t.strip_prefix('f'))
                .and_then(|s| s.parse::<usize>().ok())
            {
                faults = n;
                rest = &rest[..rest.len() - 1];
            }
        }
        let workload = match rest {
            [label] if label.starts_with("ph[") => {
                WorkloadSpec::parse(label).map_err(|e| err(e.to_string()))?
            }
            [pattern, rate] if rate.starts_with('r') => {
                let pattern = TrafficPattern::parse(pattern).map_err(|e| err(e.to_string()))?;
                let rate: f64 = rate[1..]
                    .parse()
                    .map_err(|e| err(format!("bad rate `{}`: {e}", &rate[1..])))?;
                WorkloadSpec::bernoulli(pattern, rate)
            }
            _ => {
                return Err(err(
                    "expected <pattern>/r<rate> or a ph[...] workload label after the topology"
                        .into(),
                ))
            }
        };
        Ok(ScenarioFamily {
            name: format!("{}/{}/f{}", topology.name(), workload.label(), faults),
            topology,
            workload,
            faults,
        })
    }

    /// Instantiate the family on a base simulator configuration: topology,
    /// workload, and seed applied; routing coerced to a topology-legal
    /// algorithm; faults drawn off the scenario seed with the same salt the
    /// sweep engine uses, so the draw is decorrelated from traffic yet
    /// fully reproducible.
    pub fn apply(&self, base: &SimConfig, seed: u64) -> SimConfig {
        let mut config = base
            .clone()
            .with_topology(self.topology)
            .with_workload(self.workload.clone())
            .with_seed(seed);
        config.routing = config.routing.for_topology(self.topology);
        if self.faults > 0 {
            let plan = FaultPlan::random_links(
                &config.topology(),
                self.faults,
                mix_seed(seed, 0xFA),
                0,
                None,
            );
            config = config.with_faults(plan);
        } else {
            config = config.with_faults(FaultPlan::empty());
        }
        config
    }
}

/// A named DQN hyper-parameter variant of the population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DqnVariant {
    /// Catalog name.
    pub name: String,
    /// The hyper-parameters (dimensions are overwritten per environment).
    pub dqn: DqnConfig,
}

/// Names of the built-in DQN variants [`dqn_variant`] resolves.
pub const DQN_VARIANT_NAMES: [&str; 6] = ["default", "small", "wide", "deep", "nstep3", "single"];

/// Look up a built-in DQN variant by name ([`DQN_VARIANT_NAMES`]).
pub fn dqn_variant(name: &str) -> Option<DqnVariant> {
    let dqn = match name {
        "default" => DqnConfig::default(),
        "small" => DqnConfig {
            hidden: vec![32],
            ..DqnConfig::default()
        },
        "wide" => DqnConfig {
            hidden: vec![128, 64],
            ..DqnConfig::default()
        },
        "deep" => DqnConfig {
            hidden: vec![64, 64, 64],
            ..DqnConfig::default()
        },
        "nstep3" => DqnConfig {
            n_step: 3,
            ..DqnConfig::default()
        },
        "single" => DqnConfig {
            double: false,
            ..DqnConfig::default()
        },
        _ => return None,
    };
    Some(DqnVariant {
        name: name.to_string(),
        dqn,
    })
}

/// A population-training grid: DQN variants × scenario families, trained
/// member-by-member with SplitMix64 per-member seeds off `base_seed` —
/// byte-identical artifacts at every thread count, same contract as the
/// sweep engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZooGrid {
    /// Base simulator configuration every family starts from.
    pub base: SimConfig,
    /// The population's DQN hyper-parameter variants.
    pub variants: Vec<DqnVariant>,
    /// The training scenario families.
    pub families: Vec<ScenarioFamily>,
    /// Training budget (its `seed` is overwritten per member).
    pub train: TrainConfig,
    /// Cycles per control epoch of the training environment.
    pub epoch_cycles: u64,
    /// Control epochs per training episode.
    pub epochs_per_episode: usize,
    /// Master seed; member seeds are `mix_seed(base_seed, index)`.
    pub base_seed: u64,
}

/// One member of a [`ZooGrid`] population (variant-major order).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZooMember {
    /// Grid index (variant-major, family-fastest).
    pub index: usize,
    /// Unique member name: `<variant>__<sanitized family>`.
    pub name: String,
    /// Variant name.
    pub variant: String,
    /// Canonical family name.
    pub family: String,
    /// The member's SplitMix64 seed.
    pub seed: u64,
}

/// Make a member/family name safe for a filename (slashes, brackets, and
/// other separators become `-`; the result is deterministic).
fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

impl ZooGrid {
    /// Number of members (variants × families).
    pub fn len(&self) -> usize {
        self.variants.len() * self.families.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expand the population in deterministic variant-major order, with
    /// each member's seed fixed by its index.
    pub fn members(&self) -> Vec<ZooMember> {
        let mut out = Vec::with_capacity(self.len());
        let mut index = 0usize;
        for variant in &self.variants {
            for family in &self.families {
                out.push(ZooMember {
                    index,
                    name: format!("{}__{}", variant.name, sanitize_name(&family.name)),
                    variant: variant.name.clone(),
                    family: family.name.clone(),
                    seed: mix_seed(self.base_seed, index as u64),
                });
                index += 1;
            }
        }
        out
    }
}

/// Train one member of the population. The member's seed drives the
/// environment, the agent initialization, and the exploration schedule, so
/// the resulting artifact is a pure function of (grid, index).
///
/// # Errors
/// Returns [`ZooError::Parse`] for an out-of-range index, or training
/// errors.
pub fn train_member(grid: &ZooGrid, index: usize) -> ZooResult<PolicyArtifact> {
    if index >= grid.len() {
        return Err(ZooError::Parse {
            context: "zoo grid member".into(),
            message: format!(
                "index {index} out of range (grid has {} members)",
                grid.len()
            ),
        });
    }
    let nf = grid.families.len();
    let variant = &grid.variants[index / nf];
    let family = &grid.families[index % nf];
    let seed = mix_seed(grid.base_seed, index as u64);
    let sim = family.apply(&grid.base, seed);
    let mut env = NocEnvConfig::for_sim(sim, seed);
    env.epoch_cycles = grid.epoch_cycles;
    env.epochs_per_episode = grid.epochs_per_episode;
    let mut dqn = variant.dqn.clone();
    dqn.seed = seed;
    let mut train = grid.train.clone();
    train.seed = seed;
    let policy = train_drl(env.clone(), dqn, train.clone())?;
    PolicyArtifact::from_dqn(&policy, env, train)
}

/// The zoo directory's index: every member, its file, and its config hash,
/// in grid order. Written as `manifest.json` next to the artifacts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZooManifest {
    /// Schema version ([`ZOO_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The grid's master seed.
    pub base_seed: u64,
    /// Members in grid order.
    pub members: Vec<ZooManifestEntry>,
}

/// One [`ZooManifest`] row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZooManifestEntry {
    /// Member name.
    pub name: String,
    /// Artifact filename (relative to the zoo directory).
    pub file: String,
    /// Variant name.
    pub variant: String,
    /// Canonical family name.
    pub family: String,
    /// The member's seed.
    pub seed: u64,
    /// The artifact's config hash.
    pub config_hash: String,
}

/// Train the whole population on `threads` OS threads and write one
/// artifact per member (plus `manifest.json`) into `out_dir`.
///
/// Artifacts and manifest are byte-identical for every `threads` value and
/// across reruns: members are trained into index slots via the shared
/// worker pool and written in grid order.
///
/// # Errors
/// Returns the first (in grid order) member's training error, or an
/// [`ZooError::Io`] on filesystem failure.
pub fn train_grid(grid: &ZooGrid, out_dir: &Path, threads: usize) -> ZooResult<ZooManifest> {
    let members = grid.members();
    if members.is_empty() {
        return Err(ZooError::Parse {
            context: "zoo grid".into(),
            message: "empty population: need at least one variant and one family".into(),
        });
    }
    let mut names: Vec<&str> = members.iter().map(|m| m.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    if names.len() != members.len() {
        return Err(ZooError::Parse {
            context: "zoo grid".into(),
            message: "duplicate member names (repeated variant or family)".into(),
        });
    }
    let trained = parallel_map(members.len(), threads, |i| {
        train_member(grid, i).map(|a| (a.to_json(), a.config_hash.clone()))
    });
    fs::create_dir_all(out_dir).map_err(|e| ZooError::Io {
        path: out_dir.display().to_string(),
        message: e.to_string(),
    })?;
    let mut entries = Vec::with_capacity(members.len());
    for (member, result) in members.into_iter().zip(trained) {
        let (json, config_hash) = result?;
        let file = format!("{}.json", member.name);
        let path = out_dir.join(&file);
        fs::write(&path, json).map_err(|e| ZooError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        entries.push(ZooManifestEntry {
            name: member.name,
            file,
            variant: member.variant,
            family: member.family,
            seed: member.seed,
            config_hash,
        });
    }
    let manifest = ZooManifest {
        schema_version: ZOO_SCHEMA_VERSION,
        base_seed: grid.base_seed,
        members: entries,
    };
    let manifest_path = out_dir.join("manifest.json");
    fs::write(
        &manifest_path,
        serde_json::to_string_pretty(&manifest).expect("manifest serializes"),
    )
    .map_err(|e| ZooError::Io {
        path: manifest_path.display().to_string(),
        message: e.to_string(),
    })?;
    Ok(manifest)
}

/// Load every policy in a zoo directory, in deterministic order: manifest
/// order when `manifest.json` exists (a `train_grid` output), else sorted
/// filename order over `*.json`. Every artifact is validated on load.
///
/// # Errors
/// I/O, parse, or validation errors; an empty directory is an error.
pub fn load_zoo(dir: &Path) -> ZooResult<Vec<(String, PolicyArtifact)>> {
    let manifest_path = dir.join("manifest.json");
    let mut out = Vec::new();
    if manifest_path.exists() {
        let text = fs::read_to_string(&manifest_path).map_err(|e| ZooError::Io {
            path: manifest_path.display().to_string(),
            message: e.to_string(),
        })?;
        let manifest: ZooManifest = serde_json::from_str(&text).map_err(|e| ZooError::Parse {
            context: format!("zoo manifest at `{}`", manifest_path.display()),
            message: e.to_string(),
        })?;
        if manifest.schema_version != ZOO_SCHEMA_VERSION {
            return Err(ZooError::SchemaVersion {
                found: manifest.schema_version,
                supported: ZOO_SCHEMA_VERSION,
            });
        }
        for entry in &manifest.members {
            out.push((
                entry.name.clone(),
                PolicyArtifact::load(&dir.join(&entry.file))?,
            ));
        }
    } else {
        let read = fs::read_dir(dir).map_err(|e| ZooError::Io {
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        let mut files: Vec<String> = Vec::new();
        for dirent in read {
            let dirent = dirent.map_err(|e| ZooError::Io {
                path: dir.display().to_string(),
                message: e.to_string(),
            })?;
            let name = dirent.file_name().to_string_lossy().into_owned();
            if name.ends_with(".json") && name != "manifest.json" {
                files.push(name);
            }
        }
        files.sort_unstable();
        for file in files {
            let name = file.trim_end_matches(".json").to_string();
            out.push((name, PolicyArtifact::load(&dir.join(&file))?));
        }
    }
    if out.is_empty() {
        return Err(ZooError::Parse {
            context: format!("zoo directory `{}`", dir.display()),
            message: "no policy artifacts found".into(),
        });
    }
    Ok(out)
}

/// The default tournament axes: mesh/torus × Bernoulli-uniform/bursty ×
/// healthy/2-fault — 2 topologies × 2 workloads × 2 fault levels.
pub fn default_tournament_families() -> Vec<ScenarioFamily> {
    let mut out = Vec::new();
    for topology in ["mesh", "torus"] {
        for traffic in ["uniform/r0.1", "ph[uniform:burst0.3x0.05]"] {
            for faults in [0usize, 2] {
                out.push(
                    ScenarioFamily::parse(&format!("{topology}/{traffic}/f{faults}"))
                        .expect("built-in family specs parse"),
                );
            }
        }
    }
    out
}

/// Configuration of a tournament: which scenario families every policy is
/// scored against, and the shared evaluation budget.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TournamentConfig {
    /// Base simulator configuration (fabric size, regions, VF table).
    pub base: SimConfig,
    /// The evaluation axes.
    pub families: Vec<ScenarioFamily>,
    /// Control epochs per cell.
    pub epochs: usize,
    /// Cycles per control epoch.
    pub epoch_cycles: u64,
    /// Reward used for scoring (shared across policies, so scores are
    /// comparable even when policies trained under different rewards).
    pub reward: RewardConfig,
    /// Master seed; cell seeds are `mix_seed(base_seed, cell index)`.
    pub base_seed: u64,
}

impl Default for TournamentConfig {
    fn default() -> Self {
        TournamentConfig {
            base: SimConfig::default(),
            families: default_tournament_families(),
            epochs: 12,
            epoch_cycles: 500,
            reward: RewardConfig::default(),
            base_seed: 0x70A2,
        }
    }
}

/// One cell of the generalization matrix: one policy on one family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TournamentCell {
    /// Policy name.
    pub policy: String,
    /// Canonical family name.
    pub family: String,
    /// The cell's simulation seed.
    pub seed: u64,
    /// Mean per-epoch reward under the tournament's reward config.
    pub score: f64,
    /// Aggregate run metrics (latency, energy, throughput, mean level).
    pub aggregate: RunAggregate,
}

/// The best policy of one family column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FamilyBest {
    /// Canonical family name.
    pub family: String,
    /// The winning policy.
    pub policy: String,
    /// Its score on this family.
    pub score: f64,
}

/// One policy's mean score across every family (the generalization
/// summary).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyMeanScore {
    /// Policy name.
    pub policy: String,
    /// Mean score over all families.
    pub mean_score: f64,
}

/// The tournament generalization matrix: every policy × every family, with
/// per-family winners and per-policy means. Deterministic: cell seeds are
/// fixed by cell index, cells are computed into index slots, and nothing in
/// the report depends on the thread count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TournamentReport {
    /// Schema version ([`ZOO_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The tournament configuration (axes, budget, seed).
    pub config: TournamentConfig,
    /// Policy names, row order.
    pub policies: Vec<String>,
    /// Cells in row-major (policy-major, family-fastest) order.
    pub cells: Vec<TournamentCell>,
    /// Per-family winners.
    pub best_by_family: Vec<FamilyBest>,
    /// Per-policy mean scores.
    pub mean_score_by_policy: Vec<PolicyMeanScore>,
}

/// Score every policy against every scenario family on `threads` OS
/// threads. The report is byte-identical for every `threads` value.
///
/// Every policy is validated, and its observation dimension checked against
/// the tournament fabric, before any cell runs — a policy trained on a
/// different region grid fails fast with a structured error naming it.
///
/// # Errors
/// Validation/compatibility errors, or the first (in cell order)
/// simulation error.
pub fn tournament_matrix(
    policies: &[(String, PolicyArtifact)],
    config: &TournamentConfig,
    threads: usize,
) -> ZooResult<TournamentReport> {
    if policies.is_empty() {
        return Err(ZooError::Parse {
            context: "tournament".into(),
            message: "no policies to score".into(),
        });
    }
    if config.families.is_empty() {
        return Err(ZooError::Parse {
            context: "tournament".into(),
            message: "no scenario families to score against".into(),
        });
    }
    // The observation layout depends only on the base fabric's region grid
    // (families vary topology/workload/faults, never regions), so one probe
    // environment yields the expected dimensions for every cell.
    let probe = NocEnv::new(NocEnvConfig::for_sim(config.base.clone(), 0))?;
    let expected_dim = probe.encoder().state_dim();
    for (name, artifact) in policies {
        artifact.validate().map_err(|e| match e {
            ZooError::Incompatible {
                field,
                expected,
                found,
                ..
            } => ZooError::Incompatible {
                policy: name.clone(),
                field,
                expected,
                found,
            },
            other => other,
        })?;
        if artifact.encoder.state_dim() != expected_dim {
            return Err(ZooError::Incompatible {
                policy: name.clone(),
                field: "state_dim",
                expected: expected_dim,
                found: artifact.encoder.state_dim(),
            });
        }
    }
    let nf = config.families.len();
    let n = policies.len() * nf;
    let cells: ZooResult<Vec<TournamentCell>> = parallel_map(n, threads, |index| {
        let (p, f) = (index / nf, index % nf);
        let family = &config.families[f];
        let seed = mix_seed(config.base_seed, index as u64);
        let sim = family.apply(&config.base, seed);
        let mut controller = policies[p].1.controller()?;
        let run = run_controller(
            &sim,
            controller.as_mut(),
            config.epochs,
            config.epoch_cycles,
        )?;
        let nodes = sim.width * sim.height;
        let score = if run.epochs.is_empty() {
            0.0
        } else {
            run.epochs
                .iter()
                .map(|m| config.reward.compute(m, nodes))
                .sum::<f64>()
                / run.epochs.len() as f64
        };
        Ok(TournamentCell {
            policy: policies[p].0.clone(),
            family: family.name.clone(),
            seed,
            score,
            aggregate: run.aggregate,
        })
    })
    .into_iter()
    .collect();
    let cells = cells?;
    let mut best_by_family = Vec::with_capacity(nf);
    for (f, family) in config.families.iter().enumerate() {
        let mut best: Option<&TournamentCell> = None;
        for p in 0..policies.len() {
            let cell = &cells[p * nf + f];
            let better = match best {
                None => true,
                Some(b) => cell.score > b.score,
            };
            if better {
                best = Some(cell);
            }
        }
        let best = best.expect("at least one policy");
        best_by_family.push(FamilyBest {
            family: family.name.clone(),
            policy: best.policy.clone(),
            score: best.score,
        });
    }
    let mean_score_by_policy = policies
        .iter()
        .enumerate()
        .map(|(p, (name, _))| PolicyMeanScore {
            policy: name.clone(),
            mean_score: cells[p * nf..(p + 1) * nf]
                .iter()
                .map(|c| c.score)
                .sum::<f64>()
                / nf as f64,
        })
        .collect();
    Ok(TournamentReport {
        schema_version: ZOO_SCHEMA_VERSION,
        config: config.clone(),
        policies: policies.iter().map(|(n, _)| n.clone()).collect(),
        cells,
        best_by_family,
        mean_score_by_policy,
    })
}

/// Load a zoo directory and run the tournament over it (see
/// [`load_zoo`] and [`tournament_matrix`]).
///
/// # Errors
/// As [`load_zoo`] and [`tournament_matrix`].
pub fn run_tournament(
    zoo_dir: &Path,
    config: &TournamentConfig,
    threads: usize,
) -> ZooResult<TournamentReport> {
    let policies = load_zoo(zoo_dir)?;
    tournament_matrix(&policies, config, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_hash_is_stable_and_sensitive() {
        let env = NocEnvConfig::for_sim(SimConfig::default().with_size(4, 4).with_regions(2, 2), 3);
        let dqn = DqnConfig::default();
        let train = TrainConfig::default();
        let h = dqn_config_hash(&env, &dqn, &train);
        assert_eq!(h.len(), 32, "two 64-bit hex words");
        assert_eq!(h, dqn_config_hash(&env, &dqn, &train), "deterministic");
        // Dimension normalization: a pre-training config (dims unset)
        // hashes the same as the post-training one (dims overwritten).
        let mut with_dims = dqn.clone();
        with_dims.state_dim = 17;
        with_dims.num_actions = 11;
        assert_eq!(h, dqn_config_hash(&env, &with_dims, &train));
        // Every real axis moves the hash.
        let mut env2 = env.clone();
        env2.epoch_cycles += 1;
        assert_ne!(h, dqn_config_hash(&env2, &dqn, &train));
        let dqn2 = DqnConfig {
            gamma: 0.9,
            ..dqn.clone()
        };
        assert_ne!(h, dqn_config_hash(&env, &dqn2, &train));
        let mut train2 = train.clone();
        train2.episodes += 1;
        assert_ne!(h, dqn_config_hash(&env, &dqn, &train2));
        // The tabular hash of the same env/train never collides with the
        // DQN hash (kind is part of the hashed text).
        assert_ne!(
            h,
            tabular_config_hash(&env, &TabularConfig::default(), &train)
        );
    }

    #[test]
    fn family_specs_parse_and_canonicalize() {
        let f = ScenarioFamily::parse("mesh/uniform/r0.1").unwrap();
        assert_eq!(f.topology, TopologyKind::Mesh);
        assert_eq!(f.faults, 0);
        assert_eq!(f.name, "mesh/ph[uniform:bern0.1]/f0");
        let f = ScenarioFamily::parse("torus/transpose/r0.05/f2").unwrap();
        assert_eq!(f.topology, TopologyKind::Torus);
        assert_eq!(f.faults, 2);
        let f = ScenarioFamily::parse("torus/ph[uniform:burst0.3x0.05]/f1").unwrap();
        assert_eq!(f.faults, 1);
        assert_eq!(f.name, "torus/ph[uniform:burst0.3x0.05]/f1");
        // The canonical name re-parses to the same family.
        let again = ScenarioFamily::parse(&f.name).unwrap();
        assert_eq!(f, again);
        assert!(ScenarioFamily::parse("ring/uniform/r0.1").is_err());
        assert!(ScenarioFamily::parse("mesh").is_err());
        assert!(ScenarioFamily::parse("mesh/uniform/q0.1").is_err());
    }

    #[test]
    fn family_apply_sets_topology_routing_faults_seed() {
        let family = ScenarioFamily::parse("torus/uniform/r0.1/f2").unwrap();
        let sim = family.apply(&SimConfig::default(), 99);
        assert_eq!(sim.kind, TopologyKind::Torus);
        assert_eq!(sim.seed, 99);
        assert_eq!(sim.fault_plan.events().len(), 2);
        // Routing was coerced to a torus-legal algorithm.
        assert_eq!(sim.routing, sim.routing.for_topology(TopologyKind::Torus));
        // Same seed, same plan (reproducible); different seed, fresh draw.
        let again = family.apply(&SimConfig::default(), 99);
        assert_eq!(sim.fault_plan, again.fault_plan);
    }

    #[test]
    fn grid_members_are_ordered_named_and_seeded() {
        let grid = ZooGrid {
            base: SimConfig::default().with_size(4, 4).with_regions(2, 2),
            variants: vec![
                dqn_variant("default").unwrap(),
                dqn_variant("small").unwrap(),
            ],
            families: vec![
                ScenarioFamily::parse("mesh/uniform/r0.1").unwrap(),
                ScenarioFamily::parse("torus/uniform/r0.1/f2").unwrap(),
            ],
            train: TrainConfig::default(),
            epoch_cycles: 100,
            epochs_per_episode: 2,
            base_seed: 42,
        };
        let members = grid.members();
        assert_eq!(members.len(), 4);
        assert_eq!(grid.len(), 4);
        assert_eq!(members[0].name, "default__mesh-ph-uniform-bern0.1--f0");
        assert_eq!(members[1].variant, "default");
        assert_eq!(members[2].variant, "small");
        let mut seeds: Vec<u64> = members.iter().map(|m| m.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 4, "member seeds must not collide");
        // Member expansion is a pure function of the grid.
        let again = grid.members();
        for (a, b) in members.iter().zip(&again) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.seed, b.seed);
        }
    }

    #[test]
    fn variant_catalog_resolves_all_names() {
        for name in DQN_VARIANT_NAMES {
            let v = dqn_variant(name).expect("catalog name resolves");
            assert_eq!(v.name, name);
        }
        assert!(dqn_variant("nope").is_none());
    }

    #[test]
    fn typed_controller_accessors_enforce_kind() {
        let env = NocEnvConfig::for_sim(SimConfig::default().with_size(4, 4).with_regions(2, 2), 1);
        let (agent, curve, encoder, action_space) = crate::training::train_tabular(
            env.clone(),
            TabularConfig {
                bins: 3,
                ..TabularConfig::default()
            },
            TrainConfig {
                episodes: 1,
                max_steps: 2,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        let artifact = PolicyArtifact::from_tabular(
            agent,
            curve,
            encoder,
            action_space,
            env,
            TrainConfig::default(),
        );
        assert_eq!(artifact.kind_name(), "tabular");
        assert!(artifact.tabular_controller().is_ok());
        assert!(matches!(
            artifact.drl_controller(),
            Err(ZooError::WrongKind { .. })
        ));
        assert!(artifact.controller().is_ok());
        assert!(!artifact.config_hash.is_empty());
    }

    #[test]
    fn unsupported_schema_version_is_rejected() {
        let env = NocEnvConfig::for_sim(SimConfig::default().with_size(4, 4).with_regions(2, 2), 1);
        let policy = train_drl(
            env.clone(),
            DqnConfig {
                hidden: vec![8],
                batch_size: 8,
                min_replay: 8,
                ..DqnConfig::default()
            },
            TrainConfig {
                episodes: 1,
                max_steps: 2,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        let mut artifact = PolicyArtifact::from_dqn(&policy, env, TrainConfig::default()).unwrap();
        artifact.schema_version = 99;
        assert!(matches!(
            artifact.validate(),
            Err(ZooError::SchemaVersion { found: 99, .. })
        ));
        // A future-versioned artifact on disk is rejected by parse+validate
        // (the round trip preserves the version).
        let reparsed = PolicyArtifact::parse(&artifact.to_json()).unwrap();
        assert!(reparsed.validate().is_err());
    }
}
