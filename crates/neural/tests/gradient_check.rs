//! Property-based numerical gradient checking of the full MLP backward pass
//! — the definitive correctness test for a from-scratch NN library.

use neural::{Activation, Adam, Loss, Matrix, Mlp, Sgd};
use proptest::prelude::*;

/// Scalar loss used for checking: MSE against a fixed random-ish target.
fn loss_of(net: &Mlp, x: &Matrix, target: &Matrix) -> f32 {
    let (l, _) = Loss::Mse.compute(&net.predict(x), target);
    l
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For random small architectures, activations, and inputs, the analytic
    /// parameter gradients match centered finite differences.
    #[test]
    fn backprop_matches_finite_differences(
        seed in 0u64..1000,
        hidden in 1usize..6,
        din in 1usize..4,
        dout in 1usize..3,
        act_id in 0usize..2,
        batch in 1usize..4,
    ) {
        // ReLU is excluded: centered finite differences lie at its kink
        // (the derivative tests in `neural::activation` cover it instead).
        let act = [Activation::Tanh, Activation::Sigmoid][act_id];
        let mut net = Mlp::new(&[din, hidden, dout], act, Activation::Linear, seed);
        // Deterministic pseudo-random input/target derived from the seed.
        let mut v = seed as f32 * 0.37 + 0.1;
        let mut next = || { v = (v * 1.7 + 0.31) % 2.0 - 1.0; v };
        let x = Matrix::from_vec(batch, din, (0..batch * din).map(|_| next()).collect());
        let target = Matrix::from_vec(batch, dout, (0..batch * dout).map(|_| next()).collect());

        net.zero_grad();
        let pred = net.forward(&x, true);
        let (_, grad) = Loss::Mse.compute(&pred, &target);
        net.backward(&grad);

        let h = 1e-2f32;
        for li in 0..net.layers().len() {
            let (gw, gb) = {
                let (gw, gb) = net.layers()[li].grads().expect("grads present");
                (gw.to_vec(), gb.to_vec())
            };
            // Sample a few weights (checking all is O(n²) evals).
            let nw = gw.len();
            for wi in [0, nw / 2, nw - 1] {
                let orig = net.layers()[li].params().0[wi];
                net.layers_mut()[li].params_mut().0[wi] = orig + h;
                let lp = loss_of(&net, &x, &target);
                net.layers_mut()[li].params_mut().0[wi] = orig - h;
                let lm = loss_of(&net, &x, &target);
                net.layers_mut()[li].params_mut().0[wi] = orig;
                let num = (lp - lm) / (2.0 * h);
                let ana = gw[wi];
                let tol = 0.05f32.max(0.15 * num.abs());
                prop_assert!((num - ana).abs() <= tol,
                    "layer {li} w[{wi}]: numerical {num} vs analytic {ana}");
            }
            for (bi, &ana) in gb.iter().enumerate().take(2) {
                let orig = net.layers()[li].params().1[bi];
                net.layers_mut()[li].params_mut().1[bi] = orig + h;
                let lp = loss_of(&net, &x, &target);
                net.layers_mut()[li].params_mut().1[bi] = orig - h;
                let lm = loss_of(&net, &x, &target);
                net.layers_mut()[li].params_mut().1[bi] = orig;
                let num = (lp - lm) / (2.0 * h);
                let tol = 0.05f32.max(0.15 * num.abs());
                prop_assert!((num - ana).abs() <= tol,
                    "layer {li} b[{bi}]: numerical {num} vs analytic {ana}");
            }
        }
    }

    /// One SGD step with a small learning rate never increases the loss on
    /// the training batch (local descent property).
    #[test]
    fn sgd_descends(seed in 0u64..300) {
        let mut net = Mlp::new(&[3, 8, 2], Activation::Tanh, Activation::Linear, seed);
        let x = Matrix::from_vec(4, 3, (0..12).map(|i| (i as f32 * 0.13).sin()).collect());
        let t = Matrix::from_vec(4, 2, (0..8).map(|i| (i as f32 * 0.29).cos()).collect());
        let before = loss_of(&net, &x, &t);
        let mut opt = Sgd::new(1e-3);
        net.train_batch(&x, &t, Loss::Mse, &mut opt);
        let after = loss_of(&net, &x, &t);
        prop_assert!(after <= before + 1e-6, "loss rose: {before} -> {after}");
    }

    /// Training drives the loss down by orders of magnitude on a learnable
    /// task, for any seed (robustness of init + Adam).
    #[test]
    fn adam_fits_linear_maps(seed in 0u64..50) {
        let mut net = Mlp::new(&[2, 8, 1], Activation::Tanh, Activation::Linear, seed);
        let x = Matrix::from_vec(8, 2,
            (0..16).map(|i| (i as f32 / 8.0) - 1.0).collect());
        let t = Matrix::from_vec(8, 1,
            (0..8).map(|i| {
                let a = (2 * i) as f32 / 8.0 - 1.0;
                let b = (2 * i + 1) as f32 / 8.0 - 1.0;
                0.5 * a - 0.3 * b
            }).collect());
        let mut opt = Adam::new(0.02);
        let first = loss_of(&net, &x, &t);
        for _ in 0..400 {
            net.train_batch(&x, &t, Loss::Mse, &mut opt);
        }
        let last = loss_of(&net, &x, &t);
        prop_assert!(last < first * 0.05 || last < 1e-4,
            "insufficient convergence: {first} -> {last}");
    }
}
