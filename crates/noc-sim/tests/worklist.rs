//! Differential guarantees of the active-router worklist.
//!
//! The SoA cycle core skips routers that are provably inert this cycle
//! (empty buffers, empty source queue) and accounts their leakage through
//! coalesced `IdleLeakageRun` ops. The claim: skipping is *unobservable* —
//! every metric, energy sum, and serialized byte matches a run where every
//! router walks the full pipeline every cycle (`set_step_all(true)`). The
//! proptest below samples topology, routing, faults, DVFS throttles, and
//! partition counts; golden pins nail the idle-heavy scenarios (where the
//! worklist actually skips most of the fabric) to concrete numbers.

use noc_sim::{
    FaultPlan, RoutingAlgorithm, SimConfig, Simulator, StatsCollector, ThrottleEvent, Topology,
    TopologyKind, TrafficPattern,
};
use proptest::prelude::*;

/// Run `cfg` with the worklist enabled (the default) or forced off, under
/// the given partition count, optionally dropping a region to a lower VF
/// level mid-run (which un-pristines the clock gates and forces the
/// idle-skip path to keep gate phases coherent).
fn run_mode(
    cfg: &SimConfig,
    partitions: usize,
    step_all: bool,
    relevel: Option<(usize, usize)>,
    cycles: u64,
) -> StatsCollector {
    let mut sim = Simulator::new(cfg.clone().with_partitions(partitions)).expect("valid config");
    sim.set_step_all(step_all);
    sim.run(cycles / 2);
    if let Some((region, level)) = relevel {
        sim.set_region_level(region, level).expect("valid level");
    }
    sim.run(cycles - cycles / 2);
    sim.stats().clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Worklist stepping vs forced step-everyone, over sampled topology
    /// kind, routing algorithm, injection rate (biased low, where skipping
    /// dominates), fault count, mid-run DVFS relevel, and partitions
    /// ∈ {1, 2, 4}. Structural and serialized-byte equality must both
    /// hold — f64 energy sums included, which requires the idle-leakage
    /// run expansion to replay the exact serial accumulation order.
    #[test]
    fn worklist_is_byte_identical_to_step_all(
        seed in 0u64..10_000,
        torus in any::<bool>(),
        route_sel in 0usize..3,
        rate_sel in 0usize..4,
        num_faults in 0usize..3,
        relevel_sel in 0usize..3,
    ) {
        let routing = if torus {
            [
                RoutingAlgorithm::TorusDor,
                RoutingAlgorithm::TorusMinAdaptive,
                RoutingAlgorithm::TorusDor,
            ][route_sel]
        } else {
            [
                RoutingAlgorithm::Xy,
                RoutingAlgorithm::OddEven,
                RoutingAlgorithm::NegativeFirst,
            ][route_sel]
        };
        // Idle-heavy rates dominate the sample: that is where the worklist
        // takes its shortcuts. One loaded point keeps the always-active
        // regime covered too.
        let rate = [0.0, 0.01, 0.05, 0.20][rate_sel];
        let relevel = match relevel_sel {
            0 => None,
            1 => Some((0, 1)),
            _ => Some((3, 3)),
        };
        let mut cfg = SimConfig::default()
            .with_size(8, 8)
            .with_regions(2, 2)
            .with_traffic(TrafficPattern::Uniform, rate)
            .with_routing(routing)
            .with_seed(seed);
        cfg.kind = if torus { TopologyKind::Torus } else { TopologyKind::Mesh };
        if num_faults > 0 {
            let topo = match cfg.kind {
                TopologyKind::Mesh => Topology::mesh(8, 8),
                TopologyKind::Torus => Topology::torus(8, 8),
            };
            cfg = cfg.with_faults(FaultPlan::random_links(
                &topo,
                num_faults,
                seed ^ 0x1D7E,
                50,
                None,
            ));
        }
        for p in [1usize, 2, 4] {
            let full = run_mode(&cfg, p, true, relevel, 400);
            let lazy = run_mode(&cfg, p, false, relevel, 400);
            prop_assert_eq!(
                &lazy, &full,
                "worklist diverged structurally at partitions={}", p
            );
            let full_bytes = serde_json::to_string(&full).expect("stats serialize");
            let lazy_bytes = serde_json::to_string(&lazy).expect("stats serialize");
            prop_assert_eq!(
                &lazy_bytes, &full_bytes,
                "worklist diverged in serialized bytes at partitions={}", p
            );
        }
    }
}

/// Golden pin of the idle-heavy 16×16 point (uniform at 0.01
/// flits/node/cycle — the `sim/16x16/uniform/r0.01` bench workload): exact
/// counters and f64 sums with the worklist on, plus byte-equality against
/// the forced step-everyone run. Skipping ~250 idle routers per cycle must
/// change nothing but the wall-clock.
#[test]
fn idle_heavy_16x16_golden_metrics() {
    let cfg = SimConfig::default()
        .with_size(16, 16)
        .with_traffic(TrafficPattern::Uniform, 0.01)
        .with_seed(42);
    let lazy = run_mode(&cfg, 1, false, None, 1_000);
    assert_eq!(
        (
            lazy.offered_packets,
            lazy.injected_flits,
            lazy.ejected_flits,
            lazy.ejected_packets,
            lazy.dropped_flits,
        ),
        (511, 2_550, 2_470, 493, 0),
        "idle-heavy 16x16 counters drifted"
    );
    assert_eq!(
        (
            lazy.sum_packet_latency,
            lazy.sum_network_latency,
            lazy.sum_hops
        ),
        (19_208.0, 19_203.0, 5_199.0),
        "idle-heavy 16x16 latency sums drifted"
    );
    assert_eq!(
        lazy.energy.total_pj(),
        274_296.90000029386,
        "idle-heavy 16x16 energy drifted"
    );
    let full = run_mode(&cfg, 1, true, None, 1_000);
    assert_eq!(lazy, full, "worklist run must match step-everyone");
    assert_eq!(
        serde_json::to_string(&lazy).unwrap(),
        serde_json::to_string(&full).unwrap(),
        "worklist bytes must match step-everyone"
    );
}

/// A totally idle fabric (zero injection) with throttle events still ticks
/// its clock gates coherently: the run completes, burns only leakage, and
/// matches the step-everyone twin even while DVFS emergencies retune gate
/// frequencies under fully-skipped routers.
#[test]
fn idle_fabric_under_throttles_matches_step_all() {
    let cfg = SimConfig::default()
        .with_size(8, 8)
        .with_regions(2, 2)
        .with_traffic(TrafficPattern::Uniform, 0.0)
        .with_throttles(vec![
            ThrottleEvent {
                start: 100,
                duration: 200,
                region: 0,
                level: 1,
            },
            ThrottleEvent {
                start: 250,
                duration: 100,
                region: 3,
                level: 2,
            },
        ])
        .with_seed(9);
    let lazy = run_mode(&cfg, 1, false, None, 600);
    let full = run_mode(&cfg, 1, true, None, 600);
    assert_eq!(lazy, full, "idle throttled fabric diverged");
    assert_eq!(lazy.injected_flits, 0, "zero-rate fabric must stay idle");
    assert!(
        lazy.energy.total_pj() > 0.0,
        "idle fabric still accounts leakage"
    );
}
