//! Implementation of the `noc-cli` subcommands (library form so the logic is
//! unit-testable without spawning processes).

#![warn(missing_docs)]

use noc_selfconf::serve::{
    Daemon, Event, Request, ResultCache, SchedulerConfig, ServeClient, ServeConfig,
};
use noc_selfconf::zoo;
use noc_selfconf::{
    run_controller, train_drl, NocEnvConfig, StaticController, SweepGrid, ThresholdController,
};
use noc_sim::{
    FaultPlan, PacketTrace, RoutingAlgorithm, RunSummary, SimConfig, Simulator, SwitchArb,
    TopologyKind, TrafficPattern, TrafficSpec, WorkloadSpec,
};
use rl::{DqnConfig, Schedule, TrainConfig};
use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

/// CLI-level error (message only; causes are rendered into it).
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for CliError {}

impl From<noc_sim::SimError> for CliError {
    fn from(e: noc_sim::SimError) -> Self {
        CliError(e.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(e.to_string())
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError(e.to_string())
    }
}

impl From<zoo::ZooError> for CliError {
    fn from(e: zoo::ZooError) -> Self {
        CliError(e.to_string())
    }
}

/// Load a `SimConfig` from a JSON file, or the default when no path is given.
pub fn load_config(path: Option<&str>) -> Result<SimConfig, CliError> {
    match path {
        Some(p) => {
            let text = fs::read_to_string(p)?;
            let cfg: SimConfig = serde_json::from_str(&text)?;
            cfg.validate()?;
            Ok(cfg)
        }
        None => Ok(SimConfig::default()),
    }
}

/// Print the human-readable report of a finished classic run.
fn print_run_summary(sim: &Simulator, run: &RunSummary) {
    println!("cycles measured      : {}", run.window.cycles);
    println!(
        "avg packet latency   : {:.2} cycles",
        run.window.avg_packet_latency
    );
    println!(
        "avg network latency  : {:.2} cycles",
        run.window.avg_network_latency
    );
    println!("avg hops             : {:.2}", run.window.avg_hops);
    println!(
        "throughput           : {:.4} flits/node/cycle",
        run.window.throughput
    );
    println!(
        "offered (accepted)   : {:.4} flits/node/cycle",
        run.window.injection_rate
    );
    println!(
        "energy               : {:.1} nJ",
        run.window.energy_pj / 1e3
    );
    println!(
        "  dynamic            : {:.1} nJ",
        run.window.dynamic_pj / 1e3
    );
    println!(
        "  leakage            : {:.1} nJ",
        run.window.leakage_pj / 1e3
    );
    println!(
        "EDP                  : {:.3}e6 pJ·cycles",
        run.window.edp() / 1e6
    );
    println!(
        "p95 latency (bucket) : {} cycles",
        sim.stats().latency_percentile_display(0.95)
    );
    if run.window.dropped_packets > 0 || run.window.avg_dead_links > 0.0 {
        println!(
            "dropped (faults)     : {} packets / {} flits",
            run.window.dropped_packets, run.window.dropped_flits
        );
        println!("mean dead links      : {:.1}", run.window.avg_dead_links);
    }
    println!("saturated            : {}", run.saturated);
    let map = sim
        .stats()
        .utilization_heatmap(sim.config().width, sim.config().height);
    if !map.is_empty() {
        println!("link utilization (per router):\n{map}");
    }
}

/// `simulate`: one warmup/measure/drain run, human-readable report.
pub fn cmd_simulate(config_path: Option<&str>) -> Result<(), CliError> {
    let cfg = load_config(config_path)?;
    let mut sim = Simulator::new(cfg)?;
    let run = sim.run_classic(2000, 8000, 8000);
    print_run_summary(&sim, &run);
    Ok(())
}

/// `sweep`: latency/throughput across an injection-rate range.
pub fn cmd_sweep(rate0: f64, rate1: f64, steps: usize) -> Result<(), CliError> {
    if steps < 2 || !(0.0..=1.0).contains(&rate0) || !(0.0..=1.0).contains(&rate1) {
        return Err(CliError("sweep needs rates in [0,1] and >= 2 steps".into()));
    }
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "rate", "latency", "throughput", "saturated"
    );
    for i in 0..steps {
        let rate = rate0 + (rate1 - rate0) * i as f64 / (steps - 1) as f64;
        let cfg = SimConfig::default().with_traffic(TrafficPattern::Uniform, rate);
        let mut sim = Simulator::new(cfg)?;
        let run = sim.run_classic(1500, 5000, 5000);
        println!(
            "{:>8.3} {:>12.1} {:>12.4} {:>10}",
            rate,
            run.window.avg_packet_latency,
            run.window.throughput,
            if run.saturated { "yes" } else { "no" }
        );
    }
    Ok(())
}

/// Look up `s` in a `NAMED`-style table, or list the valid names.
fn parse_named<T: Clone>(s: &str, what: &str, table: &[(&'static str, T)]) -> Result<T, CliError> {
    table
        .iter()
        .find(|(n, _)| *n == s)
        .map(|(_, v)| v.clone())
        .ok_or_else(|| {
            let names: Vec<&str> = table.iter().map(|(n, _)| *n).collect();
            CliError(format!(
                "unknown {what} `{s}` (expected one of: {})",
                names.join(", ")
            ))
        })
}

fn parse_pattern(s: &str) -> Result<TrafficPattern, CliError> {
    // The canonical grammar also covers parameterized hotspot labels
    // (`hotspot5-6f0.3`), which a `NAMED` lookup cannot.
    TrafficPattern::parse(s).map_err(|e| CliError(e.to_string()))
}

fn parse_workload(s: &str) -> Result<WorkloadSpec, CliError> {
    WorkloadSpec::parse(s).map_err(|e| CliError(e.to_string()))
}

fn parse_routing(s: &str) -> Result<RoutingAlgorithm, CliError> {
    parse_named(s, "routing", &RoutingAlgorithm::NAMED)
}

fn parse_arb(s: &str) -> Result<SwitchArb, CliError> {
    SwitchArb::parse(s).map_err(|e| CliError(e.to_string()))
}

fn parse_topology(s: &str) -> Result<TopologyKind, CliError> {
    parse_named(s, "topology", &TopologyKind::NAMED)
}

fn parse_size(s: &str) -> Result<(usize, usize), CliError> {
    let (w, h) = s
        .split_once('x')
        .ok_or_else(|| CliError(format!("bad size `{s}` (expected WxH, e.g. 8x8)")))?;
    let parse = |v: &str| {
        v.parse::<usize>()
            .map_err(|e| CliError(format!("bad size `{s}`: {e}")))
    };
    Ok((parse(w)?, parse(h)?))
}

fn parse_list<T>(
    value: &str,
    what: &str,
    parse: impl Fn(&str) -> Result<T, CliError>,
) -> Result<Vec<T>, CliError> {
    let items: Result<Vec<T>, CliError> = value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse(s.trim()))
        .collect();
    let items = items?;
    if items.is_empty() {
        return Err(CliError(format!("--{what} needs at least one value")));
    }
    Ok(items)
}

/// How `sweep-grid` should execute and where the report goes.
#[derive(Debug)]
pub struct SweepGridOptions {
    /// The grid to run.
    pub grid: SweepGrid,
    /// Worker threads (`None` = one per available core).
    pub threads: Option<usize>,
    /// Run on the calling thread only (equivalent results, no pool).
    pub serial: bool,
    /// Write the JSON report here instead of stdout.
    pub out: Option<String>,
    /// Content-addressed result cache directory: scenarios already present
    /// are loaded instead of simulated, fresh ones are stored for next time.
    pub cache: Option<String>,
}

/// Parse `sweep-grid` flags into a grid + execution options.
///
/// # Errors
/// Returns a usage error for unknown flags or malformed values.
pub fn parse_sweep_grid_args(args: &[String]) -> Result<SweepGridOptions, CliError> {
    let mut opts = SweepGridOptions {
        grid: SweepGrid::default(),
        threads: None,
        serial: false,
        out: None,
        cache: None,
    };
    const VALUE_FLAGS: [&str; 17] = [
        "--sizes",
        "--topologies",
        "--patterns",
        "--rates",
        "--routings",
        "--levels",
        "--faults",
        "--workloads",
        "--arb",
        "--warmup",
        "--measure",
        "--drain",
        "--seed",
        "--threads",
        "--partitions",
        "--out",
        "--cache",
    ];
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--serial" {
            opts.serial = true;
            continue;
        }
        // Reject unknown flags before demanding a value, so `--bogus` as
        // the last argument is diagnosed as unknown, not as missing a value.
        if !VALUE_FLAGS.contains(&flag.as_str()) {
            return Err(CliError(format!(
                "unknown sweep-grid flag `{flag}` (expected {}, or --serial)",
                VALUE_FLAGS.join(", ")
            )));
        }
        let value = it
            .next()
            .ok_or_else(|| CliError(format!("{flag} requires a value")))?;
        match flag.as_str() {
            "--sizes" => opts.grid.sizes = parse_list(value, "sizes", parse_size)?,
            "--topologies" => {
                opts.grid.topologies = parse_list(value, "topologies", parse_topology)?;
            }
            "--patterns" => {
                opts.grid.patterns = parse_list(value, "patterns", parse_pattern)?;
            }
            "--rates" => {
                opts.grid.rates = parse_list(value, "rates", |s| {
                    s.parse::<f64>()
                        .map_err(|e| CliError(format!("bad rate `{s}`: {e}")))
                })?;
            }
            "--routings" => {
                opts.grid.routings = parse_list(value, "routings", parse_routing)?;
            }
            "--levels" => {
                opts.grid.levels = parse_list(value, "levels", |s| {
                    if s == "none" {
                        Ok(None)
                    } else {
                        s.parse::<usize>()
                            .map(Some)
                            .map_err(|e| CliError(format!("bad level `{s}`: {e}")))
                    }
                })?;
            }
            "--faults" => {
                opts.grid.faults = parse_list(value, "faults", |s| {
                    s.parse::<usize>()
                        .map_err(|e| CliError(format!("bad fault count `{s}`: {e}")))
                })?;
            }
            "--workloads" => {
                opts.grid.workloads = parse_list(value, "workloads", parse_workload)?;
            }
            "--arb" => {
                opts.grid.base = opts.grid.base.clone().with_switch_arb(parse_arb(value)?);
            }
            "--warmup" | "--measure" | "--drain" | "--seed" => {
                let n: u64 = value
                    .parse()
                    .map_err(|e| CliError(format!("bad {flag} `{value}`: {e}")))?;
                match flag.as_str() {
                    "--warmup" => opts.grid.warmup = n,
                    "--measure" => opts.grid.measure = n,
                    "--drain" => opts.grid.drain = n,
                    _ => opts.grid.base_seed = n,
                }
            }
            "--threads" => {
                let n: usize = value
                    .parse()
                    .map_err(|e| CliError(format!("bad --threads `{value}`: {e}")))?;
                if n == 0 {
                    return Err(CliError("--threads must be at least 1".into()));
                }
                opts.threads = Some(n);
            }
            "--partitions" => {
                let n: usize = value
                    .parse()
                    .map_err(|e| CliError(format!("bad --partitions `{value}`: {e}")))?;
                if n == 0 {
                    return Err(CliError("--partitions must be at least 1".into()));
                }
                opts.grid.partitions = n;
            }
            "--out" => opts.out = Some(value.clone()),
            "--cache" => opts.cache = Some(value.clone()),
            _ => unreachable!("flag membership checked above"),
        }
    }
    if opts.serial && opts.threads.is_some() {
        return Err(CliError("--serial and --threads conflict: pick one".into()));
    }
    if opts.grid.is_empty() {
        return Err(CliError("sweep-grid: the grid is empty".into()));
    }
    Ok(opts)
}

/// `sweep-grid`: run a scenario grid in parallel and emit one aggregated
/// JSON report (stdout, or `--out <file>`). The `--topologies` axis sweeps
/// topology kinds (`mesh,torus` — each routing is mapped to its counterpart
/// on the other family, and torus scenarios carry a `/t:torus` label
/// segment); the `--faults` axis sweeps seeded-random permanent link-fault
/// counts (0 = pristine fabric); the `--workloads` axis adds explicit
/// workload specs (canonical `ph[…]` labels) alongside the `--patterns` ×
/// `--rates` points.
///
/// # Errors
/// Returns an error for bad flags, invalid configurations, or IO failures.
pub fn cmd_sweep_grid(args: &[String]) -> Result<(), CliError> {
    let opts = parse_sweep_grid_args(args)?;
    let threads = opts.threads.unwrap_or_else(noc_selfconf::default_threads);
    let report = match &opts.cache {
        Some(dir) => {
            let cache = ResultCache::open(std::path::Path::new(dir))
                .map_err(|e| CliError(format!("cannot open cache dir `{dir}`: {e}")))?;
            let report = opts
                .grid
                .run_cached(if opts.serial { 1 } else { threads }, &cache)?;
            let stats = cache.stats();
            eprintln!(
                "sweep-grid: cache {dir}: {} memory / {} disk hit(s), {} computed",
                stats.memory_hits, stats.disk_hits, stats.computed
            );
            report
        }
        None if opts.serial => opts.grid.run_serial()?,
        None => opts.grid.run(threads)?,
    };
    // Human summary on stderr; stdout stays pure JSON for piping.
    eprintln!(
        "sweep-grid: {} scenarios on {} thread(s); {} saturated",
        report.aggregate.num_scenarios, report.threads, report.aggregate.saturated_scenarios
    );
    for r in &report.scenarios {
        let dropped = if r.metrics.dropped_packets > 0 {
            format!("  [dropped {}]", r.metrics.dropped_packets)
        } else {
            String::new()
        };
        eprintln!(
            "  {:<28} latency {:>8.2}  throughput {:>7.4}  energy {:>10.1} nJ{}{dropped}",
            r.label,
            r.metrics.avg_packet_latency,
            r.metrics.throughput,
            r.metrics.energy_pj / 1e3,
            if r.saturated { "  [saturated]" } else { "" }
        );
    }
    let json = serde_json::to_string_pretty(&report)?;
    match &opts.out {
        Some(path) => {
            fs::write(path, json.as_bytes())?;
            eprintln!("sweep-grid: report written to {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

/// Parsed `run` flags: a fully resolved configuration plus window budgets.
#[derive(Debug)]
pub struct RunOptions {
    /// The simulator configuration the run uses.
    pub config: SimConfig,
    /// Warmup cycles before the measurement window.
    pub warmup: u64,
    /// Measurement-window cycles.
    pub measure: u64,
    /// Maximum drain cycles after the window.
    pub drain: u64,
}

/// Parse `run` flags into a resolved configuration.
///
/// Starts from the default `SimConfig` (or `--config <file>`), then applies
/// the scenario flags. The routing is mapped through
/// [`RoutingAlgorithm::for_topology`] at the end, so `--topology torus`
/// works with the default (or any mesh) routing: `xy` runs as `torusdor`,
/// the adaptive mesh algorithms as `torusmin` — and vice versa on meshes.
///
/// # Errors
/// Returns a usage error for unknown flags, malformed values, or the
/// `--workload` vs `--pattern`/`--rate` conflict.
pub fn parse_run_args(args: &[String]) -> Result<RunOptions, CliError> {
    const VALUE_FLAGS: [&str; 14] = [
        "--config",
        "--topology",
        "--size",
        "--routing",
        "--pattern",
        "--rate",
        "--workload",
        "--arb",
        "--faults",
        "--partitions",
        "--seed",
        "--warmup",
        "--measure",
        "--drain",
    ];
    // Collect (flag, value) pairs first so --config loads before overrides
    // regardless of argument order.
    let mut pairs: Vec<(&str, &str)> = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if !VALUE_FLAGS.contains(&flag.as_str()) {
            return Err(CliError(format!(
                "unknown run flag `{flag}` (expected {})",
                VALUE_FLAGS.join(", ")
            )));
        }
        let value = it
            .next()
            .ok_or_else(|| CliError(format!("{flag} requires a value")))?;
        pairs.push((flag.as_str(), value.as_str()));
    }
    let mut config = match pairs.iter().find(|(f, _)| *f == "--config") {
        Some((_, path)) => load_config(Some(path))?,
        None => SimConfig::default(),
    };
    let (mut warmup, mut measure, mut drain) = (1000u64, 4000u64, 4000u64);
    let mut pattern: Option<TrafficPattern> = None;
    let mut rate: Option<f64> = None;
    let mut workload: Option<WorkloadSpec> = None;
    let mut faults: Option<usize> = None;
    for (flag, value) in pairs {
        match flag {
            "--config" => {} // already applied
            "--topology" => config = config.with_topology(parse_topology(value)?),
            "--size" => {
                let (w, h) = parse_size(value)?;
                config = config.with_size(w, h);
            }
            "--routing" => config = config.with_routing(parse_routing(value)?),
            "--pattern" => pattern = Some(parse_pattern(value)?),
            "--rate" => {
                rate = Some(
                    value
                        .parse::<f64>()
                        .map_err(|e| CliError(format!("bad --rate `{value}`: {e}")))?,
                );
            }
            "--workload" => workload = Some(parse_workload(value)?),
            "--arb" => config = config.with_switch_arb(parse_arb(value)?),
            "--faults" => {
                faults = Some(
                    value
                        .parse()
                        .map_err(|e| CliError(format!("bad --faults `{value}`: {e}")))?,
                );
            }
            "--partitions" => {
                let n: usize = value
                    .parse()
                    .map_err(|e| CliError(format!("bad --partitions `{value}`: {e}")))?;
                if n == 0 {
                    return Err(CliError("--partitions must be at least 1".into()));
                }
                config = config.with_partitions(n);
            }
            "--seed" | "--warmup" | "--measure" | "--drain" => {
                let n: u64 = value
                    .parse()
                    .map_err(|e| CliError(format!("bad {flag} `{value}`: {e}")))?;
                match flag {
                    "--seed" => config = config.with_seed(n),
                    "--warmup" => warmup = n,
                    "--measure" => measure = n,
                    _ => drain = n,
                }
            }
            _ => unreachable!("flag membership checked above"),
        }
    }
    if workload.is_some() && (pattern.is_some() || rate.is_some()) {
        return Err(CliError(
            "--workload conflicts with --pattern/--rate: pick one traffic form".into(),
        ));
    }
    if let Some(w) = workload {
        config = config.with_workload(w);
    } else if pattern.is_some() || rate.is_some() {
        config = config.with_traffic(
            pattern.unwrap_or(TrafficPattern::Uniform),
            rate.unwrap_or(0.10),
        );
    }
    config.routing = config.routing.for_topology(config.kind);
    // An explicit --faults always overrides the base config's plan:
    // `--faults 0` clears a plan inherited from --config instead of
    // silently running a faulted fabric.
    match faults {
        Some(0) => config = config.with_faults(FaultPlan::empty()),
        Some(n) => {
            // Seeded off the run's own seed, like the sweep engine's
            // fault axis.
            let plan =
                FaultPlan::random_links(&config.topology(), n, config.seed ^ 0xFA17, 0, None);
            config = config.with_faults(plan);
        }
        None => {}
    }
    config.validate()?;
    Ok(RunOptions {
        config,
        warmup,
        measure,
        drain,
    })
}

/// `run`: one classic warmup/measure/drain simulation configured inline
/// (`--topology torus --size 8x8 --rate 0.12 ...`) instead of through a
/// config file — the quickest way to put a scenario, mesh or torus, on the
/// screen.
///
/// # Errors
/// Returns an error for bad flags or an invalid resolved configuration.
pub fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let opts = parse_run_args(args)?;
    let cfg = &opts.config;
    eprintln!(
        "run: {}x{} {}, {} routing, {} arbitration, {} traffic, {} fault event(s); \
         {} warmup + {} measure + {} drain cycles",
        cfg.width,
        cfg.height,
        cfg.kind.name(),
        cfg.routing.name(),
        cfg.switch_arb.name(),
        match &cfg.traffic {
            TrafficSpec::Workload(w) => w.label(),
            TrafficSpec::Trace(_) => "trace".to_string(),
        },
        cfg.fault_plan.len(),
        opts.warmup,
        opts.measure,
        opts.drain
    );
    let mut sim = Simulator::new(opts.config.clone())?;
    let run = sim.run_classic(opts.warmup, opts.measure, opts.drain);
    print_run_summary(&sim, &run);
    Ok(())
}

/// `workload`: parse and describe canonical workload labels.
///
/// * `workload parse <label>` — validate a label, then print its canonical
///   form and the JSON spec it denotes (stdout stays machine-readable).
/// * `workload describe <label>` — human-readable phase table with mean
///   rates and schedule length.
///
/// # Errors
/// Returns a usage error for unknown subcommands or malformed labels.
pub fn cmd_workload(args: &[String]) -> Result<(), CliError> {
    let usage = || {
        CliError(
            "usage: noc-cli workload <parse|describe> <label>   (label grammar: \
             ph[<pattern>:<process>[:<len>][@cycles]|…], processes: bern<rate>, \
             burst<rate_on>x<switch>, pulse<rate>x<period>x<on>; lengths: \
             len<flits>, lenU<min>-<max>, lenB<short>-<long>p<pct>)"
                .into(),
        )
    };
    let (sub, label) = match (args.first(), args.get(1)) {
        (Some(sub), Some(label)) if args.len() == 2 => (sub.as_str(), label.as_str()),
        _ => return Err(usage()),
    };
    let spec = parse_workload(label)?;
    match sub {
        "parse" => {
            eprintln!("workload: canonical label {}", spec.label());
            println!("{}", serde_json::to_string_pretty(&spec)?);
            Ok(())
        }
        "describe" => {
            println!("workload {}", spec.label());
            println!(
                "{:>2}  {:<18} {:<20} {:>10} {:>10}",
                "#", "pattern", "process", "cycles", "mean rate"
            );
            for (i, p) in spec.phases.iter().enumerate() {
                let cycles = if p.cycles == 0 {
                    "forever".to_string()
                } else {
                    p.cycles.to_string()
                };
                println!(
                    "{i:>2}  {:<18} {:<20} {cycles:>10} {:>10.4}",
                    p.pattern.name(),
                    p.process.label(),
                    p.process.mean_rate()
                );
            }
            let total: u64 = spec.phases.iter().map(|p| p.cycles).sum();
            if spec.phases.last().map(|p| p.cycles) == Some(0) {
                if total == 0 {
                    println!("schedule: stationary (the single phase holds forever)");
                } else {
                    println!("schedule: runs {total} cycles, then holds the final phase");
                }
            } else {
                println!("schedule: repeats every {total} cycles");
            }
            println!(
                "long-run mean rate: {:.4} flits/node/cycle",
                spec.mean_rate()
            );
            Ok(())
        }
        _ => Err(usage()),
    }
}

/// Parsed `bench` flags.
#[derive(Debug)]
pub struct BenchOptions {
    /// Use the quick (smoke) suite budgets instead of the full ones.
    pub quick: bool,
    /// Override the suite's repeat count.
    pub repeats: Option<usize>,
    /// Write the report here (default: `BENCH_<git-sha>.json`).
    pub out: Option<String>,
    /// Baseline report to compare against.
    pub compare: Option<String>,
    /// Candidate report to compare (skips running the suite).
    pub against: Option<String>,
    /// Fractional regression tolerance for `--compare`.
    pub tolerance: f64,
    /// Git SHA to stamp into the report (default: auto-detected).
    pub sha: Option<String>,
    /// Append a one-line summary (sha, date, headline cycles/sec) to this
    /// CSV after the run — the committed perf-history file.
    pub trajectory: Option<String>,
    /// Suite budget override (tests use tiny budgets; not CLI-reachable).
    pub suite: Option<noc_bench::report::BenchSuiteConfig>,
}

/// Parse `bench` flags.
///
/// # Errors
/// Returns a usage error for unknown flags or malformed values.
pub fn parse_bench_args(args: &[String]) -> Result<BenchOptions, CliError> {
    let mut opts = BenchOptions {
        quick: false,
        repeats: None,
        out: None,
        compare: None,
        against: None,
        tolerance: noc_bench::report::DEFAULT_TOLERANCE,
        sha: None,
        trajectory: None,
        suite: None,
    };
    const VALUE_FLAGS: [&str; 7] = [
        "--repeats",
        "--out",
        "--compare",
        "--against",
        "--tolerance",
        "--sha",
        "--trajectory",
    ];
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--quick" {
            opts.quick = true;
            continue;
        }
        if !VALUE_FLAGS.contains(&flag.as_str()) {
            return Err(CliError(format!(
                "unknown bench flag `{flag}` (expected {}, or --quick)",
                VALUE_FLAGS.join(", ")
            )));
        }
        let value = it
            .next()
            .ok_or_else(|| CliError(format!("{flag} requires a value")))?;
        match flag.as_str() {
            "--repeats" => {
                let n: usize = value
                    .parse()
                    .map_err(|e| CliError(format!("bad --repeats `{value}`: {e}")))?;
                if n == 0 {
                    return Err(CliError("--repeats must be at least 1".into()));
                }
                opts.repeats = Some(n);
            }
            "--out" => opts.out = Some(value.clone()),
            "--compare" => opts.compare = Some(value.clone()),
            "--against" => opts.against = Some(value.clone()),
            "--tolerance" => {
                let t: f64 = value
                    .parse()
                    .map_err(|e| CliError(format!("bad --tolerance `{value}`: {e}")))?;
                if !t.is_finite() || t <= 0.0 {
                    return Err(CliError("--tolerance must be positive".into()));
                }
                opts.tolerance = t;
            }
            "--sha" => opts.sha = Some(value.clone()),
            "--trajectory" => opts.trajectory = Some(value.clone()),
            _ => unreachable!("flag membership checked above"),
        }
    }
    if opts.against.is_some() && opts.compare.is_none() {
        return Err(CliError("--against requires --compare".into()));
    }
    Ok(opts)
}

fn load_bench_report(path: &str) -> Result<noc_bench::report::BenchReport, CliError> {
    let text = fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read bench report `{path}`: {e}")))?;
    serde_json::from_str(&text)
        .map_err(|e| CliError(format!("malformed bench report `{path}`: {e}")))
}

/// Execute parsed `bench` options: run the suite (or load `--against`),
/// write the report, and apply the `--compare` gate.
///
/// # Errors
/// Returns an error for IO failures or when the comparison finds
/// regressions (so the process exits non-zero — the CI gate).
pub fn run_bench(opts: &BenchOptions) -> Result<(), CliError> {
    use noc_bench::report::{compare, detect_git_sha, run_suite, BenchSuiteConfig};

    let new_report = match &opts.against {
        Some(path) => {
            eprintln!("bench: comparing {path} (no suite run)");
            load_bench_report(path)?
        }
        None => {
            let mode = if opts.quick { "quick" } else { "full" };
            let mut suite = opts.suite.unwrap_or_else(|| {
                if opts.quick {
                    BenchSuiteConfig::quick()
                } else {
                    BenchSuiteConfig::full()
                }
            });
            if let Some(r) = opts.repeats {
                suite.repeats = r;
            }
            let sha = opts.sha.clone().unwrap_or_else(detect_git_sha);
            eprintln!(
                "bench: running the {mode} suite ({} repeats per workload)...",
                suite.repeats
            );
            let report = run_suite(suite, mode, sha);
            eprint!("{}", report.render_table());
            let path = opts.out.clone().unwrap_or_else(|| report.file_name());
            fs::write(&path, serde_json::to_string_pretty(&report)?)?;
            eprintln!("bench: report written to {path}");
            report
        }
    };

    if let Some(path) = &opts.trajectory {
        noc_bench::report::append_trajectory(&new_report, std::path::Path::new(path))
            .map_err(|e| CliError(format!("cannot append trajectory to `{path}`: {e}")))?;
        eprintln!("bench: trajectory row appended to {path}");
    }

    if let Some(baseline_path) = &opts.compare {
        let baseline = load_bench_report(baseline_path)?;
        let cmp = compare(&baseline, &new_report, opts.tolerance).map_err(CliError)?;
        println!("{}", cmp.render_table());
        let failures = cmp.failures();
        if failures > 0 {
            let mut broke: Vec<String> = cmp.breached().iter().map(|s| s.to_string()).collect();
            broke.extend(cmp.missing_in_new.iter().map(|n| format!("{n} (missing)")));
            return Err(CliError(format!(
                "bench: {failures} perf failure(s) vs {baseline_path} \
                 (budget breached by: {})",
                broke.join(", ")
            )));
        }
        eprintln!("bench: no regressions vs {baseline_path}");
    }
    Ok(())
}

/// `bench`: run the timed workload suite, emit `BENCH_<sha>.json`, and
/// optionally gate against a baseline report.
pub fn cmd_bench(args: &[String]) -> Result<(), CliError> {
    run_bench(&parse_bench_args(args)?)
}

/// Parse `train` arguments: `<out.json>` plus training flags, with every
/// remaining `--flag value` pair handed to the `run` scenario parser.
///
/// # Errors
/// Returns a usage error for missing/extra positionals or bad values.
pub fn parse_train_args(args: &[String]) -> Result<TrainOptions, CliError> {
    let usage = || {
        CliError(
            "usage: noc-cli train <out.json> [episodes] [--episodes N] [--max-steps N] \
             [run scenario flags: --topology --size --pattern --rate --workload --faults \
             --seed --config ...]"
                .into(),
        )
    };
    let mut positionals: Vec<String> = Vec::new();
    let mut episodes: Option<usize> = None;
    let mut max_steps: usize = 40;
    let mut run_flags: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--episodes" | "--max-steps" => {
                let value = it
                    .next()
                    .ok_or_else(|| CliError(format!("{arg} requires a value")))?;
                let n: usize = value
                    .parse()
                    .map_err(|e| CliError(format!("bad {arg} `{value}`: {e}")))?;
                if n == 0 {
                    return Err(CliError(format!("{arg} must be at least 1")));
                }
                if arg == "--episodes" {
                    episodes = Some(n);
                } else {
                    max_steps = n;
                }
            }
            flag if flag.starts_with("--") => {
                let value = it
                    .next()
                    .ok_or_else(|| CliError(format!("{flag} requires a value")))?;
                run_flags.push(flag.to_string());
                run_flags.push(value.clone());
            }
            _ => positionals.push(arg.clone()),
        }
    }
    if positionals.is_empty() || positionals.len() > 2 {
        return Err(usage());
    }
    let out_path = positionals[0].clone();
    if let Some(legacy) = positionals.get(1) {
        // Pre-zoo grammar: `train <out.json> <episodes>`.
        let n: usize = legacy
            .parse()
            .map_err(|e| CliError(format!("bad episode count `{legacy}`: {e}")))?;
        if episodes.is_some() {
            return Err(CliError(
                "episode count given both positionally and via --episodes".into(),
            ));
        }
        episodes = Some(n);
    }
    let episodes = episodes.unwrap_or(60).max(1);
    let run = parse_run_args(&run_flags)?;
    Ok(TrainOptions {
        out_path,
        episodes,
        max_steps,
        run,
    })
}

/// Resolved `train` arguments.
#[derive(Debug)]
pub struct TrainOptions {
    /// Artifact output path.
    pub out_path: String,
    /// Training episodes.
    pub episodes: usize,
    /// Environment steps per episode.
    pub max_steps: usize,
    /// The training scenario (fabric, traffic, faults, seed).
    pub run: RunOptions,
}

/// `train`: train a DQN self-configuration policy on an arbitrary scenario
/// (same flags as `run`) and save it as a versioned zoo artifact. The seed
/// comes from the scenario (`--seed`), so two invocations with the same
/// flags produce byte-identical artifacts.
pub fn cmd_train(args: &[String]) -> Result<(), CliError> {
    let opts = parse_train_args(args)?;
    let seed = opts.run.config.seed;
    let episodes = opts.episodes;
    let env_cfg = NocEnvConfig::for_sim(opts.run.config.clone(), seed);
    let train = TrainConfig {
        episodes,
        max_steps: opts.max_steps,
        epsilon: Schedule::Linear {
            start: 1.0,
            end: 0.05,
            steps: ((episodes * opts.max_steps) as u64 * 5 / 8).max(1),
        },
        train_per_step: 1,
        seed,
    };
    eprintln!(
        "training on the {}x{} {} environment (seed {seed}) for {episodes} episodes...",
        env_cfg.sim.width,
        env_cfg.sim.height,
        env_cfg.sim.kind.name()
    );
    let policy = train_drl(
        env_cfg.clone(),
        DqnConfig::default().with_seed(seed),
        train.clone(),
    )?;
    let quarter = (policy.curve.len() / 4).max(1);
    let late: f64 = policy.curve[policy.curve.len() - quarter..]
        .iter()
        .map(|e| e.total_reward)
        .sum::<f64>()
        / quarter as f64;
    eprintln!("final mean episode return: {late:.2}");
    let artifact = zoo::PolicyArtifact::from_dqn(&policy, env_cfg, train)?;
    artifact.save(Path::new(&opts.out_path))?;
    println!(
        "saved policy to {} (config hash {})",
        opts.out_path, artifact.config_hash
    );
    Ok(())
}

/// `evaluate`: run a saved policy against the baselines on the default mesh.
/// Accepts zoo artifacts and all legacy policy shapes; every load is
/// validated by the zoo layer before a controller is built.
pub fn cmd_evaluate(policy_path: &str) -> Result<(), CliError> {
    let artifact = zoo::PolicyArtifact::load(Path::new(policy_path))?;
    eprintln!(
        "loaded {} policy from {policy_path}{}",
        artifact.kind_name(),
        if artifact.config_hash.is_empty() {
            " (legacy artifact, no provenance)".to_string()
        } else {
            format!(" (config hash {})", artifact.config_hash)
        }
    );
    let cfg = SimConfig::default().with_traffic(TrafficPattern::Uniform, 0.12);
    // Reject stale artifacts cleanly: a policy trained against an older
    // observation layout (or a different region grid) observes a different
    // number of features than this fabric produces.
    let probe_env = noc_selfconf::NocEnv::new(NocEnvConfig::for_sim(cfg.clone(), 0))?;
    let expected = probe_env.encoder().state_dim();
    if artifact.encoder.state_dim() != expected {
        return Err(CliError(format!(
            "policy `{policy_path}` is incompatible: it observes {} features but this \
             fabric produces {expected} — retrain with `noc-cli train`",
            artifact.encoder.state_dim()
        )));
    }
    let probe = Simulator::new(cfg.clone())?;
    let caps = probe.network().region_capacity();
    let nodes = probe.network().topology().num_nodes();
    let mut controllers: Vec<Box<dyn noc_selfconf::Controller>> = vec![
        Box::new(StaticController::max()),
        Box::new(StaticController::min()),
        Box::new(ThresholdController::new(caps, nodes)),
        artifact.controller()?,
    ];
    println!(
        "{:>12} {:>10} {:>12} {:>12} {:>10}",
        "controller", "latency", "energy (nJ)", "EDP (e6)", "mean lvl"
    );
    for c in controllers.iter_mut() {
        let run = run_controller(&cfg, c.as_mut(), 40, 500)?;
        println!(
            "{:>12} {:>10.1} {:>12.1} {:>12.2} {:>10.2}",
            run.aggregate.controller,
            run.aggregate.avg_latency,
            run.aggregate.energy_pj / 1e3,
            run.aggregate.edp / 1e6,
            run.aggregate.mean_level
        );
    }
    Ok(())
}

/// One positional argument, the zoo-specific `(flag, value)` pairs, and the
/// leftover run flags, in that order.
type ZooArgs<'a> = (String, Vec<(&'a str, &'a str)>, Vec<String>);

/// Split `args` into zoo-specific `(flag, value)` pairs and leftover run
/// flags (which configure the base fabric and the master seed).
fn split_zoo_flags<'a>(
    args: &'a [String],
    zoo_flags: &[&str],
    positional_name: &str,
) -> Result<ZooArgs<'a>, CliError> {
    let mut positionals: Vec<String> = Vec::new();
    let mut pairs: Vec<(&str, &str)> = Vec::new();
    let mut run_flags: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg.starts_with("--") {
            let value = it
                .next()
                .ok_or_else(|| CliError(format!("{arg} requires a value")))?;
            if zoo_flags.contains(&arg.as_str()) {
                pairs.push((arg.as_str(), value.as_str()));
            } else {
                run_flags.push(arg.clone());
                run_flags.push(value.clone());
            }
        } else {
            positionals.push(arg.clone());
        }
    }
    if positionals.len() != 1 {
        return Err(CliError(format!(
            "expected exactly one positional argument: {positional_name}"
        )));
    }
    Ok((positionals.remove(0), pairs, run_flags))
}

fn parse_families(spec: &str) -> Result<Vec<zoo::ScenarioFamily>, CliError> {
    spec.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| zoo::ScenarioFamily::parse(s).map_err(CliError::from))
        .collect()
}

/// `train-grid`: train a population of DQN variants × scenario families
/// into a zoo directory. Parallel over members, yet the artifacts and
/// manifest are byte-identical for every `--threads` value (SplitMix64
/// per-member seeds off the master `--seed`).
pub fn cmd_train_grid(args: &[String]) -> Result<(), CliError> {
    const ZOO_FLAGS: [&str; 6] = [
        "--variants",
        "--families",
        "--episodes",
        "--max-steps",
        "--epochs-per-episode",
        "--threads",
    ];
    let (out_dir, pairs, run_flags) = split_zoo_flags(args, &ZOO_FLAGS, "<zoo-dir>")?;
    let run = parse_run_args(&run_flags)?;
    let mut variants: Vec<zoo::DqnVariant> = ["default", "small"]
        .iter()
        .map(|n| zoo::dqn_variant(n).expect("built-in variant"))
        .collect();
    let mut families = vec![
        zoo::ScenarioFamily::parse("mesh/uniform/r0.1")?,
        zoo::ScenarioFamily::parse("torus/uniform/r0.1/f2")?,
    ];
    let mut episodes = 20usize;
    let mut max_steps = 40usize;
    let mut epochs_per_episode = 40usize;
    let mut threads = noc_selfconf::default_threads();
    for (flag, value) in pairs {
        match flag {
            "--variants" => {
                variants = value
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|name| {
                        zoo::dqn_variant(name).ok_or_else(|| {
                            CliError(format!(
                                "unknown DQN variant `{name}` (expected one of: {})",
                                zoo::DQN_VARIANT_NAMES.join(", ")
                            ))
                        })
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--families" => families = parse_families(value)?,
            _ => {
                let n: usize = value
                    .parse()
                    .map_err(|e| CliError(format!("bad {flag} `{value}`: {e}")))?;
                if n == 0 {
                    return Err(CliError(format!("{flag} must be at least 1")));
                }
                match flag {
                    "--episodes" => episodes = n,
                    "--max-steps" => max_steps = n,
                    "--epochs-per-episode" => epochs_per_episode = n,
                    _ => threads = n,
                }
            }
        }
    }
    let base_seed = run.config.seed;
    let grid = zoo::ZooGrid {
        base: run.config,
        variants,
        families,
        train: TrainConfig {
            episodes,
            max_steps,
            epsilon: Schedule::Linear {
                start: 1.0,
                end: 0.05,
                steps: ((episodes * max_steps) as u64 * 5 / 8).max(1),
            },
            train_per_step: 1,
            seed: base_seed, // overwritten per member
        },
        epoch_cycles: 500,
        epochs_per_episode,
        base_seed,
    };
    eprintln!(
        "train-grid: {} variants x {} families = {} members on {threads} threads \
         (seed {base_seed})",
        grid.variants.len(),
        grid.families.len(),
        grid.len()
    );
    let manifest = zoo::train_grid(&grid, Path::new(&out_dir), threads)?;
    for member in &manifest.members {
        println!(
            "{}  seed={}  hash={}",
            member.name, member.seed, member.config_hash
        );
    }
    println!(
        "trained {} policies into {out_dir} (manifest.json written)",
        manifest.members.len()
    );
    Ok(())
}

/// `tournament`: score every policy in a zoo directory against every
/// scenario family and print the generalization matrix. The report is
/// deterministic and byte-identical for every `--threads` value.
pub fn cmd_tournament(args: &[String]) -> Result<(), CliError> {
    const ZOO_FLAGS: [&str; 4] = ["--families", "--epochs", "--threads", "--out"];
    let (zoo_dir, pairs, run_flags) = split_zoo_flags(args, &ZOO_FLAGS, "<zoo-dir>")?;
    let run = parse_run_args(&run_flags)?;
    let mut config = zoo::TournamentConfig {
        base: run.config,
        ..zoo::TournamentConfig::default()
    };
    config.base_seed = config.base.seed;
    let mut threads = noc_selfconf::default_threads();
    let mut out: Option<String> = None;
    for (flag, value) in pairs {
        match flag {
            "--families" => config.families = parse_families(value)?,
            "--epochs" => {
                config.epochs = value
                    .parse()
                    .map_err(|e| CliError(format!("bad --epochs `{value}`: {e}")))?;
            }
            "--threads" => {
                threads = value
                    .parse()
                    .map_err(|e| CliError(format!("bad --threads `{value}`: {e}")))?;
                if threads == 0 {
                    return Err(CliError("--threads must be at least 1".into()));
                }
            }
            _ => out = Some(value.to_string()),
        }
    }
    let report = zoo::run_tournament(Path::new(&zoo_dir), &config, threads)?;
    println!(
        "tournament: {} policies x {} families (seed {})",
        report.policies.len(),
        report.config.families.len(),
        report.config.base_seed
    );
    println!(
        "\n{:<44} {:>10} {:>10} {:>10}",
        "cell", "score", "latency", "mean lvl"
    );
    for cell in &report.cells {
        println!(
            "{:<44} {:>10.3} {:>10.1} {:>10.2}",
            format!("{} @ {}", cell.policy, cell.family),
            cell.score,
            cell.aggregate.avg_latency,
            cell.aggregate.mean_level
        );
    }
    println!("\nbest policy per family:");
    for best in &report.best_by_family {
        println!("{:<36} {} ({:.3})", best.family, best.policy, best.score);
    }
    println!("\nmean score per policy (generalization):");
    for mean in &report.mean_score_by_policy {
        println!("{:<44} {:.3}", mean.policy, mean.mean_score);
    }
    if let Some(path) = out {
        fs::write(&path, serde_json::to_string_pretty(&report)?)?;
        println!("\nwrote {path}");
    }
    Ok(())
}

/// `replay`: drive the default mesh with a packet trace from a CSV file
/// (`cycle,src,dst,len` per line) and report delivery statistics.
pub fn cmd_replay(trace_path: &str, repeat_every: Option<u64>) -> Result<(), CliError> {
    let text = fs::read_to_string(trace_path)?;
    let trace = PacketTrace::from_csv(&text, repeat_every)?;
    let n_events = trace.len();
    let cfg = SimConfig::default().with_traffic_spec(TrafficSpec::Trace(trace));
    let mut sim = Simulator::new(cfg)?;
    // Run until the trace drains (or a generous bound for repeating traces).
    let bound: u64 = if repeat_every.is_some() {
        50_000
    } else {
        200_000
    };
    let mut idle_streak = 0u32;
    for _ in 0..bound / 100 {
        sim.run(100);
        if repeat_every.is_none() {
            if sim.network().in_flight() == 0 && sim.stats().offered_packets as usize >= n_events {
                idle_streak += 1;
                if idle_streak > 2 {
                    break;
                }
            } else {
                idle_streak = 0;
            }
        }
    }
    let s = sim.stats();
    println!("trace events         : {n_events}");
    println!("packets delivered    : {}", s.ejected_packets);
    println!(
        "avg packet latency   : {:.2} cycles",
        s.avg_packet_latency()
    );
    println!(
        "p95 latency (bucket) : {} cycles",
        s.latency_percentile_display(0.95)
    );
    println!("energy               : {:.1} nJ", s.energy.total_pj() / 1e3);
    println!("cycles simulated     : {}", sim.cycle());
    Ok(())
}

/// `default-config`: dump the default `SimConfig` as editable JSON.
pub fn cmd_default_config() -> Result<(), CliError> {
    println!("{}", serde_json::to_string_pretty(&SimConfig::default())?);
    Ok(())
}

/// Default daemon address shared by `serve`, `submit`, and `serve-ctl`.
pub const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:4600";

/// Parse `serve` flags into a daemon configuration.
///
/// # Errors
/// Returns a usage error for unknown flags or malformed values.
pub fn parse_serve_args(args: &[String]) -> Result<ServeConfig, CliError> {
    let mut config = ServeConfig {
        addr: DEFAULT_SERVE_ADDR.to_string(),
        scheduler: SchedulerConfig::default(),
        cache_dir: None,
        verbose: true,
    };
    const VALUE_FLAGS: [&str; 5] = [
        "--addr",
        "--cache",
        "--threads",
        "--max-outstanding",
        "--max-client-outstanding",
    ];
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if !VALUE_FLAGS.contains(&flag.as_str()) {
            return Err(CliError(format!(
                "unknown serve flag `{flag}` (expected {})",
                VALUE_FLAGS.join(", ")
            )));
        }
        let value = it
            .next()
            .ok_or_else(|| CliError(format!("{flag} requires a value")))?;
        match flag.as_str() {
            "--addr" => config.addr = value.clone(),
            "--cache" => config.cache_dir = Some(std::path::PathBuf::from(value)),
            "--threads" => {
                let n: usize = value
                    .parse()
                    .map_err(|e| CliError(format!("bad --threads `{value}`: {e}")))?;
                if n == 0 {
                    return Err(CliError("--threads must be at least 1".into()));
                }
                config.scheduler.threads = n;
            }
            "--max-outstanding" | "--max-client-outstanding" => {
                let n: u64 = value
                    .parse()
                    .map_err(|e| CliError(format!("bad {flag} `{value}`: {e}")))?;
                if n == 0 {
                    return Err(CliError(format!("{flag} must be at least 1")));
                }
                if flag == "--max-outstanding" {
                    config.scheduler.max_outstanding = n;
                } else {
                    config.scheduler.max_client_outstanding = n;
                }
            }
            _ => unreachable!("flag membership checked above"),
        }
    }
    Ok(config)
}

/// `serve`: run the sweep daemon until a client sends `shutdown`.
///
/// Prints the bound address on stdout (one line, then flushes) so scripts
/// can wait for readiness; lifecycle logs go to stderr.
///
/// # Errors
/// Returns bind errors and unwritable-cache-directory errors (the daemon
/// refuses to start rather than failing jobs later).
pub fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let config = parse_serve_args(args)?;
    let daemon = Daemon::start(config).map_err(|e| CliError(format!("serve: {e}")))?;
    println!("listening on {}", daemon.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    daemon.wait();
    Ok(())
}

/// Parsed `submit` flags: where to send the grid and what to do with it.
#[derive(Debug)]
pub struct SubmitOptions {
    /// Daemon address.
    pub addr: String,
    /// Client identity for fair-share scheduling.
    pub client: String,
    /// The grid to submit.
    pub grid: SweepGrid,
    /// Write the final JSON report here (in addition to the event stream).
    pub out: Option<String>,
}

/// Parse `submit` flags: `--addr` / `--client` plus every `sweep-grid`
/// grid axis flag (`--sizes`, `--rates`, `--out`, ...).
///
/// # Errors
/// Returns a usage error for unknown flags, malformed values, or the
/// execution flags (`--threads`, `--serial`, `--partitions`, `--cache`)
/// that do not apply to daemon-side execution.
pub fn parse_submit_args(args: &[String]) -> Result<SubmitOptions, CliError> {
    let mut addr = DEFAULT_SERVE_ADDR.to_string();
    let mut client = "cli".to_string();
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" | "--client" => {
                let value = it
                    .next()
                    .ok_or_else(|| CliError(format!("{flag} requires a value")))?;
                if flag == "--addr" {
                    addr = value.clone();
                } else {
                    client = value.clone();
                }
            }
            "--threads" | "--serial" | "--partitions" | "--cache" => {
                return Err(CliError(format!(
                    "{flag} does not apply to submit: execution happens on the daemon"
                )));
            }
            _ => rest.push(flag.clone()),
        }
    }
    let opts = parse_sweep_grid_args(&rest)?;
    Ok(SubmitOptions {
        addr,
        client,
        grid: opts.grid,
        out: opts.out,
    })
}

/// `submit`: send a grid to a running daemon and stream the response.
///
/// Every event line the daemon sends is echoed verbatim to stdout — for
/// one submitted grid the stream is deterministic, which is what the CI
/// smoke test byte-compares across concurrent clients. With `--out`, the
/// final report is also written as pretty JSON.
///
/// # Errors
/// Returns connection errors, daemon-side rejections, and job failures
/// (so the process exits non-zero).
pub fn cmd_submit(args: &[String]) -> Result<(), CliError> {
    let opts = parse_submit_args(args)?;
    let mut conn = ServeClient::connect(&opts.addr)
        .map_err(|e| CliError(format!("cannot connect to daemon at {}: {e}", opts.addr)))?;
    conn.send(&Request::Submit {
        client: opts.client.clone(),
        grid: Box::new(opts.grid.clone()),
    })?;
    loop {
        let line = conn.recv_line()?;
        println!("{line}");
        let event =
            Event::parse(&line).map_err(|e| CliError(format!("malformed daemon reply: {e}")))?;
        match event {
            Event::Accepted { .. } | Event::Result { .. } => {}
            Event::Done { report, .. } => {
                eprintln!(
                    "submit: {} scenarios done ({} saturated)",
                    report.aggregate.num_scenarios, report.aggregate.saturated_scenarios
                );
                if let Some(path) = &opts.out {
                    fs::write(path, serde_json::to_string_pretty(report.as_ref())?)?;
                    eprintln!("submit: report written to {path}");
                }
                return Ok(());
            }
            Event::Canceled { completed, .. } => {
                return Err(CliError(format!(
                    "job canceled after {completed} scenario(s)"
                )));
            }
            Event::Failed { message, .. } => {
                return Err(CliError(format!("job failed: {message}")));
            }
            Event::Error { code, message } => {
                return Err(CliError(format!(
                    "daemon rejected submit ({}): {message}",
                    code.name()
                )));
            }
            other => {
                return Err(CliError(format!(
                    "unexpected daemon reply: {}",
                    other.render()
                )));
            }
        }
    }
}

/// `serve-ctl`: one-shot control commands against a running daemon
/// (`ping`, `stats`, `shutdown`). Prints the raw reply line on stdout.
///
/// # Errors
/// Returns connection errors, malformed replies, and daemon-side errors.
pub fn cmd_serve_ctl(args: &[String]) -> Result<(), CliError> {
    let usage =
        || CliError("usage: noc-cli serve-ctl <ping|stats|shutdown> [--addr HOST:PORT]".into());
    let sub = args.first().ok_or_else(usage)?;
    let request = match sub.as_str() {
        "ping" => Request::Ping,
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        _ => return Err(usage()),
    };
    let mut addr = DEFAULT_SERVE_ADDR.to_string();
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        if flag != "--addr" {
            return Err(usage());
        }
        addr = it
            .next()
            .ok_or_else(|| CliError("--addr requires a value".into()))?
            .clone();
    }
    let mut conn = ServeClient::connect(&addr)
        .map_err(|e| CliError(format!("cannot connect to daemon at {addr}: {e}")))?;
    conn.send(&request)?;
    let line = conn.recv_line()?;
    println!("{line}");
    match Event::parse(&line).map_err(|e| CliError(format!("malformed daemon reply: {e}")))? {
        Event::Error { code, message } => Err(CliError(format!(
            "daemon error ({}): {message}",
            code.name()
        ))),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_loads_when_no_path() {
        let cfg = load_config(None).unwrap();
        assert_eq!(cfg, SimConfig::default());
    }

    #[test]
    fn config_roundtrips_through_json_file() {
        let dir = std::env::temp_dir().join("noc_cli_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cfg.json");
        let cfg = SimConfig::default().with_size(4, 4).with_seed(5);
        fs::write(&path, serde_json::to_string(&cfg).unwrap()).unwrap();
        let loaded = load_config(Some(path.to_str().unwrap())).unwrap();
        assert_eq!(loaded, cfg);
    }

    #[test]
    fn invalid_config_file_is_rejected() {
        let dir = std::env::temp_dir().join("noc_cli_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        fs::write(&path, "{\"not\": \"a config\"}").unwrap();
        assert!(load_config(Some(path.to_str().unwrap())).is_err());
        assert!(load_config(Some("/nonexistent/file.json")).is_err());
    }

    #[test]
    fn sweep_validates_arguments() {
        assert!(cmd_sweep(0.5, 0.1, 1).is_err());
        assert!(cmd_sweep(-0.1, 0.5, 3).is_err());
    }

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn sweep_grid_args_build_the_grid() {
        let opts = parse_sweep_grid_args(&strings(&[
            "--sizes",
            "4x4,8x8",
            "--patterns",
            "uniform,tornado",
            "--rates",
            "0.05,0.1,0.2",
            "--routings",
            "xy,oddeven",
            "--levels",
            "none,2",
            "--faults",
            "0,1",
            "--warmup",
            "100",
            "--measure",
            "400",
            "--drain",
            "300",
            "--seed",
            "9",
            "--threads",
            "3",
            "--partitions",
            "4",
        ]))
        .unwrap();
        let g = &opts.grid;
        assert_eq!(g.sizes, vec![(4, 4), (8, 8)]);
        assert_eq!(
            g.patterns,
            vec![TrafficPattern::Uniform, TrafficPattern::Tornado]
        );
        assert_eq!(g.rates, vec![0.05, 0.1, 0.2]);
        assert_eq!(
            g.routings,
            vec![RoutingAlgorithm::Xy, RoutingAlgorithm::OddEven]
        );
        assert_eq!(g.levels, vec![None, Some(2)]);
        assert_eq!(g.faults, vec![0, 1]);
        assert_eq!(
            (g.warmup, g.measure, g.drain, g.base_seed),
            (100, 400, 300, 9)
        );
        assert_eq!(opts.threads, Some(3));
        assert_eq!(g.partitions, 4);
        assert!(!opts.serial);
        assert_eq!(g.len(), 2 * 2 * 3 * 2 * 2 * 2);
        for s in g.scenarios() {
            assert_eq!(s.config.partitions, 4, "partitions reach every scenario");
        }
    }

    #[test]
    fn sweep_grid_workloads_flag_parses_the_grammar() {
        use noc_sim::{InjectionProcess, WorkloadPhase};
        let opts = parse_sweep_grid_args(&strings(&[
            "--workloads",
            "ph[uniform:burst0.3x0.05],ph[uniform:bern0.02@400|tornado:pulse0.3x100x40@400]",
        ]))
        .unwrap();
        assert_eq!(
            opts.grid.workloads,
            vec![
                WorkloadSpec::stationary(
                    TrafficPattern::Uniform,
                    InjectionProcess::Bursty {
                        rate_on: 0.3,
                        switch: 0.05
                    }
                ),
                WorkloadSpec::new(vec![
                    WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.02, 400),
                    WorkloadPhase::new(
                        TrafficPattern::Tornado,
                        InjectionProcess::Periodic {
                            rate: 0.3,
                            period: 100,
                            on: 40
                        },
                        400
                    ),
                ]),
            ]
        );
        // Two extra traffic points per size/routing/level/fault combination.
        assert_eq!(opts.grid.len(), 2 * (2 * 2 + 2));
        assert!(parse_sweep_grid_args(&strings(&["--workloads", "ph[oops]"])).is_err());
        assert!(parse_sweep_grid_args(&strings(&["--workloads", "uniform:bern0.1"])).is_err());
    }

    #[test]
    fn sweep_grid_arb_flag_reaches_every_scenario() {
        let opts = parse_sweep_grid_args(&strings(&["--arb", "perpacket"])).unwrap();
        assert_eq!(opts.grid.base.switch_arb, noc_sim::SwitchArb::PerPacket);
        for s in opts.grid.scenarios() {
            assert_eq!(s.config.switch_arb, noc_sim::SwitchArb::PerPacket);
        }
        let opts = parse_sweep_grid_args(&strings(&[])).unwrap();
        assert_eq!(opts.grid.base.switch_arb, noc_sim::SwitchArb::PerFlit);
        assert!(parse_sweep_grid_args(&strings(&["--arb", "storeforward"])).is_err());
    }

    #[test]
    fn hotspot_patterns_parse_from_the_cli() {
        use noc_sim::NodeId;
        let opts =
            parse_sweep_grid_args(&strings(&["--patterns", "uniform,hotspot5-6f0.3"])).unwrap();
        assert_eq!(
            opts.grid.patterns,
            vec![
                TrafficPattern::Uniform,
                TrafficPattern::Hotspot {
                    hotspots: vec![NodeId(5), NodeId(6)],
                    fraction: 0.3
                }
            ]
        );
        assert!(parse_sweep_grid_args(&strings(&["--patterns", "hotspotf0.3"])).is_err());
    }

    #[test]
    fn workload_subcommand_parses_and_describes() {
        let label = "ph[uniform:bern0.05@400|tornado:burst0.3x0.05@400]".to_string();
        assert!(cmd_workload(&[strings(&["parse"]), vec![label.clone()]].concat()).is_ok());
        assert!(cmd_workload(&[strings(&["describe"]), vec![label.clone()]].concat()).is_ok());
        // Stationary + hold-forever labels describe cleanly too.
        assert!(cmd_workload(&strings(&[
            "describe",
            "ph[hotspot0-5f0.25:pulse0.4x100x20]"
        ]))
        .is_ok());
        assert!(cmd_workload(&strings(&["parse"])).is_err());
        assert!(cmd_workload(&strings(&["parse", "ph[oops]"])).is_err());
        assert!(cmd_workload(&strings(&["frobnicate", &label])).is_err());
        assert!(cmd_workload(&strings(&["parse", &label, "extra"])).is_err());
    }

    #[test]
    fn sweep_grid_topologies_flag_parses() {
        let opts = parse_sweep_grid_args(&strings(&[
            "--topologies",
            "mesh,torus",
            "--routings",
            "xy",
        ]))
        .unwrap();
        assert_eq!(
            opts.grid.topologies,
            vec![TopologyKind::Mesh, TopologyKind::Torus]
        );
        // 2 sizes x 2 topologies x (2 patterns x 2 rates) x 1 routing each.
        assert_eq!(opts.grid.len(), 16);
        assert!(parse_sweep_grid_args(&strings(&["--topologies", "ring"])).is_err());
        assert!(parse_sweep_grid_args(&strings(&["--topologies", ""])).is_err());
        // Old invocations keep the mesh-only default.
        let opts = parse_sweep_grid_args(&[]).unwrap();
        assert_eq!(opts.grid.topologies, vec![TopologyKind::Mesh]);
    }

    #[test]
    fn run_args_resolve_topology_and_routing() {
        // Defaults: the stock 8x8 mesh config.
        let opts = parse_run_args(&[]).unwrap();
        assert_eq!(opts.config, SimConfig::default());
        assert_eq!((opts.warmup, opts.measure, opts.drain), (1000, 4000, 4000));
        // --topology torus maps the default xy routing to torusdor.
        let opts = parse_run_args(&strings(&["--topology", "torus"])).unwrap();
        assert_eq!(opts.config.kind, TopologyKind::Torus);
        assert_eq!(opts.config.routing, RoutingAlgorithm::TorusDor);
        assert!(opts.config.validate().is_ok());
        // An adaptive mesh routing maps to the adaptive torus algorithm.
        let opts = parse_run_args(&strings(&[
            "--topology",
            "torus",
            "--routing",
            "oddeven",
            "--size",
            "4x4",
            "--rate",
            "0.12",
            "--faults",
            "2",
            "--partitions",
            "2",
            "--seed",
            "9",
            "--warmup",
            "10",
            "--measure",
            "20",
            "--drain",
            "30",
        ]))
        .unwrap();
        assert_eq!(opts.config.routing, RoutingAlgorithm::TorusMinAdaptive);
        assert_eq!((opts.config.width, opts.config.height), (4, 4));
        assert_eq!(opts.config.partitions, 2);
        assert_eq!(opts.config.seed, 9);
        assert_eq!(opts.config.fault_plan.len(), 2);
        assert!(opts
            .config
            .fault_plan
            .validate(&opts.config.topology())
            .is_ok());
        assert_eq!((opts.warmup, opts.measure, opts.drain), (10, 20, 30));
        // An explicit --faults 0 clears a fault plan inherited from
        // --config instead of silently running the faulted fabric.
        let dir = std::env::temp_dir().join("noc_cli_test");
        fs::create_dir_all(&dir).unwrap();
        let faulted_path = dir.join("faulted_base.json");
        let faulted = SimConfig::default().with_faults(noc_sim::FaultPlan::random_links(
            &SimConfig::default().topology(),
            3,
            1,
            0,
            None,
        ));
        fs::write(&faulted_path, serde_json::to_string(&faulted).unwrap()).unwrap();
        let base = faulted_path.to_str().unwrap().to_string();
        let opts = parse_run_args(&strings(&["--config", &base])).unwrap();
        assert_eq!(opts.config.fault_plan.len(), 3, "config plan inherited");
        let opts = parse_run_args(&strings(&["--config", &base, "--faults", "0"])).unwrap();
        assert!(
            opts.config.fault_plan.is_empty(),
            "--faults 0 must clear it"
        );
        let opts = parse_run_args(&strings(&["--config", &base, "--faults", "1"])).unwrap();
        assert_eq!(opts.config.fault_plan.len(), 1, "--faults N must override");
        // Torus routing on a mesh maps back to its mesh counterpart.
        let opts = parse_run_args(&strings(&["--routing", "torusmin"])).unwrap();
        assert_eq!(opts.config.routing, RoutingAlgorithm::OddEven);
        // Workloads are accepted, and conflict with --pattern/--rate.
        let opts = parse_run_args(&strings(&["--workload", "ph[uniform:burst0.3x0.05]"])).unwrap();
        assert!(matches!(opts.config.traffic, TrafficSpec::Workload(_)));
        assert!(parse_run_args(&strings(&[
            "--workload",
            "ph[uniform:bern0.1]",
            "--rate",
            "0.2"
        ]))
        .is_err());
        // Switch arbitration selects per-packet wormhole grants, defaults to
        // the legacy per-flit mode, and rejects unknown names.
        let opts = parse_run_args(&strings(&["--arb", "perpacket"])).unwrap();
        assert_eq!(opts.config.switch_arb, noc_sim::SwitchArb::PerPacket);
        let opts = parse_run_args(&strings(&[])).unwrap();
        assert_eq!(opts.config.switch_arb, noc_sim::SwitchArb::PerFlit);
        assert!(parse_run_args(&strings(&["--arb", "wormhole"])).is_err());
        // Bad input is diagnosed.
        assert!(parse_run_args(&strings(&["--topology", "ring"])).is_err());
        assert!(parse_run_args(&strings(&["--bogus", "1"])).is_err());
        assert!(parse_run_args(&strings(&["--rate"])).is_err());
    }

    #[test]
    fn run_end_to_end_on_a_faulted_torus() {
        cmd_run(&strings(&[
            "--topology",
            "torus",
            "--size",
            "4x4",
            "--routing",
            "torusmin",
            "--rate",
            "0.08",
            "--faults",
            "1",
            "--warmup",
            "50",
            "--measure",
            "150",
            "--drain",
            "150",
        ]))
        .expect("faulted torus run completes");
    }

    #[test]
    fn sweep_grid_defaults_run_eight_scenarios() {
        let opts = parse_sweep_grid_args(&[]).unwrap();
        assert_eq!(opts.grid.len(), 8);
        assert!(opts.out.is_none());
    }

    #[test]
    fn sweep_grid_rejects_bad_flags() {
        assert!(parse_sweep_grid_args(&strings(&["--sizes", "4by4"])).is_err());
        assert!(parse_sweep_grid_args(&strings(&["--patterns", "mystery"])).is_err());
        assert!(parse_sweep_grid_args(&strings(&["--routings", "zigzag"])).is_err());
        assert!(parse_sweep_grid_args(&strings(&["--threads", "0"])).is_err());
        assert!(parse_sweep_grid_args(&strings(&["--partitions", "0"])).is_err());
        assert!(parse_sweep_grid_args(&strings(&["--partitions", "two"])).is_err());
        assert!(parse_sweep_grid_args(&strings(&["--faults", "one"])).is_err());
        assert!(parse_sweep_grid_args(&strings(&["--rates"])).is_err());
        assert!(parse_sweep_grid_args(&strings(&["--bogus", "1"])).is_err());
        assert!(parse_sweep_grid_args(&strings(&["--rates", ""])).is_err());
    }

    #[test]
    fn sweep_grid_end_to_end_writes_a_report() {
        let dir = std::env::temp_dir().join("noc_cli_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep_report.json");
        let path_str = path.to_str().unwrap().to_string();
        cmd_sweep_grid(&strings(&[
            "--sizes",
            "4x4",
            "--patterns",
            "uniform",
            "--rates",
            "0.05,0.1",
            "--routings",
            "xy",
            "--workloads",
            "ph[uniform:burst0.2x0.02]",
            "--warmup",
            "100",
            "--measure",
            "300",
            "--drain",
            "300",
            "--threads",
            "2",
            "--out",
            &path_str,
        ]))
        .unwrap();
        let report: noc_selfconf::SweepReport =
            serde_json::from_str(&fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(report.scenarios.len(), 3);
        assert_eq!(report.aggregate.num_scenarios, 3);
        // The workload point carries its canonical label as the report key.
        assert_eq!(
            report.scenarios[2].label,
            "4x4/ph[uniform:burst0.2x0.02]/xy"
        );
    }

    #[test]
    fn bench_args_parse_and_validate() {
        let opts = parse_bench_args(&strings(&[
            "--quick",
            "--repeats",
            "5",
            "--out",
            "b.json",
            "--compare",
            "old.json",
            "--tolerance",
            "0.5",
            "--sha",
            "abc123",
        ]))
        .unwrap();
        assert!(opts.quick);
        assert_eq!(opts.repeats, Some(5));
        assert_eq!(opts.out.as_deref(), Some("b.json"));
        assert_eq!(opts.compare.as_deref(), Some("old.json"));
        assert_eq!(opts.tolerance, 0.5);
        assert_eq!(opts.sha.as_deref(), Some("abc123"));

        let default = parse_bench_args(&[]).unwrap();
        assert!(!default.quick);
        assert_eq!(default.tolerance, noc_bench::report::DEFAULT_TOLERANCE);

        assert!(parse_bench_args(&strings(&["--bogus"])).is_err());
        assert!(parse_bench_args(&strings(&["--repeats", "0"])).is_err());
        assert!(parse_bench_args(&strings(&["--repeats"])).is_err());
        assert!(parse_bench_args(&strings(&["--tolerance", "-0.1"])).is_err());
        assert!(parse_bench_args(&strings(&["--tolerance", "nope"])).is_err());
        // --against without --compare has nothing to diff.
        assert!(parse_bench_args(&strings(&["--against", "new.json"])).is_err());
    }

    #[test]
    fn bench_compare_gate_passes_and_fails() {
        use noc_bench::report::{run_suite, BenchSuiteConfig};
        let dir = std::env::temp_dir().join("noc_cli_test");
        fs::create_dir_all(&dir).unwrap();
        let tiny = BenchSuiteConfig {
            repeats: 1,
            sim_cycles: 30,
            sim_warmup: 10,
            dqn_steps: 1,
            dqn_predicts: 1,
            env_epochs: 1,
            sweep_measure: 30,
        };
        let report = run_suite(tiny, "tiny", "t".into());
        let base = dir.join("bench_base.json");
        fs::write(&base, serde_json::to_string_pretty(&report).unwrap()).unwrap();
        let base_str = base.to_str().unwrap().to_string();

        // Self-comparison (file vs file, no suite run): zero regressions.
        let opts = BenchOptions {
            quick: true,
            repeats: None,
            out: None,
            compare: Some(base_str.clone()),
            against: Some(base_str.clone()),
            tolerance: 0.3,
            sha: None,
            trajectory: None,
            suite: None,
        };
        run_bench(&opts).expect("self-comparison must pass the gate");

        // A uniformly slower candidate fails the gate.
        let mut slow = report.clone();
        for w in &mut slow.workloads {
            w.median_ns *= 10;
        }
        let cand = dir.join("bench_slow.json");
        fs::write(&cand, serde_json::to_string_pretty(&slow).unwrap()).unwrap();
        let opts = BenchOptions {
            against: Some(cand.to_str().unwrap().to_string()),
            compare: Some(base_str.clone()),
            ..opts
        };
        let err = run_bench(&opts).expect_err("10x slowdown must fail the gate");
        assert!(err.0.contains("perf failure"), "unexpected error: {err}");

        // Running the (tiny) suite and gating against the fresh baseline
        // exercises the run+write+compare path end to end, and --trajectory
        // appends the one-line perf-history row.
        let out = dir.join("bench_fresh.json");
        let traj = dir.join("trajectory.csv");
        let opts = BenchOptions {
            quick: true,
            repeats: None,
            out: Some(out.to_str().unwrap().to_string()),
            compare: None,
            against: None,
            tolerance: 0.3,
            sha: Some("testsha".into()),
            trajectory: Some(traj.to_str().unwrap().to_string()),
            suite: Some(tiny),
        };
        run_bench(&opts).expect("suite run must succeed");
        let written: noc_bench::report::BenchReport =
            serde_json::from_str(&fs::read_to_string(&out).unwrap()).unwrap();
        assert_eq!(written.git_sha, "testsha");
        assert_eq!(written.workloads.len(), report.workloads.len());
        let traj_text = fs::read_to_string(&traj).unwrap();
        let mut lines = traj_text.lines();
        assert!(lines.next().unwrap().starts_with("sha,date"));
        assert!(lines.next().unwrap().starts_with("testsha,"));

        assert!(load_bench_report("/nonexistent/bench.json").is_err());
    }

    #[test]
    fn replay_runs_a_csv_trace() {
        let dir = std::env::temp_dir().join("noc_cli_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        fs::write(&path, "# demo\n0,0,63,5\n10,5,9,3\n20,60,3,4\n").unwrap();
        assert!(cmd_replay(path.to_str().unwrap(), None).is_ok());
        assert!(cmd_replay("/nonexistent.csv", None).is_err());
    }

    #[test]
    fn train_and_evaluate_roundtrip() {
        // Micro budget: just proves the save/load/deploy chain.
        let dir = std::env::temp_dir().join("noc_cli_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("policy.json");
        let env_cfg = NocEnvConfig {
            sim: SimConfig::default().with_size(4, 4).with_regions(2, 2),
            epoch_cycles: 100,
            epochs_per_episode: 3,
            traffic_menu: vec![],
            ..NocEnvConfig::default()
        };
        let policy = train_drl(
            env_cfg,
            DqnConfig {
                hidden: vec![8],
                batch_size: 4,
                min_replay: 4,
                ..DqnConfig::default()
            },
            TrainConfig {
                episodes: 2,
                max_steps: 3,
                epsilon: Schedule::Constant(1.0),
                train_per_step: 1,
                seed: 0,
            },
        )
        .unwrap();
        let artifact = zoo::PolicyArtifact::from_dqn(
            &policy,
            NocEnvConfig::for_sim(SimConfig::default().with_size(4, 4).with_regions(2, 2), 0),
            TrainConfig::default(),
        )
        .unwrap();
        artifact.save(&path).unwrap();
        // Reload through the single checked zoo path and rebuild the
        // controller.
        let loaded = zoo::PolicyArtifact::load(&path).unwrap();
        let mut controller = loaded.controller().unwrap();
        let cfg = SimConfig::default().with_size(4, 4).with_regions(2, 2);
        let run = run_controller(&cfg, controller.as_mut(), 3, 100).unwrap();
        assert_eq!(run.epochs.len(), 3);
    }

    #[test]
    fn train_args_parse_scenario_flags_and_legacy_positional() {
        let opts = parse_train_args(&strings(&["out.json"])).unwrap();
        assert_eq!(opts.episodes, 60);
        assert_eq!(opts.max_steps, 40);
        // Legacy positional episode count still works.
        let opts = parse_train_args(&strings(&["out.json", "25"])).unwrap();
        assert_eq!(opts.episodes, 25);
        // Both forms at once conflict.
        assert!(parse_train_args(&strings(&["out.json", "25", "--episodes", "30"])).is_err());
        // Scenario flags flow through the run parser; --seed lands in the
        // config (and thus drives training).
        let opts = parse_train_args(&strings(&[
            "out.json",
            "--episodes",
            "5",
            "--max-steps",
            "7",
            "--size",
            "4x4",
            "--topology",
            "torus",
            "--seed",
            "123",
        ]))
        .unwrap();
        assert_eq!(opts.episodes, 5);
        assert_eq!(opts.max_steps, 7);
        assert_eq!(opts.run.config.width, 4);
        assert_eq!(opts.run.config.kind, TopologyKind::Torus);
        assert_eq!(opts.run.config.seed, 123);
        assert!(parse_train_args(&strings(&["out.json", "--rate", "oops"])).is_err());
        assert!(parse_train_args(&[]).is_err());
    }
}
