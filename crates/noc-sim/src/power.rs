//! Event-energy power model.
//!
//! A simplified Orion-style model: each micro-architectural event (buffer
//! write/read, route computation, VC allocation, switch arbitration, crossbar
//! traversal, link traversal) costs a fixed dynamic energy at nominal
//! voltage, scaled by `(V/V_nom)²` under DVFS; routers and links additionally
//! leak a fixed static power scaled by `V/V_nom`.
//!
//! Absolute joule values are representative, not calibrated — every result in
//! the evaluation is a *ratio* between controllers on the same model (see
//! DESIGN.md, substitution 2).

use serde::{Deserialize, Serialize};

/// Energies are in picojoules (pJ), powers in pJ per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Energy to write one flit into an input buffer.
    pub e_buffer_write: f64,
    /// Energy to read one flit out of an input buffer.
    pub e_buffer_read: f64,
    /// Energy for one route computation.
    pub e_route: f64,
    /// Energy for one VC allocation.
    pub e_vc_alloc: f64,
    /// Energy for one switch arbitration.
    pub e_sw_arb: f64,
    /// Energy for one crossbar traversal of a flit.
    pub e_xbar: f64,
    /// Energy for one flit traversing one inter-router link.
    pub e_link: f64,
    /// Router leakage power (pJ/cycle at nominal voltage).
    pub p_leak_router: f64,
    /// Link leakage power (pJ/cycle at nominal voltage, per unidirectional link).
    pub p_leak_link: f64,
    /// Fraction of leakage an *idle* router (empty buffers, empty source
    /// queue) still pays. `1.0` disables power gating; the paper's
    /// extension gates idle routers down to ~`0.2`.
    pub idle_leakage_fraction: f64,
}

impl PowerModel {
    /// Representative 32 nm-class relative magnitudes: buffer accesses
    /// dominate, crossbar next, arbitration cheap; links cost about as much
    /// as a buffer access per hop.
    pub fn default_32nm() -> Self {
        PowerModel {
            e_buffer_write: 1.2,
            e_buffer_read: 1.0,
            e_route: 0.1,
            e_vc_alloc: 0.15,
            e_sw_arb: 0.2,
            e_xbar: 0.8,
            e_link: 1.6,
            p_leak_router: 0.35,
            p_leak_link: 0.05,
            idle_leakage_fraction: 1.0,
        }
    }

    /// The default model with idle power gating enabled (gated routers leak
    /// at 20 % of nominal).
    pub fn with_power_gating() -> Self {
        PowerModel {
            idle_leakage_fraction: 0.2,
            ..PowerModel::default_32nm()
        }
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::default_32nm()
    }
}

/// The kinds of dynamic events the router/link report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerEvent {
    /// A flit written into an input buffer.
    BufferWrite,
    /// A flit read out of an input buffer.
    BufferRead,
    /// One route computation.
    RouteCompute,
    /// One VC allocation.
    VcAlloc,
    /// One switch arbitration.
    SwitchArb,
    /// One crossbar traversal.
    Crossbar,
    /// One flit crossing an inter-router link.
    LinkTraversal,
}

/// Accumulates energy over a run, separating dynamic and leakage components.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    dynamic_pj: f64,
    leakage_pj: f64,
    events: u64,
}

impl EnergyMeter {
    /// A meter with zero accumulated energy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one dynamic event at the given voltage scale (`(V/V_nom)²`
    /// already applied by the caller via [`crate::dvfs::VfLevel::dynamic_scale`]).
    pub fn record(&mut self, model: &PowerModel, event: PowerEvent, dynamic_scale: f64) {
        let e = match event {
            PowerEvent::BufferWrite => model.e_buffer_write,
            PowerEvent::BufferRead => model.e_buffer_read,
            PowerEvent::RouteCompute => model.e_route,
            PowerEvent::VcAlloc => model.e_vc_alloc,
            PowerEvent::SwitchArb => model.e_sw_arb,
            PowerEvent::Crossbar => model.e_xbar,
            PowerEvent::LinkTraversal => model.e_link,
        };
        self.dynamic_pj += e * dynamic_scale;
        self.events += 1;
    }

    /// Record one global cycle of leakage for a router with `num_links`
    /// outgoing links, at the given leakage scale (`V/V_nom`).
    pub fn record_leakage(&mut self, model: &PowerModel, num_links: usize, leakage_scale: f64) {
        self.leakage_pj +=
            (model.p_leak_router + model.p_leak_link * num_links as f64) * leakage_scale;
    }

    /// Total accumulated dynamic energy (pJ).
    pub fn dynamic_pj(&self) -> f64 {
        self.dynamic_pj
    }

    /// Total accumulated leakage energy (pJ).
    pub fn leakage_pj(&self) -> f64 {
        self.leakage_pj
    }

    /// Total energy (pJ).
    pub fn total_pj(&self) -> f64 {
        self.dynamic_pj + self.leakage_pj
    }

    /// Number of dynamic events recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Fold another meter into this one.
    pub fn merge(&mut self, other: &EnergyMeter) {
        self.dynamic_pj += other.dynamic_pj;
        self.leakage_pj += other.leakage_pj;
        self.events += other.events;
    }

    /// Difference `self - earlier`, for per-epoch accounting.
    ///
    /// # Panics
    /// Panics (debug builds) if `earlier` is not a prefix of `self` in event
    /// count, which indicates snapshots were taken out of order.
    pub fn since(&self, earlier: &EnergyMeter) -> EnergyMeter {
        debug_assert!(
            self.events >= earlier.events,
            "energy snapshots out of order"
        );
        EnergyMeter {
            dynamic_pj: self.dynamic_pj - earlier.dynamic_pj,
            leakage_pj: self.leakage_pj - earlier.leakage_pj,
            events: self.events - earlier.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_accumulate_scaled_energy() {
        let m = PowerModel::default_32nm();
        let mut meter = EnergyMeter::new();
        meter.record(&m, PowerEvent::BufferWrite, 1.0);
        meter.record(&m, PowerEvent::LinkTraversal, 0.25);
        assert!((meter.dynamic_pj() - (1.2 + 1.6 * 0.25)).abs() < 1e-12);
        assert_eq!(meter.events(), 2);
    }

    #[test]
    fn leakage_accumulates_per_cycle() {
        let m = PowerModel::default_32nm();
        let mut meter = EnergyMeter::new();
        for _ in 0..10 {
            meter.record_leakage(&m, 4, 1.0);
        }
        let expected = 10.0 * (0.35 + 0.05 * 4.0);
        assert!((meter.leakage_pj() - expected).abs() < 1e-9);
        assert!((meter.total_pj() - expected).abs() < 1e-9);
    }

    #[test]
    fn power_gating_scales_idle_leakage() {
        let gated = PowerModel::with_power_gating();
        assert_eq!(gated.idle_leakage_fraction, 0.2);
        assert_eq!(PowerModel::default_32nm().idle_leakage_fraction, 1.0);
    }

    #[test]
    fn lower_voltage_leaks_less() {
        let m = PowerModel::default_32nm();
        let mut hi = EnergyMeter::new();
        let mut lo = EnergyMeter::new();
        hi.record_leakage(&m, 4, 1.0);
        lo.record_leakage(&m, 4, 0.5);
        assert!(lo.leakage_pj() < hi.leakage_pj());
        assert!((lo.leakage_pj() * 2.0 - hi.leakage_pj()).abs() < 1e-12);
    }

    #[test]
    fn since_computes_epoch_delta() {
        let m = PowerModel::default_32nm();
        let mut meter = EnergyMeter::new();
        meter.record(&m, PowerEvent::Crossbar, 1.0);
        let snap = meter.clone();
        meter.record(&m, PowerEvent::Crossbar, 1.0);
        meter.record_leakage(&m, 0, 1.0);
        let delta = meter.since(&snap);
        assert!((delta.dynamic_pj() - 0.8).abs() < 1e-12);
        assert!((delta.leakage_pj() - 0.35).abs() < 1e-12);
        assert_eq!(delta.events(), 1);
    }

    #[test]
    fn merge_adds_components() {
        let m = PowerModel::default_32nm();
        let mut a = EnergyMeter::new();
        let mut b = EnergyMeter::new();
        a.record(&m, PowerEvent::BufferRead, 1.0);
        b.record_leakage(&m, 2, 1.0);
        a.merge(&b);
        assert!(a.dynamic_pj() > 0.0 && a.leakage_pj() > 0.0);
        assert_eq!(a.events(), 1);
    }
}
