//! Concrete serializer/deserializer over the [`Value`] tree, plus the
//! `to_value` / `from_value` entry points and JSON text rendering shared
//! with the vendored `serde_json`.

use crate::de::{Deserialize, Deserializer, Error as DeErrorTrait};
use crate::ser::{Error as SerErrorTrait, Serialize, Serializer};
use crate::Value;
use std::fmt;

/// Error produced when building a [`Value`] tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerError(pub String);

impl fmt::Display for SerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SerError {}

impl SerErrorTrait for SerError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        SerError(msg.to_string())
    }
}

/// Error produced when reading a [`Value`] tree back into a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl DeErrorTrait for DeError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

/// The one concrete [`Serializer`]: collects into an owned [`Value`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = SerError;

    fn serialize_value(self, v: Value) -> Result<Value, SerError> {
        Ok(v)
    }

    fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<Value, SerError> {
        v.serialize(ValueSerializer)
    }
}

/// The one concrete [`Deserializer`]: a borrowed handle on a [`Value`].
#[derive(Debug, Clone, Copy)]
pub struct ValueDeserializer<'de> {
    v: &'de Value,
}

impl<'de> ValueDeserializer<'de> {
    /// Wrap a value node.
    pub fn new(v: &'de Value) -> Self {
        ValueDeserializer { v }
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer<'de> {
    type Error = DeError;

    fn value(&self) -> &'de Value {
        self.v
    }

    fn from_value(v: &'de Value) -> Self {
        ValueDeserializer { v }
    }
}

/// Serialize any value into the [`Value`] data model.
pub fn to_value<T: Serialize + ?Sized>(x: &T) -> Result<Value, SerError> {
    x.serialize(ValueSerializer)
}

/// Deserialize any type out of a [`Value`] node.
pub fn from_value<'de, T: Deserialize<'de>>(v: &'de Value) -> Result<T, DeError> {
    T::deserialize(ValueDeserializer::new(v))
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity; `serde_nan`-style adapters are expected
        // to map non-finite floats to null *before* rendering, but stay
        // total here rather than panic.
        out.push_str("null");
        return;
    }
    let s = format!("{x}");
    out.push_str(&s);
    // serde_json renders integral floats as "1.0", keeping the type
    // round-trippable; match that.
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn render_into(out: &mut String, v: &Value, pretty: bool, depth: usize) {
    const INDENT: &str = "  ";
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => render_f64(out, *x),
        Value::Str(s) => escape_into(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&INDENT.repeat(depth + 1));
                }
                render_into(out, item, pretty, depth + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&INDENT.repeat(depth));
            }
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&INDENT.repeat(depth + 1));
                }
                escape_into(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                render_into(out, item, pretty, depth + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&INDENT.repeat(depth));
            }
            out.push('}');
        }
    }
}

/// Render a value tree as JSON text (compact or pretty, 2-space indent).
pub fn render(v: &Value, pretty: bool) -> String {
    let mut out = String::new();
    render_into(&mut out, v, pretty, 0);
    out
}
