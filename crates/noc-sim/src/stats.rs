//! Run statistics: latency, throughput, energy, occupancy.
//!
//! All counters are monotone totals; callers take [`StatsSnapshot`]s and diff
//! them to obtain per-epoch or per-measurement-window figures.

use crate::flit::Flit;
use crate::power::{EnergyMeter, PowerEvent, PowerModel};
use serde::{Deserialize, Serialize};

/// Serde adapter mapping non-finite floats to JSON `null` and back to NaN,
/// so metrics containing NaN (e.g. "no latency samples") survive a JSON
/// round-trip (plain `f64` fields fail to deserialize from `null`).
pub mod serde_nan {
    use serde::{Deserialize, Deserializer, Serializer};

    /// Serialize a possibly non-finite float (`null` when non-finite).
    pub fn serialize<S: Serializer>(v: &f64, s: S) -> Result<S::Ok, S::Error> {
        if v.is_finite() {
            s.serialize_some(v)
        } else {
            s.serialize_none()
        }
    }

    /// Deserialize `null` back to NaN.
    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<f64, D::Error> {
        Ok(Option::<f64>::deserialize(d)?.unwrap_or(f64::NAN))
    }
}

/// Upper edges (inclusive) of the latency histogram buckets, in cycles.
/// The final bucket is open-ended.
pub const LATENCY_BUCKETS: [u64; 12] = [8, 16, 24, 32, 48, 64, 96, 128, 192, 256, 512, 1024];

/// One deferred [`StatsCollector`] mutation, recorded by a partition tile
/// during the parallel phase of `Network::step` and replayed serially
/// afterwards.
///
/// The partitioned stepper cannot hand tiles a shared `&mut StatsCollector`,
/// and merging per-tile accumulators would break byte-identity: float
/// addition is not associative, so regrouping the energy sums by tile would
/// perturb the last bits of `energy_pj`. Instead each tile appends the
/// operations it *would* have applied, in its serial order, and the commit
/// phase replays the logs tile by tile — reproducing the exact mutation
/// sequence (and therefore the exact float-addition order) of a serial run.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsOp {
    /// One cycle of router+link leakage (`EnergyMeter::record_leakage`).
    Leakage {
        /// Outgoing links of the leaking router.
        links: usize,
        /// Leakage voltage scale (`V/V_nom`), idle gating already applied.
        scale: f64,
    },
    /// One dynamic energy event (`EnergyMeter::record`).
    Energy {
        /// The micro-architectural event.
        event: PowerEvent,
        /// Dynamic voltage scale (`(V/V_nom)²`).
        scale: f64,
    },
    /// A flit forwarded over an inter-router link
    /// (`StatsCollector::record_forward`).
    Forward {
        /// The forwarding node.
        node: usize,
    },
    /// A flit ejected at its destination (`StatsCollector::record_ejection`).
    Eject {
        /// The ejected flit.
        flit: Flit,
    },
    /// A flit discarded by fault handling (`StatsCollector::record_drop`).
    Drop {
        /// The dropped flit.
        flit: Flit,
    },
    /// A flit injected from a source queue
    /// (`StatsCollector::record_injection`).
    Injection {
        /// DVFS region of the injecting node.
        region: usize,
        /// Whether the flit completes its packet.
        is_tail: bool,
    },
    /// Packets discarded at a dead source
    /// (`StatsCollector::record_source_drop`).
    SourceDrop {
        /// Dropped packets.
        packets: u64,
        /// Dropped flits (including never-injected ones).
        flits: u64,
    },
    /// A run of consecutive idle routers, nodes `from..to`, each owing one
    /// cycle of leakage. The worklist stepper coalesces skipped routers into
    /// runs (two words instead of one `Leakage` op per idle node); the
    /// commit phase expands the run itself — it needs each node's region
    /// leakage scale and link count, which only the network layer holds — so
    /// this op never reaches [`StatsCollector::apply`].
    IdleLeakageRun {
        /// First node of the run (inclusive).
        from: usize,
        /// One past the last node of the run.
        to: usize,
    },
}

/// Where a router records its energy events: straight into an
/// [`EnergyMeter`] (the serial path — deliveries, unit tests), or into a
/// per-tile [`StatsOp`] log for deferred serial replay (the partitioned
/// `Network::step`).
#[derive(Debug)]
pub enum EnergySink<'a> {
    /// Record directly into the meter.
    Meter(&'a mut EnergyMeter),
    /// Append to a tile's operation log for later replay.
    Log(&'a mut Vec<StatsOp>),
}

impl EnergySink<'_> {
    /// Record one dynamic event (see [`EnergyMeter::record`]).
    #[inline]
    pub fn record(&mut self, model: &PowerModel, event: PowerEvent, dynamic_scale: f64) {
        match self {
            EnergySink::Meter(m) => m.record(model, event, dynamic_scale),
            EnergySink::Log(log) => log.push(StatsOp::Energy {
                event,
                scale: dynamic_scale,
            }),
        }
    }
}

/// Block length (cycles) of the injection-burstiness estimator: offered
/// packets are aggregated per block, and the index of dispersion of the
/// block counts is the burstiness metric. Long enough that bursty sources'
/// temporal correlation inflates block variance, short enough that a
/// control epoch (≥ a few hundred cycles) completes many blocks.
pub const BURST_BLOCK_CYCLES: u64 = 32;

/// Monotone statistics accumulated over a simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsCollector {
    /// Packets offered by the traffic generator (entered a source queue).
    pub offered_packets: u64,
    /// Flits injected into the network (left a source queue).
    pub injected_flits: u64,
    /// Packets fully injected.
    pub injected_packets: u64,
    /// Flits ejected at their destination.
    pub ejected_flits: u64,
    /// Packets fully ejected (tail flit arrived).
    pub ejected_packets: u64,
    /// Flits discarded by fault handling (unroutable packets, flits severed
    /// by a dying link or router, and packets offered at dead sources).
    /// Always zero on a healthy fabric.
    pub dropped_flits: u64,
    /// Packets discarded by fault handling. A dropped packet is terminal:
    /// exactly one of `ejected_packets`/`dropped_packets` accounts for every
    /// packet that leaves the system.
    pub dropped_packets: u64,
    /// Σ over sampled cycles of directed dead links (fault telemetry; the
    /// mean feeds the RL observation).
    pub sum_dead_links: f64,
    /// Σ of per-block offered-packet counts over completed
    /// [`BURST_BLOCK_CYCLES`]-cycle blocks. Block aggregation makes temporal
    /// clumping visible: per-cycle counts of independent on/off sources have
    /// near-Bernoulli marginals, but their autocorrelation inflates the
    /// variance of multi-cycle block counts.
    #[serde(default)]
    pub sum_block_offered: f64,
    /// Σ of squared per-block offered-packet counts (second moment behind
    /// the injection-burstiness metric).
    #[serde(default)]
    pub sum_block_offered_sq: f64,
    /// Completed burstiness blocks.
    #[serde(default)]
    pub completed_blocks: u64,
    /// Packets offered in the current partial block (not yet in the sums).
    #[serde(default)]
    pub block_acc: u64,
    /// Cycles accumulated into the current partial block.
    #[serde(default)]
    pub block_fill: u64,
    /// Cycles spent in each workload phase (index = phase position in the
    /// spec; empty for trace-driven traffic).
    #[serde(default)]
    pub phase_cycles: Vec<u64>,
    /// Packets offered during each workload phase.
    #[serde(default)]
    pub phase_offered_packets: Vec<u64>,
    /// Packets counted toward latency sums (inside the latency window).
    pub latency_samples: u64,
    /// Σ packet latency (creation → tail ejection) over latency samples.
    pub sum_packet_latency: f64,
    /// Σ network latency (injection → tail ejection) over latency samples.
    pub sum_network_latency: f64,
    /// Σ hops of the tail flit over latency samples.
    pub sum_hops: f64,
    /// Max packet latency seen among latency samples.
    pub max_packet_latency: u64,
    /// Histogram of packet latency over latency samples; index `i` counts
    /// latencies `<= LATENCY_BUCKETS[i]`, the last slot counts the rest.
    pub latency_hist: Vec<u64>,
    /// Σ over sampled cycles of total buffered flits (for mean occupancy).
    pub sum_occupancy: f64,
    /// Σ over sampled cycles of buffered flits per region.
    pub sum_region_occupancy: Vec<f64>,
    /// Flits injected per region (sources grouped by region).
    pub region_injected_flits: Vec<u64>,
    /// Σ over sampled cycles of flits waiting in source queues.
    pub sum_backlog: f64,
    /// Cycles sampled (denominator for the occupancy/backlog means).
    pub sampled_cycles: u64,
    /// Energy accumulated by routers and links.
    pub energy: EnergyMeter,
    /// Flits forwarded (link traversals) per node, for utilization maps.
    /// Empty until the first forward is recorded.
    pub node_forwarded: Vec<u64>,
    /// Latency window: only packets with `created_at` in `[start, end)` feed
    /// the latency sums. Defaults to all packets.
    pub window: (u64, u64),
}

impl StatsCollector {
    /// A collector for a network partitioned into `num_regions` regions.
    pub fn new(num_regions: usize) -> Self {
        StatsCollector {
            offered_packets: 0,
            injected_flits: 0,
            injected_packets: 0,
            ejected_flits: 0,
            ejected_packets: 0,
            dropped_flits: 0,
            dropped_packets: 0,
            sum_dead_links: 0.0,
            sum_block_offered: 0.0,
            sum_block_offered_sq: 0.0,
            completed_blocks: 0,
            block_acc: 0,
            block_fill: 0,
            phase_cycles: Vec::new(),
            phase_offered_packets: Vec::new(),
            latency_samples: 0,
            sum_packet_latency: 0.0,
            sum_network_latency: 0.0,
            sum_hops: 0.0,
            max_packet_latency: 0,
            latency_hist: vec![0; LATENCY_BUCKETS.len() + 1],
            sum_occupancy: 0.0,
            sum_region_occupancy: vec![0.0; num_regions],
            region_injected_flits: vec![0; num_regions],
            sum_backlog: 0.0,
            sampled_cycles: 0,
            energy: EnergyMeter::new(),
            node_forwarded: Vec::new(),
            window: (0, u64::MAX),
        }
    }

    /// Record a flit leaving `node` over an inter-router link.
    pub fn record_forward(&mut self, node: usize, num_nodes: usize) {
        if self.node_forwarded.len() < num_nodes {
            self.node_forwarded.resize(num_nodes, 0);
        }
        self.node_forwarded[node] += 1;
    }

    /// Render an ASCII heat map of per-node link utilization for a
    /// `width × height` grid: `.` for idle through `█` for the busiest
    /// router. Returns an empty string if nothing was forwarded.
    pub fn utilization_heatmap(&self, width: usize, height: usize) -> String {
        let max = self.node_forwarded.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return String::new();
        }
        const RAMP: [char; 6] = ['.', '░', '▒', '▓', '█', '█'];
        let mut out = String::new();
        for y in 0..height {
            for x in 0..width {
                let v = self.node_forwarded.get(y * width + x).copied().unwrap_or(0);
                let idx = (v as f64 / max as f64 * (RAMP.len() - 2) as f64).round() as usize;
                out.push(RAMP[idx.min(RAMP.len() - 1)]);
                out.push(' ');
            }
            out.push('\n');
        }
        out
    }

    /// Restrict latency accounting to packets created in `[start, end)`.
    pub fn set_latency_window(&mut self, start: u64, end: u64) {
        self.window = (start, end);
    }

    /// Record a flit ejecting at `cycle`. Tail flits complete their packet
    /// and, if the packet was created inside the latency window, contribute
    /// to the latency sums.
    pub fn record_ejection(&mut self, flit: &Flit, cycle: u64) {
        self.ejected_flits += 1;
        if !flit.is_tail() {
            return;
        }
        self.ejected_packets += 1;
        let (ws, we) = self.window;
        if flit.created_at < ws || flit.created_at >= we {
            return;
        }
        self.latency_samples += 1;
        let plat = cycle.saturating_sub(flit.created_at);
        let nlat = cycle.saturating_sub(flit.injected_at);
        self.sum_packet_latency += plat as f64;
        self.sum_network_latency += nlat as f64;
        self.sum_hops += flit.hops as f64;
        self.max_packet_latency = self.max_packet_latency.max(plat);
        let bucket = LATENCY_BUCKETS
            .iter()
            .position(|&b| plat <= b)
            .unwrap_or(LATENCY_BUCKETS.len());
        self.latency_hist[bucket] += 1;
    }

    /// Record one flit leaving a source queue into the network, attributed to
    /// `region`.
    pub fn record_injection(&mut self, region: usize, is_tail: bool) {
        self.injected_flits += 1;
        self.region_injected_flits[region] += 1;
        if is_tail {
            self.injected_packets += 1;
        }
    }

    /// Record a packet being offered by the traffic generator.
    pub fn record_offered(&mut self) {
        self.offered_packets += 1;
    }

    /// Record one cycle of the offered process: `packets` offered this
    /// cycle, attributed to workload phase `phase` (`None` for trace-driven
    /// traffic). Feeds the burstiness block moments and the per-phase
    /// buckets; the simulation driver calls this once per cycle.
    pub fn record_cycle_offered(&mut self, phase: Option<usize>, packets: u64) {
        self.block_acc += packets;
        self.block_fill += 1;
        if self.block_fill == BURST_BLOCK_CYCLES {
            let b = self.block_acc as f64;
            self.sum_block_offered += b;
            self.sum_block_offered_sq += b * b;
            self.completed_blocks += 1;
            self.block_acc = 0;
            self.block_fill = 0;
        }
        if let Some(p) = phase {
            if self.phase_cycles.len() <= p {
                self.phase_cycles.resize(p + 1, 0);
                self.phase_offered_packets.resize(p + 1, 0);
            }
            self.phase_cycles[p] += 1;
            self.phase_offered_packets[p] += packets;
        }
    }

    /// Record one discarded flit of an unroutable packet (fault handling).
    /// The packet itself is counted once, when its tail flit is dropped —
    /// never earlier, so a packet whose drop is cut short by a fault purge
    /// (which counts it instead) cannot be counted twice.
    pub fn record_drop(&mut self, flit: &Flit) {
        self.dropped_flits += 1;
        if flit.is_tail() {
            self.dropped_packets += 1;
        }
    }

    /// Record a fault-boundary purge: `packets` condemned packets with
    /// `flits` buffered flits discarded network-wide.
    pub fn record_purged(&mut self, packets: u64, flits: u64) {
        self.dropped_packets += packets;
        self.dropped_flits += flits;
    }

    /// Record a packet discarded at its source (dead router or flits that
    /// never entered the network).
    pub fn record_source_drop(&mut self, packets: u64, flits: u64) {
        self.dropped_packets += packets;
        self.dropped_flits += flits;
    }

    /// Sample end-of-cycle occupancy figures plus the current directed
    /// dead-link count.
    pub fn sample_occupancy(
        &mut self,
        total: usize,
        per_region: &[usize],
        backlog: usize,
        dead_links: usize,
    ) {
        debug_assert_eq!(per_region.len(), self.sum_region_occupancy.len());
        self.sum_occupancy += total as f64;
        for (acc, &v) in self.sum_region_occupancy.iter_mut().zip(per_region) {
            *acc += v as f64;
        }
        self.sum_backlog += backlog as f64;
        self.sum_dead_links += dead_links as f64;
        self.sampled_cycles += 1;
    }

    /// Mean packet latency over latency samples (NaN if no samples).
    pub fn avg_packet_latency(&self) -> f64 {
        self.sum_packet_latency / self.latency_samples as f64
    }

    /// Approximate latency percentile from the histogram (`p` in `[0, 1]`),
    /// reported as the upper edge of the containing bucket.
    ///
    /// When the percentile lands in the open-ended overflow bucket (past
    /// `LATENCY_BUCKETS`' last edge), the histogram has no upper bound to
    /// report and the function returns the sentinel `u64::MAX`. Callers
    /// rendering for humans should use
    /// [`StatsCollector::latency_percentile_display`], which formats the
    /// sentinel as a saturated `> <last-bucket>` figure instead of leaking
    /// `18446744073709551615` into reports.
    pub fn latency_percentile(&self, p: f64) -> u64 {
        let total: u64 = self.latency_hist.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.latency_hist.iter().enumerate() {
            seen += c;
            if seen >= target {
                return LATENCY_BUCKETS.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    /// Human-readable form of [`StatsCollector::latency_percentile`]: the
    /// bucket edge in cycles, or `"> <last-bucket>"` when the percentile
    /// overflows the histogram (the numeric API's `u64::MAX` sentinel).
    pub fn latency_percentile_display(&self, p: f64) -> String {
        match self.latency_percentile(p) {
            u64::MAX => format!("> {}", LATENCY_BUCKETS[LATENCY_BUCKETS.len() - 1]),
            v => v.to_string(),
        }
    }

    /// Replay one deferred [`StatsOp`] exactly as the serial stepper would
    /// have applied it: `power` and `cycle` are the power model and the cycle
    /// the op was logged in, `num_nodes` sizes the forward map on demand.
    pub fn apply(&mut self, op: StatsOp, power: &PowerModel, num_nodes: usize, cycle: u64) {
        match op {
            StatsOp::Leakage { links, scale } => self.energy.record_leakage(power, links, scale),
            StatsOp::Energy { event, scale } => self.energy.record(power, event, scale),
            StatsOp::Forward { node } => self.record_forward(node, num_nodes),
            StatsOp::Eject { flit } => self.record_ejection(&flit, cycle),
            StatsOp::Drop { flit } => self.record_drop(&flit),
            StatsOp::Injection { region, is_tail } => self.record_injection(region, is_tail),
            StatsOp::SourceDrop { packets, flits } => self.record_source_drop(packets, flits),
            StatsOp::IdleLeakageRun { .. } => {
                unreachable!("idle-leakage runs are expanded by the network commit phase")
            }
        }
    }

    /// Take a snapshot of all monotone counters for later diffing.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot(Box::new(self.clone()))
    }
}

/// A frozen copy of the collector, used to compute per-window deltas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot(Box<StatsCollector>);

/// Metrics of a simulation window (epoch or measurement phase), produced by
/// diffing two snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowMetrics {
    /// Window length in cycles.
    pub cycles: u64,
    /// Packets offered by the traffic generator during the window.
    #[serde(default)]
    pub offered_packets: u64,
    /// Index of dispersion (variance / mean) of offered packets aggregated
    /// over [`BURST_BLOCK_CYCLES`]-cycle blocks: ≈1 for memoryless Bernoulli
    /// traffic, well above 1 when arrivals clump (bursty/pulsed workloads),
    /// 0 when nothing was offered. The load-independent burstiness
    /// observable the RL state encoder exposes. Blocks straddling a window
    /// boundary count toward the window in which they complete.
    #[serde(default)]
    pub injection_burstiness: f64,
    /// Cycles spent in each workload phase during the window (index = phase
    /// position in the spec; empty for trace-driven traffic).
    #[serde(default)]
    pub phase_cycles: Vec<u64>,
    /// Packets offered during each workload phase during the window.
    #[serde(default)]
    pub phase_offered_packets: Vec<u64>,
    /// Flits injected during the window.
    pub injected_flits: u64,
    /// Packets fully injected (tail flit left its source queue) during the
    /// window. With variable packet lengths this is the exact packet count;
    /// dividing `injected_flits` by a nominal length is not.
    #[serde(default)]
    pub injected_packets: u64,
    /// Flits ejected during the window.
    pub ejected_flits: u64,
    /// Packets ejected during the window.
    pub ejected_packets: u64,
    /// Flits discarded by fault handling during the window.
    pub dropped_flits: u64,
    /// Packets discarded by fault handling during the window.
    pub dropped_packets: u64,
    /// Mean directed dead links per sampled cycle (0 on a healthy fabric).
    pub avg_dead_links: f64,
    /// Latency samples completing during the window.
    pub latency_samples: u64,
    /// Mean packet latency (creation → ejection) among samples; NaN if none.
    #[serde(with = "serde_nan")]
    pub avg_packet_latency: f64,
    /// Mean network latency (injection → ejection) among samples; NaN if none.
    #[serde(with = "serde_nan")]
    pub avg_network_latency: f64,
    /// Mean hop count among samples; NaN if none.
    #[serde(with = "serde_nan")]
    pub avg_hops: f64,
    /// Accepted throughput in flits per node per cycle.
    pub throughput: f64,
    /// Offered load actually injected, flits per node per cycle.
    pub injection_rate: f64,
    /// Total energy spent during the window (pJ).
    pub energy_pj: f64,
    /// Dynamic component of `energy_pj`.
    pub dynamic_pj: f64,
    /// Leakage component of `energy_pj`.
    pub leakage_pj: f64,
    /// Mean buffered flits per cycle network-wide.
    pub avg_occupancy: f64,
    /// Mean buffered flits per cycle per region.
    pub region_occupancy: Vec<f64>,
    /// Flits injected per region during the window.
    pub region_injected_flits: Vec<u64>,
    /// Mean flits waiting in source queues per cycle.
    pub avg_backlog: f64,
}

impl WindowMetrics {
    /// Diff two snapshots taken `cycles` apart on a network of `num_nodes`.
    ///
    /// # Panics
    /// Panics (debug builds) if the snapshots are out of order.
    pub fn between(
        earlier: &StatsSnapshot,
        later: &StatsSnapshot,
        num_nodes: usize,
    ) -> WindowMetrics {
        let (a, b) = (&earlier.0, &later.0);
        debug_assert!(
            b.sampled_cycles >= a.sampled_cycles,
            "snapshots out of order"
        );
        let cycles = b.sampled_cycles - a.sampled_cycles;
        let denom_cycles = cycles.max(1) as f64;
        let samples = b.latency_samples - a.latency_samples;
        let energy = b.energy.since(&a.energy);
        let injected = b.injected_flits - a.injected_flits;
        let ejected = b.ejected_flits - a.ejected_flits;
        let offered = b.offered_packets - a.offered_packets;
        // Burstiness: index of dispersion of per-block offered counts over
        // the window's completed blocks.
        let blocks = b.completed_blocks - a.completed_blocks;
        let bsum = b.sum_block_offered - a.sum_block_offered;
        let burstiness = if blocks > 0 && bsum > 0.0 {
            let mean = bsum / blocks as f64;
            let ex2 = (b.sum_block_offered_sq - a.sum_block_offered_sq) / blocks as f64;
            (ex2 - mean * mean).max(0.0) / mean
        } else {
            0.0
        };
        // Phase buckets grow on demand, so the later snapshot's vectors may
        // be longer; missing earlier entries diff against zero.
        let diff_grown = |bv: &[u64], av: &[u64]| -> Vec<u64> {
            bv.iter()
                .enumerate()
                .map(|(i, &x)| x - av.get(i).copied().unwrap_or(0))
                .collect()
        };
        WindowMetrics {
            cycles,
            offered_packets: offered,
            injection_burstiness: burstiness,
            phase_cycles: diff_grown(&b.phase_cycles, &a.phase_cycles),
            phase_offered_packets: diff_grown(&b.phase_offered_packets, &a.phase_offered_packets),
            injected_flits: injected,
            injected_packets: b.injected_packets - a.injected_packets,
            ejected_flits: ejected,
            ejected_packets: b.ejected_packets - a.ejected_packets,
            dropped_flits: b.dropped_flits - a.dropped_flits,
            dropped_packets: b.dropped_packets - a.dropped_packets,
            avg_dead_links: (b.sum_dead_links - a.sum_dead_links) / denom_cycles,
            latency_samples: samples,
            avg_packet_latency: (b.sum_packet_latency - a.sum_packet_latency) / samples as f64,
            avg_network_latency: (b.sum_network_latency - a.sum_network_latency) / samples as f64,
            avg_hops: (b.sum_hops - a.sum_hops) / samples as f64,
            throughput: ejected as f64 / (denom_cycles * num_nodes as f64),
            injection_rate: injected as f64 / (denom_cycles * num_nodes as f64),
            energy_pj: energy.total_pj(),
            dynamic_pj: energy.dynamic_pj(),
            leakage_pj: energy.leakage_pj(),
            avg_occupancy: (b.sum_occupancy - a.sum_occupancy) / denom_cycles,
            region_occupancy: b
                .sum_region_occupancy
                .iter()
                .zip(&a.sum_region_occupancy)
                .map(|(lb, la)| (lb - la) / denom_cycles)
                .collect(),
            region_injected_flits: b
                .region_injected_flits
                .iter()
                .zip(&a.region_injected_flits)
                .map(|(lb, la)| lb - la)
                .collect(),
            avg_backlog: (b.sum_backlog - a.sum_backlog) / denom_cycles,
        }
    }

    /// Energy-delay product: window energy (pJ) × mean packet latency
    /// (cycles). The figure of merit the paper optimizes.
    pub fn edp(&self) -> f64 {
        self.energy_pj * self.avg_packet_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, PacketId};
    use crate::topology::NodeId;

    fn tail_flit(created: u64, injected: u64, hops: u32) -> Flit {
        Flit {
            packet: PacketId(0),
            kind: FlitKind::Tail,
            seq: 4,
            src: NodeId(0),
            dst: NodeId(9),
            created_at: created,
            injected_at: injected,
            vc: 0,
            hops,
            vc_class: 0,
        }
    }

    #[test]
    fn ejection_counts_and_latency() {
        let mut s = StatsCollector::new(1);
        s.record_ejection(&tail_flit(0, 5, 3), 20);
        assert_eq!(s.ejected_packets, 1);
        assert_eq!(s.latency_samples, 1);
        assert_eq!(s.sum_packet_latency, 20.0);
        assert_eq!(s.sum_network_latency, 15.0);
        assert_eq!(s.max_packet_latency, 20);
    }

    #[test]
    fn body_flits_do_not_complete_packets() {
        let mut s = StatsCollector::new(1);
        let mut f = tail_flit(0, 0, 1);
        f.kind = FlitKind::Body;
        s.record_ejection(&f, 10);
        assert_eq!(s.ejected_flits, 1);
        assert_eq!(s.ejected_packets, 0);
    }

    #[test]
    fn latency_window_filters_samples() {
        let mut s = StatsCollector::new(1);
        s.set_latency_window(100, 200);
        s.record_ejection(&tail_flit(50, 55, 2), 90); // before window
        s.record_ejection(&tail_flit(150, 155, 2), 190); // inside
        s.record_ejection(&tail_flit(250, 255, 2), 290); // after
        assert_eq!(s.ejected_packets, 3);
        assert_eq!(s.latency_samples, 1);
        assert_eq!(s.sum_packet_latency, 40.0);
    }

    #[test]
    fn histogram_buckets_latencies() {
        let mut s = StatsCollector::new(1);
        s.record_ejection(&tail_flit(0, 0, 1), 5); // bucket 0 (<=8)
        s.record_ejection(&tail_flit(0, 0, 1), 100); // <=128 bucket
        s.record_ejection(&tail_flit(0, 0, 1), 5000); // overflow bucket
        assert_eq!(s.latency_hist[0], 1);
        assert_eq!(s.latency_hist[7], 1);
        assert_eq!(*s.latency_hist.last().unwrap(), 1);
        assert_eq!(s.latency_percentile(0.30), 8);
        assert_eq!(s.latency_percentile(0.60), 128);
        // Percentiles past the last bucket return the documented numeric
        // sentinel; the display form renders it saturated instead.
        assert_eq!(s.latency_percentile(1.0), u64::MAX);
        assert_eq!(s.latency_percentile_display(1.0), "> 1024");
        assert_eq!(s.latency_percentile_display(0.30), "8");
        let empty = StatsCollector::new(1);
        assert_eq!(empty.latency_percentile_display(0.95), "0");
    }

    #[test]
    fn window_metrics_diff_snapshots() {
        let mut s = StatsCollector::new(2);
        s.record_injection(0, false);
        s.record_injection(0, true);
        s.sample_occupancy(4, &[3, 1], 2, 0);
        let a = s.snapshot();
        for _ in 0..3 {
            s.record_injection(1, true);
        }
        s.record_ejection(&tail_flit(0, 2, 4), 10);
        s.sample_occupancy(6, &[2, 4], 0, 0);
        s.sample_occupancy(2, &[1, 1], 0, 0);
        let b = s.snapshot();
        let w = WindowMetrics::between(&a, &b, 16);
        assert_eq!(w.cycles, 2);
        assert_eq!(w.injected_flits, 3);
        assert_eq!(w.injected_packets, 3);
        assert_eq!(w.ejected_flits, 1);
        assert_eq!(w.latency_samples, 1);
        assert_eq!(w.avg_packet_latency, 10.0);
        assert_eq!(w.avg_hops, 4.0);
        assert!((w.avg_occupancy - 4.0).abs() < 1e-12);
        assert_eq!(w.region_injected_flits, vec![0, 3]);
        assert!((w.region_occupancy[1] - 2.5).abs() < 1e-12);
        assert!((w.throughput - 1.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn forward_counts_build_a_heatmap() {
        let mut s = StatsCollector::new(1);
        assert_eq!(s.utilization_heatmap(2, 2), "");
        for _ in 0..10 {
            s.record_forward(0, 4);
        }
        s.record_forward(3, 4);
        let map = s.utilization_heatmap(2, 2);
        assert_eq!(map.lines().count(), 2);
        assert!(map.starts_with('█'), "busiest node renders solid: {map}");
        assert!(map.contains('.'), "idle nodes render dots");
        assert_eq!(s.node_forwarded, vec![10, 0, 0, 1]);
    }

    #[test]
    fn window_metrics_with_nan_roundtrip_json() {
        let mut s = StatsCollector::new(1);
        let a = s.snapshot();
        s.sample_occupancy(0, &[0], 0, 0);
        let b = s.snapshot();
        // No latency samples: avg fields are NaN.
        let w = WindowMetrics::between(&a, &b, 4);
        assert!(w.avg_packet_latency.is_nan());
        let json = serde_json::to_string(&w).unwrap();
        let back: WindowMetrics = serde_json::from_str(&json).unwrap();
        assert!(back.avg_packet_latency.is_nan());
        assert!(back.avg_hops.is_nan());
        assert_eq!(back.cycles, w.cycles);
    }

    #[test]
    fn offered_cycles_feed_burstiness_and_phase_buckets() {
        let block = BURST_BLOCK_CYCLES;
        let mut s = StatsCollector::new(1);
        let a = s.snapshot();
        // Constant offering: one packet every cycle for two full blocks.
        // Every block count equals `block`, so dispersion is zero.
        for _ in 0..2 * block {
            s.record_offered();
            s.record_cycle_offered(Some(0), 1);
            s.sample_occupancy(0, &[0], 0, 0);
        }
        let b = s.snapshot();
        let w = WindowMetrics::between(&a, &b, 4);
        assert_eq!(w.offered_packets, 2 * block);
        assert_eq!(w.injection_burstiness, 0.0);
        assert_eq!(w.phase_cycles, vec![2 * block]);
        assert_eq!(w.phase_offered_packets, vec![2 * block]);

        // Clumped offering in a later phase: all 2·block packets land in the
        // first block, the second is silent. Block counts {2·block, 0}:
        // mean = block, variance = block² → dispersion = block.
        for i in 0..2 * block {
            let n = if i == 0 { 2 * block } else { 0 };
            for _ in 0..n {
                s.record_offered();
            }
            s.record_cycle_offered(Some(1), n);
            s.sample_occupancy(0, &[0], 0, 0);
        }
        let c = s.snapshot();
        let w = WindowMetrics::between(&b, &c, 4);
        assert_eq!(w.offered_packets, 2 * block);
        assert!((w.injection_burstiness - block as f64).abs() < 1e-9);
        // The phase-1 bucket appeared after the earlier snapshot; it diffs
        // against zero.
        assert_eq!(w.phase_cycles, vec![0, 2 * block]);
        assert_eq!(w.phase_offered_packets, vec![0, 2 * block]);

        // No offering recorded: burstiness reads zero, not NaN.
        let d = s.snapshot();
        let w = WindowMetrics::between(&c, &d, 4);
        assert_eq!(w.injection_burstiness, 0.0);
        assert_eq!(w.offered_packets, 0);
    }

    #[test]
    fn edp_multiplies_energy_and_latency() {
        let mut s = StatsCollector::new(1);
        let a = s.snapshot();
        s.record_ejection(&tail_flit(0, 0, 1), 10);
        s.sample_occupancy(0, &[0], 0, 0);
        let b = s.snapshot();
        let w = WindowMetrics::between(&a, &b, 4);
        assert_eq!(w.edp(), w.energy_pj * 10.0);
    }
}
