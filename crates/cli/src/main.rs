//! `noc-cli` — command-line front end for the self-configurable NoC stack.
//!
//! ```text
//! noc-cli simulate [config.json]        run one warmup/measure/drain simulation
//! noc-cli sweep <rate0> <rate1> <n>     latency-throughput sweep at n rates
//! noc-cli train <out.json> [episodes]   train a DQN policy and save it
//! noc-cli evaluate <policy.json>        run a saved policy vs the baselines
//! noc-cli replay <trace.csv> [period]   replay a packet trace (CSV)
//! noc-cli default-config                print the default SimConfig as JSON
//! ```
//!
//! Argument parsing is intentionally dependency-free.

use noc_cli::{cmd_default_config, cmd_evaluate, cmd_replay, cmd_simulate, cmd_sweep, cmd_train, CliError};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result: Result<(), CliError> = match args.first().map(String::as_str) {
        Some("simulate") => cmd_simulate(args.get(1).map(String::as_str)),
        Some("sweep") => {
            let parse = |i: usize, what: &str| {
                args.get(i)
                    .ok_or_else(|| CliError(format!("missing argument: {what}")))?
                    .parse::<f64>()
                    .map_err(|e| CliError(format!("bad {what}: {e}")))
            };
            match (parse(1, "rate0"), parse(2, "rate1"), parse(3, "steps")) {
                (Ok(a), Ok(b), Ok(n)) => cmd_sweep(a, b, n as usize),
                (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => Err(e),
            }
        }
        Some("train") => match args.get(1) {
            Some(out) => {
                let episodes =
                    args.get(2).and_then(|s| s.parse().ok()).unwrap_or(60usize);
                cmd_train(out, episodes)
            }
            None => Err(CliError("train requires an output path".into())),
        },
        Some("evaluate") => match args.get(1) {
            Some(path) => cmd_evaluate(path),
            None => Err(CliError("evaluate requires a policy path".into())),
        },
        Some("replay") => match args.get(1) {
            Some(path) => {
                let period = args.get(2).and_then(|s| s.parse().ok());
                cmd_replay(path, period)
            }
            None => Err(CliError("replay requires a trace path".into())),
        },
        Some("default-config") => cmd_default_config(),
        _ => {
            eprintln!(
                "usage: noc-cli <simulate [config.json] | sweep <r0> <r1> <n> | \
                 train <out.json> [episodes] | evaluate <policy.json> | \
                 replay <trace.csv> [period] | default-config>"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
