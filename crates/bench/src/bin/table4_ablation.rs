//! Table 4 — ablation study over the DRL design choices DESIGN.md calls out:
//! Double-DQN vs vanilla, prioritized vs uniform replay, replay size, and
//! the reward-weight trade-off.
//!
//! Each variant trains with a reduced budget (ablations compare variants
//! against each other, not against the headline policy) and is evaluated on
//! a fixed workload mix.

use noc_bench::{configs, fmt, print_table, save_csv, save_markdown, train_or_load, Scale};
use noc_selfconf::{run_controller, RewardConfig};
use noc_sim::TrafficPattern;
use rl::DqnConfig;

struct Variant {
    key: &'static str,
    label: &'static str,
    dqn: fn(DqnConfig) -> DqnConfig,
    reward: fn() -> RewardConfig,
}

fn main() {
    let scale = Scale::from_env();
    let sim = configs::mesh8();
    let episodes = scale.pick(80usize, 2);

    let variants = [
        Variant {
            key: "ablate_default",
            label: "double-DQN, uniform replay (default)",
            dqn: |d| d,
            reward: RewardConfig::default,
        },
        Variant {
            key: "ablate_nodouble",
            label: "vanilla DQN target",
            dqn: |d| DqnConfig { double: false, ..d },
            reward: RewardConfig::default,
        },
        Variant {
            key: "ablate_prioritized",
            label: "prioritized replay (α=0.6)",
            dqn: |d| DqnConfig {
                prioritized_alpha: Some(0.6),
                ..d
            },
            reward: RewardConfig::default,
        },
        Variant {
            key: "ablate_smallreplay",
            label: "replay 1k (vs 10k)",
            dqn: |d| DqnConfig {
                replay_capacity: 1000,
                ..d
            },
            reward: RewardConfig::default,
        },
        Variant {
            key: "ablate_soft",
            label: "soft target sync (τ=0.01)",
            dqn: |d| DqnConfig {
                target_sync: rl::TargetSync::Soft { tau: 0.01 },
                ..d
            },
            reward: RewardConfig::default,
        },
        Variant {
            key: "ablate_nstep3",
            label: "3-step returns",
            dqn: |d| DqnConfig { n_step: 3, ..d },
            reward: RewardConfig::default,
        },
        Variant {
            key: "ablate_energy_reward",
            label: "energy-biased reward",
            dqn: |d| d,
            reward: RewardConfig::energy_biased,
        },
        Variant {
            key: "ablate_latency_reward",
            label: "latency-biased reward",
            dqn: |d| d,
            reward: RewardConfig::latency_biased,
        },
    ];

    let eval_epochs = scale.pick(40usize, 3);
    let epoch_cycles = scale.pick(500u64, 200);
    let eval_workloads = [
        ("uniform@0.10", TrafficPattern::Uniform, 0.10),
        ("hotspot@0.10", configs::hotspot(), 0.10),
    ];

    let mut rows = Vec::new();
    for v in &variants {
        let mut env_cfg = configs::train_env(sim.clone(), 7);
        env_cfg.reward = (v.reward)();
        let mut train = configs::train_budget(scale, 7);
        train.episodes = episodes;
        let artifact = train_or_load(v.key, env_cfg, (v.dqn)(configs::dqn_default(7)), train);
        // Final-quarter training return.
        let quarter = (artifact.curve.len() / 4).max(1);
        let final_return: f64 = artifact.curve[artifact.curve.len() - quarter..]
            .iter()
            .map(|e| e.total_reward)
            .sum::<f64>()
            / quarter as f64;
        for (wname, pattern, rate) in &eval_workloads {
            let cfg = sim.clone().with_traffic(pattern.clone(), *rate);
            let mut controller = artifact.drl_controller().expect("cached policy deploys");
            let run = run_controller(&cfg, &mut controller, eval_epochs, epoch_cycles)
                .expect("valid configuration");
            rows.push(vec![
                v.label.to_string(),
                wname.to_string(),
                fmt(final_return),
                fmt(run.aggregate.avg_latency),
                fmt(run.aggregate.energy_pj / 1e3),
                fmt(run.aggregate.edp / 1e6),
                fmt(run.aggregate.mean_level),
            ]);
        }
    }
    let headers = [
        "variant",
        "workload",
        "final train return",
        "avg latency",
        "energy (nJ)",
        "EDP (×10⁶)",
        "mean level",
    ];
    let md = print_table("Table 4 — ablations", &headers, &rows);
    save_csv("table4_ablation", &headers, &rows);
    save_markdown("table4_ablation", &md);
}
