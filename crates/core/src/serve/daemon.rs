//! The TCP daemon: accept loop, per-connection threads, and the client
//! helper.
//!
//! Threading model (all `std`, no async runtime):
//!
//! * one **accept thread** owns the listener;
//! * each connection gets a **reader thread** (parses request lines,
//!   drives the scheduler) and a **writer thread** (drains an `mpsc`
//!   channel of [`Event`]s onto the socket) — the channel is the *only*
//!   path to the socket, so scheduler workers and the reader can both
//!   reply without interleaving bytes;
//! * simulation work happens on the shared [`Scheduler`] pool, never on
//!   connection threads.
//!
//! Failure containment: a malformed request gets a structured `error`
//! event and the connection stays usable; a client that disconnects
//! mid-stream has its jobs canceled ([`Scheduler::disconnect`]) so its
//! reservations free immediately; a write error just ends the writer (the
//! scheduler's sends then fail silently into a dropped channel). Nothing a
//! client does reaches a `panic!` in daemon code.
//!
//! Shutdown: the `shutdown` command (or [`Daemon::shutdown`]) flips a
//! flag, stops admission, pokes the accept loop awake via a loopback
//! connect, and lets everything drain — readers poll the flag on a short
//! read timeout, but keep their connection open until their own jobs have
//! delivered terminal events, so a drain never cuts a response stream.

use crate::serve::cache::ResultCache;
use crate::serve::protocol::{ErrorCode, Event, Request};
use crate::serve::scheduler::{JobId, Scheduler, SchedulerConfig};
use crate::sweep::{SweepGrid, SweepReport};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often blocked readers poll the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(200);

/// Daemon configuration for [`Daemon::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (the bound address is
    /// reported by [`Daemon::addr`]).
    pub addr: String,
    /// Worker-pool and admission bounds.
    pub scheduler: SchedulerConfig,
    /// On-disk cache directory (`None` = in-memory only).
    pub cache_dir: Option<PathBuf>,
    /// Log lifecycle events to stderr.
    pub verbose: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            scheduler: SchedulerConfig::default(),
            cache_dir: None,
            verbose: false,
        }
    }
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    scheduler: Arc<Scheduler>,
    shutdown: AtomicBool,
    addr: SocketAddr,
    verbose: bool,
}

impl Shared {
    fn log(&self, msg: &str) {
        if self.verbose {
            eprintln!("[serve] {msg}");
        }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Idempotent: stop admission and poke the accept loop awake.
    fn trigger_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            self.log("shutdown requested");
            self.scheduler.begin_shutdown();
            // Unblock the accept loop; it checks the flag per connection.
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// A running daemon. Dropping it does *not* stop it — call
/// [`Daemon::shutdown`] and/or [`Daemon::wait`].
pub struct Daemon {
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("addr", &self.addr())
            .finish()
    }
}

impl Daemon {
    /// Bind, open the cache, start the scheduler pool, and begin accepting.
    ///
    /// # Errors
    /// Returns the bind error, or the cache-directory error (an unwritable
    /// cache dir refuses to start — satellite 2's contract — rather than
    /// failing jobs later).
    pub fn start(config: ServeConfig) -> std::io::Result<Daemon> {
        let cache = match &config.cache_dir {
            Some(dir) => Arc::new(ResultCache::open(dir)?),
            None => Arc::new(ResultCache::in_memory()),
        };
        let scheduler = Scheduler::start(config.scheduler.clone(), cache);
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            scheduler,
            shutdown: AtomicBool::new(false),
            addr,
            verbose: config.verbose,
        });
        shared.log(&format!(
            "listening on {addr} ({} workers, cache: {})",
            shared.scheduler.threads(),
            config
                .cache_dir
                .as_ref()
                .map_or("memory".to_string(), |d| d.display().to_string()),
        ));
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_connections = Arc::clone(&connections);
        let accept_handle = std::thread::Builder::new()
            .name("noc-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared, &accept_connections))
            .expect("spawn accept thread");
        Ok(Daemon {
            shared,
            accept_handle: Some(accept_handle),
            connections,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The scheduler handle (stats, cache access).
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.shared.scheduler
    }

    /// Begin a graceful shutdown: stop admission, drain, wake the accept
    /// loop. Idempotent; [`Daemon::wait`] joins everything.
    pub fn shutdown(&self) {
        self.shared.trigger_shutdown();
    }

    /// Block until the daemon has fully stopped: accept loop done, every
    /// connection drained, worker pool joined. (Blocks until something —
    /// a `shutdown` command or [`Daemon::shutdown`] — triggers the stop.)
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut connections = self.connections.lock().expect("connection list poisoned");
            connections.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
        self.shared.scheduler.join();
        self.shared.log("stopped");
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                if shared.shutting_down() {
                    break; // the shutdown poke (or a late client) landed
                }
                shared.log(&format!("connection from {peer}"));
                let conn_shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("noc-serve-conn".to_string())
                    .spawn(move || handle_connection(stream, &conn_shared))
                    .expect("spawn connection thread");
                connections
                    .lock()
                    .expect("connection list poisoned")
                    .push(handle);
            }
            Err(e) => {
                if shared.shutting_down() {
                    break;
                }
                shared.log(&format!("accept error: {e}"));
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Reader side of one connection; owns the conn-scoped job-id map and
/// spawns/joins the paired writer thread.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let peer = stream
        .peer_addr()
        .map_or("<unknown>".to_string(), |a| a.to_string());
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = channel::<Event>();
    let writer = std::thread::Builder::new()
        .name("noc-serve-writer".to_string())
        .spawn(move || {
            let mut out = BufWriter::new(write_half);
            while let Ok(event) = rx.recv() {
                let write = out
                    .write_all(event.render().as_bytes())
                    .and_then(|()| out.write_all(b"\n"))
                    .and_then(|()| out.flush());
                if write.is_err() {
                    break; // client gone; remaining sends fail silently
                }
            }
        })
        .expect("spawn writer thread");

    // conn-scoped id (what the client sees) -> scheduler id.
    let mut jobs: HashMap<u64, JobId> = HashMap::new();
    let mut next_job: u64 = 0;
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    let mut disconnected = true;
    loop {
        match reader.read_line(&mut buf) {
            Ok(0) => break, // EOF: client closed its side
            Ok(_) => {
                let line = std::mem::take(&mut buf);
                let line = line.trim();
                if !line.is_empty() {
                    dispatch_line(line, shared, &tx, &mut jobs, &mut next_job);
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Poll the shutdown flag, but keep serving until this
                // connection's own jobs have delivered terminal events —
                // a drain must not cut a response stream. Partial line
                // bytes stay in `buf` and the next read appends.
                if shared.shutting_down()
                    && !jobs
                        .values()
                        .any(|&id| shared.scheduler.status(id).is_some())
                {
                    disconnected = false;
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break, // connection reset etc.
        }
    }
    if disconnected {
        // Free the client's reservations; nobody is reading the stream.
        let active: Vec<JobId> = jobs.values().copied().collect();
        shared.scheduler.disconnect(&active);
    }
    shared.log(&format!("connection from {peer} closed"));
    drop(tx); // writer drains queued events, then exits
    let _ = writer.join();
}

/// Parse and execute one request line; every outcome (including parse
/// failures) is an event on `tx`.
fn dispatch_line(
    line: &str,
    shared: &Arc<Shared>,
    tx: &Sender<Event>,
    jobs: &mut HashMap<u64, JobId>,
    next_job: &mut u64,
) {
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(message) => {
            let _ = tx.send(Event::Error {
                code: ErrorCode::BadRequest,
                message,
            });
            return;
        }
    };
    match request {
        Request::Submit { client, grid } => {
            // Ids are connection-scoped and only consumed by accepted
            // submits, so a rejected submit does not shift later ids.
            let conn_job = *next_job + 1;
            match shared.scheduler.submit(&client, conn_job, *grid, tx) {
                Ok(id) => {
                    *next_job = conn_job;
                    jobs.insert(conn_job, id);
                    shared.log(&format!("client {client}: job {conn_job} accepted"));
                }
                Err((code, message)) => {
                    shared.log(&format!(
                        "client {client}: submit rejected ({})",
                        code.name()
                    ));
                    let _ = tx.send(Event::Error { code, message });
                }
            }
        }
        Request::Status { job } => {
            let status = jobs.get(&job).and_then(|&id| shared.scheduler.status(id));
            let event = match status {
                Some((state, completed, total)) => Event::Status {
                    job,
                    state,
                    completed,
                    total,
                },
                None => Event::Error {
                    code: ErrorCode::UnknownJob,
                    message: format!("job {job} is unknown or already finished"),
                },
            };
            let _ = tx.send(event);
        }
        Request::Cancel { job } => {
            let canceled = jobs
                .get(&job)
                .is_some_and(|&id| shared.scheduler.cancel(id));
            if !canceled {
                let _ = tx.send(Event::Error {
                    code: ErrorCode::UnknownJob,
                    message: format!("job {job} is unknown or already finished"),
                });
            }
            // On success the terminal `canceled` event arrives via the
            // scheduler once in-flight scenarios land.
        }
        Request::Stats => {
            let _ = tx.send(Event::Stats {
                cache: shared.scheduler.cache().stats(),
                scheduler: shared.scheduler.stats(),
            });
        }
        Request::Ping => {
            let _ = tx.send(Event::Pong);
        }
        Request::Shutdown => {
            let _ = tx.send(Event::ShuttingDown);
            shared.trigger_shutdown();
        }
    }
}

/// Blocking line-oriented client for the daemon protocol — what `noc-cli
/// submit` / `serve-ctl` and the tests use.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl std::fmt::Debug for ServeClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeClient").finish_non_exhaustive()
    }
}

impl ServeClient {
    /// Connect to a daemon.
    ///
    /// # Errors
    /// Propagates the connect/clone error.
    pub fn connect(addr: &str) -> std::io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(ServeClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one request line.
    ///
    /// # Errors
    /// Propagates the socket write error.
    pub fn send(&mut self, request: &Request) -> std::io::Result<()> {
        self.writer.write_all(request.render().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Send one raw line verbatim (a newline is appended) — the error-path
    /// probe tests use this to exercise the daemon's malformed-request
    /// handling through the real socket path.
    ///
    /// # Errors
    /// Propagates the socket write error.
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Read one raw event line (without the trailing newline) — the byte
    /// stream the CI smoke test compares across clients.
    ///
    /// # Errors
    /// Returns `UnexpectedEof` when the daemon closes the connection.
    pub fn recv_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Read and parse one event.
    ///
    /// # Errors
    /// Socket errors, or `InvalidData` when the line does not parse.
    pub fn recv(&mut self) -> std::io::Result<Event> {
        let line = self.recv_line()?;
        Event::parse(&line).map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e))
    }

    /// Send a request and read a single reply event (for ping / stats /
    /// status / shutdown — not for submit, whose reply is a stream).
    ///
    /// # Errors
    /// Propagates [`ServeClient::send`] / [`ServeClient::recv`] errors.
    pub fn request(&mut self, request: &Request) -> std::io::Result<Event> {
        self.send(request)?;
        self.recv()
    }

    /// Submit a grid and block until the terminal event, returning the
    /// assembled report.
    ///
    /// # Errors
    /// Socket errors, or `Other` when the daemon rejects the submit,
    /// cancels, or fails the job.
    pub fn run_grid(&mut self, client: &str, grid: &SweepGrid) -> std::io::Result<SweepReport> {
        self.send(&Request::Submit {
            client: client.to_string(),
            grid: Box::new(grid.clone()),
        })?;
        loop {
            match self.recv()? {
                Event::Accepted { .. } | Event::Result { .. } => {}
                Event::Done { report, .. } => return Ok(*report),
                Event::Canceled { .. } => {
                    return Err(std::io::Error::other("job was canceled"));
                }
                Event::Failed { message, .. } => {
                    return Err(std::io::Error::other(format!("job failed: {message}")));
                }
                Event::Error { code, message } => {
                    return Err(std::io::Error::other(format!(
                        "daemon rejected submit ({}): {message}",
                        code.name()
                    )));
                }
                _ => {} // stray status/pong replies are ignorable here
            }
        }
    }
}
