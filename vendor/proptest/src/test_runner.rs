//! Test configuration and the deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// RNG handed to strategies; seeded from the test function's name so every
/// run of a given test replays the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// Access the underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
