//! The wormhole virtual-channel router.
//!
//! A three-stage pipeline executed once per active (non-clock-gated) cycle,
//! in reverse order so a flit takes one stage per cycle:
//!
//! 1. **SA/ST** — switch allocation + traversal: per output port, a
//!    round-robin arbiter picks among input VCs whose packet was routed to
//!    that port, holds a downstream VC, and has a credit. The winning flit
//!    leaves through the crossbar (at most one flit per input port and per
//!    output port per cycle).
//! 2. **VA** — virtual-channel allocation: head flits that have a route claim
//!    a free VC at the downstream input port.
//! 3. **RC** — route computation: head flits at the front of a VC compute
//!    their candidate output ports; adaptive algorithms pick the candidate
//!    with the most free downstream credits.
//!
//! Flow control is credit-based: the router keeps, per output port and VC,
//! the number of free slots in the downstream buffer and the packet that owns
//! the VC; the network layer returns credits as downstream buffers drain.
//!
//! The pipeline stages themselves are implemented against the flat
//! structure-of-arrays fabric state in [`crate::soa`] — the network holds one
//! [`crate::soa::FabricState`] for every router and steps contiguous tile
//! slices of it. This module keeps the event/context types and [`Router`], a
//! single-router convenience wrapper (a one-router fabric) used by unit tests
//! and microbenchmarks that exercise the pipeline in isolation.

use crate::config::SwitchArb;
use crate::fault::LinkState;
use crate::flit::{Flit, PacketId};
use crate::power::PowerModel;
use crate::routing::{RoutingAlgorithm, RoutingTables};
use crate::soa::FabricState;
use crate::stats::EnergySink;
use crate::topology::{NodeId, Port, Topology};
use serde::{Deserialize, Serialize};

/// Effects of one router cycle, applied by the network layer.
#[derive(Debug, Clone, PartialEq)]
pub enum RouterEvent {
    /// A flit leaves through `out_port` toward the neighboring router.
    Forward {
        /// Output port the flit leaves through.
        out_port: Port,
        /// The departing flit (with `vc` set to the downstream VC).
        flit: Flit,
    },
    /// A flit reaches its destination and leaves the network.
    Eject {
        /// The delivered flit.
        flit: Flit,
    },
    /// A buffer slot freed on input port `in_port`, VC `vc`: the upstream
    /// sender regains one credit.
    Credit {
        /// Input port whose buffer drained.
        in_port: Port,
        /// Virtual channel index.
        vc: usize,
    },
    /// A flit of an unroutable packet is discarded (fault handling). The
    /// network layer counts it toward the drop/unreachable statistics.
    Drop {
        /// The discarded flit.
        flit: Flit,
    },
}

/// Per-cycle execution context handed to [`Router::step`].
#[allow(missing_debug_implementations)]
pub struct RouterCtx<'a> {
    /// The network topology (for route computation).
    pub topo: &'a Topology,
    /// Routing algorithm in force this cycle.
    pub routing: RoutingAlgorithm,
    /// Event-energy model.
    pub power: &'a PowerModel,
    /// Energy accumulator — a meter on the serial path, a per-tile
    /// [`crate::stats::StatsOp`] log inside the partitioned stepper.
    pub energy: EnergySink<'a>,
    /// Dynamic energy multiplier for this router's current V/F level.
    pub dynamic_scale: f64,
    /// Link/router liveness under the active fault set. `None` means the
    /// simulation runs without a fault plan (the common case) and route
    /// computation skips the liveness filter entirely.
    pub faults: Option<&'a LinkState>,
    /// Switch-allocation granularity (per-flit legacy vs per-packet
    /// wormhole holds). See [`SwitchArb`].
    pub arb: SwitchArb,
    /// Precomputed k-path tables, required when `routing` is
    /// [`RoutingAlgorithm::Table`] and ignored otherwise. The network
    /// rebuilds them whenever the live-link set changes.
    pub tables: Option<&'a RoutingTables>,
}

/// A single wormhole VC router: a one-router [`FabricState`] plus its node
/// id. The network layer steps the fabric directly; this wrapper exists for
/// tests and benches that drive one router's pipeline in isolation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Router {
    id: NodeId,
    f: FabricState,
}

impl Router {
    /// Build an idle router.
    ///
    /// # Panics
    /// Panics if `num_vcs == 0`, `vc_depth == 0`, or `vc_partition` is set
    /// with fewer than two VCs.
    pub fn new(id: NodeId, num_vcs: usize, vc_depth: usize, vc_partition: bool) -> Self {
        Router {
            id,
            f: FabricState::new(1, num_vcs, vc_depth, vc_partition),
        }
    }

    /// This router's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of virtual channels per port.
    pub fn num_vcs(&self) -> usize {
        self.f.num_vcs()
    }

    /// Buffer depth per VC, in flits.
    pub fn vc_depth(&self) -> usize {
        self.f.vc_depth()
    }

    /// Total flits currently buffered across all input VCs.
    pub fn occupancy(&self) -> usize {
        self.f.occupancy(0)
    }

    /// Total buffering capacity across all input VCs.
    pub fn buffer_capacity(&self) -> usize {
        self.f.buffer_capacity()
    }

    /// Whether input VC `(port, vc)` can accept a flit right now. Used by
    /// the network layer to double-check flow control in debug builds.
    pub fn can_accept(&self, port: Port, vc: usize) -> bool {
        self.f.can_accept(0, port, vc)
    }

    /// Deposit a flit arriving on `port` into its VC buffer. Called by the
    /// network layer for link deliveries and local injections.
    ///
    /// # Panics
    /// Panics if the buffer is full (a flow-control violation).
    pub fn accept(&mut self, port: Port, flit: Flit, ctx: &mut RouterCtx<'_>) {
        self.f.tile().accept(0, port, flit, ctx);
    }

    /// Return one credit for output `(port, vc)` (downstream buffer drained
    /// a flit).
    pub fn return_credit(&mut self, port: Port, vc: usize) {
        self.f.tile().return_credit(0, port, vc);
    }

    /// Free slots the upstream view holds for output `(port, vc)`.
    pub fn credits(&self, port: Port, vc: usize) -> usize {
        self.f.credits(0, port, vc)
    }

    /// Packet owning downstream VC `(port, vc)`, if any (test observability).
    pub fn output_owner(&self, port: Port, vc: usize) -> Option<PacketId> {
        self.f.output_owner(0, port, vc)
    }

    /// Route lock on input VC `(port, vc)`, if any (test observability).
    pub fn input_route(&self, port: Port, vc: usize) -> Option<Port> {
        self.f.input_route(0, port, vc)
    }

    /// Downstream VC granted to input VC `(port, vc)` (test observability).
    pub fn input_out_vc(&self, port: Port, vc: usize) -> Option<usize> {
        self.f.input_out_vc(0, port, vc)
    }

    /// Execute one active cycle: SA/ST, then VA, then RC. Returns the events
    /// the network layer must apply (flit movements, ejections, credits).
    pub fn step(&mut self, ctx: &mut RouterCtx<'_>) -> Vec<RouterEvent> {
        let mut events = Vec::new();
        self.step_into(ctx, &mut events);
        events
    }

    /// Allocation-free variant of [`Router::step`]: appends this cycle's
    /// events to a caller-owned buffer.
    pub fn step_into(&mut self, ctx: &mut RouterCtx<'_>, events: &mut Vec<RouterEvent>) {
        let id = self.id;
        self.f.tile().step_node(0, id, ctx, events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, Packet, PacketId};
    use crate::power::EnergyMeter;

    fn ctx_parts() -> (Topology, PowerModel) {
        (Topology::mesh(4, 4), PowerModel::default_32nm())
    }

    fn make_flits(src: usize, dst: usize, len: u32) -> Vec<Flit> {
        Packet {
            id: PacketId(1),
            src: NodeId(src),
            dst: NodeId(dst),
            len_flits: len,
            created_at: 0,
        }
        .to_flits(0)
    }

    /// Serialization round-trip of a loaded router rebuilds the occupancy
    /// counter from the buffers (it is never trusted from the wire), so a
    /// deserialized router keeps routing its buffered flits.
    #[test]
    fn deserialized_router_recomputes_occupancy() {
        let (topo, power) = ctx_parts();
        let mut meter = EnergyMeter::new();
        let mut r = Router::new(NodeId(0), 2, 4, false);
        let mut ctx = RouterCtx {
            topo: &topo,
            routing: RoutingAlgorithm::Xy,
            power: &power,
            energy: EnergySink::Meter(&mut meter),
            dynamic_scale: 1.0,
            faults: None,
            arb: SwitchArb::PerFlit,
            tables: None,
        };
        for f in make_flits(0, 1, 3) {
            r.accept(Port::Local, f, &mut ctx);
        }
        assert_eq!(r.occupancy(), 3);
        let json = serde_json::to_string(&r).expect("router serializes");
        let back: Router = serde_json::from_str(&json).expect("router deserializes");
        assert_eq!(
            back.occupancy(),
            3,
            "counter must be rebuilt, not defaulted"
        );
        assert_eq!(back, r);
        // The restored router still routes: three cycles later the head flit
        // is forwarded, which is impossible with a stale zero counter.
        let mut back = back;
        let mut events = Vec::new();
        for _ in 0..3 {
            events.clear();
            back.step_into(&mut ctx, &mut events);
        }
        assert!(
            events
                .iter()
                .any(|e| matches!(e, RouterEvent::Forward { .. })),
            "deserialized router must make progress: {events:?}"
        );
    }

    /// Drive a lone router: inject a packet on the Local port addressed to a
    /// neighbor and check it is forwarded east with pipeline latency 3
    /// (RC, VA, SA on successive cycles).
    #[test]
    fn single_flit_traverses_pipeline_in_three_cycles() {
        let (topo, power) = ctx_parts();
        let mut meter = EnergyMeter::new();
        let mut r = Router::new(NodeId(0), 2, 4, false);
        let mut ctx = RouterCtx {
            topo: &topo,
            routing: RoutingAlgorithm::Xy,
            power: &power,
            energy: EnergySink::Meter(&mut meter),
            dynamic_scale: 1.0,
            faults: None,
            arb: SwitchArb::PerFlit,
            tables: None,
        };
        let flits = make_flits(0, 1, 1);
        r.accept(Port::Local, flits[0].clone(), &mut ctx);

        // Cycle 1: RC only.
        let ev = r.step(&mut ctx);
        assert!(ev.is_empty(), "no movement before VA: {ev:?}");
        // Cycle 2: VA.
        let ev = r.step(&mut ctx);
        assert!(ev.is_empty(), "no movement before SA: {ev:?}");
        // Cycle 3: SA/ST forwards the flit.
        let ev = r.step(&mut ctx);
        let fwd = ev.iter().find_map(|e| match e {
            RouterEvent::Forward { out_port, flit } => Some((*out_port, flit.clone())),
            _ => None,
        });
        let (port, flit) = fwd.expect("flit forwarded");
        assert_eq!(port, Port::East);
        assert_eq!(flit.hops, 1);
        assert!(ev.iter().any(|e| matches!(
            e,
            RouterEvent::Credit {
                in_port: Port::Local,
                vc: 0
            }
        )));
    }

    #[test]
    fn flit_at_destination_is_ejected() {
        let (topo, power) = ctx_parts();
        let mut meter = EnergyMeter::new();
        let mut r = Router::new(NodeId(5), 2, 4, false);
        let mut ctx = RouterCtx {
            topo: &topo,
            routing: RoutingAlgorithm::Xy,
            power: &power,
            energy: EnergySink::Meter(&mut meter),
            dynamic_scale: 1.0,
            faults: None,
            arb: SwitchArb::PerFlit,
            tables: None,
        };
        let mut flit = make_flits(0, 5, 1).remove(0);
        flit.vc = 1;
        r.accept(Port::West, flit, &mut ctx);
        let mut ejected = false;
        for _ in 0..3 {
            for e in r.step(&mut ctx) {
                if let RouterEvent::Eject { flit } = e {
                    assert_eq!(flit.dst, NodeId(5));
                    ejected = true;
                }
            }
        }
        assert!(ejected, "flit should eject within 3 cycles");
    }

    #[test]
    fn credits_limit_outstanding_flits() {
        let (topo, power) = ctx_parts();
        let mut meter = EnergyMeter::new();
        let mut r = Router::new(NodeId(0), 1, 2, false);
        let mut ctx = RouterCtx {
            topo: &topo,
            routing: RoutingAlgorithm::Xy,
            power: &power,
            energy: EnergySink::Meter(&mut meter),
            dynamic_scale: 1.0,
            faults: None,
            arb: SwitchArb::PerFlit,
            tables: None,
        };
        // 5-flit packet; downstream buffer depth 2 and no credit returns.
        for f in make_flits(0, 3, 5).into_iter().take(2) {
            r.accept(Port::Local, f, &mut ctx);
        }
        let mut forwarded = 0;
        for _ in 0..10 {
            for e in r.step(&mut ctx) {
                if matches!(e, RouterEvent::Forward { .. }) {
                    forwarded += 1;
                }
            }
        }
        assert_eq!(
            forwarded, 2,
            "only vc_depth flits may be in flight without credits"
        );
        // Returning credits unblocks... nothing more is buffered, so verify
        // credit accounting instead.
        assert_eq!(r.credits(Port::East, 0), 0);
        r.return_credit(Port::East, 0);
        assert_eq!(r.credits(Port::East, 0), 1);
    }

    #[test]
    fn tail_flit_releases_vc_ownership() {
        let (topo, power) = ctx_parts();
        let mut meter = EnergyMeter::new();
        let mut r = Router::new(NodeId(0), 1, 4, false);
        let mut ctx = RouterCtx {
            topo: &topo,
            routing: RoutingAlgorithm::Xy,
            power: &power,
            energy: EnergySink::Meter(&mut meter),
            dynamic_scale: 1.0,
            faults: None,
            arb: SwitchArb::PerFlit,
            tables: None,
        };
        for f in make_flits(0, 1, 2) {
            r.accept(Port::Local, f, &mut ctx);
        }
        let mut tails = 0;
        for _ in 0..8 {
            for e in r.step(&mut ctx) {
                if let RouterEvent::Forward { flit, .. } = e {
                    if flit.kind == FlitKind::Tail {
                        tails += 1;
                    }
                }
            }
        }
        assert_eq!(tails, 1);
        // After the tail left, the output VC is free for a new packet.
        assert!(r.output_owner(Port::East, 0).is_none());
        assert!(r.input_route(Port::Local, 0).is_none());
    }

    #[test]
    fn occupancy_tracks_buffered_flits() {
        let (topo, power) = ctx_parts();
        let mut meter = EnergyMeter::new();
        let mut r = Router::new(NodeId(0), 2, 4, false);
        let mut ctx = RouterCtx {
            topo: &topo,
            routing: RoutingAlgorithm::Xy,
            power: &power,
            energy: EnergySink::Meter(&mut meter),
            dynamic_scale: 1.0,
            faults: None,
            arb: SwitchArb::PerFlit,
            tables: None,
        };
        assert_eq!(r.occupancy(), 0);
        for f in make_flits(0, 1, 3) {
            r.accept(Port::Local, f, &mut ctx);
        }
        assert_eq!(r.occupancy(), 3);
        assert_eq!(r.buffer_capacity(), 5 * 2 * 4);
    }

    #[test]
    fn vc_partition_restricts_allocation() {
        let (topo, power) = ctx_parts();
        let mut meter = EnergyMeter::new();
        let mut r = Router::new(NodeId(0), 4, 2, true);
        let mut ctx = RouterCtx {
            topo: &topo,
            routing: RoutingAlgorithm::Xy,
            power: &power,
            energy: EnergySink::Meter(&mut meter),
            dynamic_scale: 1.0,
            faults: None,
            arb: SwitchArb::PerFlit,
            tables: None,
        };
        let mut flit = make_flits(0, 1, 1).remove(0);
        flit.vc_class = 1;
        r.accept(Port::Local, flit, &mut ctx);
        r.step(&mut ctx); // RC
        r.step(&mut ctx); // VA
        let out_vc = r.input_out_vc(Port::Local, 0).expect("VC allocated");
        assert!(
            out_vc >= 2,
            "class-1 flit must use the upper VC half, got {out_vc}"
        );
    }

    #[test]
    fn step_consumes_energy() {
        let (topo, power) = ctx_parts();
        let mut meter = EnergyMeter::new();
        let mut r = Router::new(NodeId(0), 2, 4, false);
        let mut ctx = RouterCtx {
            topo: &topo,
            routing: RoutingAlgorithm::Xy,
            power: &power,
            energy: EnergySink::Meter(&mut meter),
            dynamic_scale: 1.0,
            faults: None,
            arb: SwitchArb::PerFlit,
            tables: None,
        };
        let f = make_flits(0, 1, 1).remove(0);
        r.accept(Port::Local, f, &mut ctx);
        for _ in 0..3 {
            r.step(&mut ctx);
        }
        assert!(meter.dynamic_pj() > 0.0);
        assert!(meter.events() >= 4, "write + RC + VA + SA events expected");
    }
}
