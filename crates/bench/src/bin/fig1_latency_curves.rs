//! Fig 1 — simulator validation: average packet latency vs offered injection
//! rate for the classic synthetic patterns under XY routing.
//!
//! Expected shape: hockey-stick curves; saturation ordering
//! uniform > bit-complement ≈ transpose > hotspot.

use noc_bench::{configs, fmt, parallel_map, print_table, save_csv, save_markdown, Scale};
use noc_sim::Simulator;

fn main() {
    let scale = Scale::from_env();
    let rates: Vec<f64> = scale.pick(
        vec![
            0.005, 0.02, 0.05, 0.08, 0.11, 0.14, 0.17, 0.20, 0.24, 0.28, 0.33,
        ],
        vec![0.02, 0.10],
    );
    let (warmup, measure, drain) = scale.pick((2000, 8000, 8000), (300, 800, 800));
    let patterns = configs::comparison_patterns();

    let grid: Vec<(String, f64)> = patterns
        .iter()
        .flat_map(|(name, _)| rates.iter().map(move |&r| (name.to_string(), r)))
        .collect();
    let threads = noc_bench::default_threads();
    let results = parallel_map(grid.len(), threads, |i| {
        let (name, rate) = &grid[i];
        let pattern = patterns
            .iter()
            .find(|(n, _)| n == name)
            .expect("pattern")
            .1
            .clone();
        let cfg = configs::mesh8()
            .with_traffic(pattern, *rate)
            .with_seed(100 + i as u64);
        let mut sim = Simulator::new(cfg).expect("valid config");
        let summary = sim.run_classic(warmup, measure, drain);
        (
            summary.window.avg_packet_latency,
            summary.window.throughput,
            summary.saturated,
        )
    });

    let mut rows = Vec::new();
    for (i, (name, rate)) in grid.iter().enumerate() {
        let (lat, tput, saturated) = results[i];
        rows.push(vec![
            name.clone(),
            format!("{rate:.3}"),
            fmt(lat),
            fmt(tput),
            if saturated { "yes".into() } else { "no".into() },
        ]);
    }
    let headers = [
        "pattern",
        "offered rate",
        "avg latency (cycles)",
        "throughput",
        "saturated",
    ];
    let md = print_table(
        "Fig 1 — latency vs injection rate (XY routing)",
        &headers,
        &rows,
    );
    save_csv("fig1_latency_curves", &headers, &rows);
    save_markdown("fig1_latency_curves", &md);

    // Report the observed saturation points (first saturated rate per pattern).
    let mut sat_rows = Vec::new();
    for (name, _) in &patterns {
        let sat = grid
            .iter()
            .enumerate()
            .filter(|(i, (n, _))| n == name && results[*i].2)
            .map(|(_, (_, r))| *r)
            .fold(f64::MAX, f64::min);
        sat_rows.push(vec![
            name.to_string(),
            if sat == f64::MAX {
                "not reached".into()
            } else {
                format!("{sat:.3}")
            },
        ]);
    }
    print_table(
        "Fig 1b — observed saturation onset",
        &["pattern", "rate"],
        &sat_rows,
    );
}
