//! The wormhole virtual-channel router.
//!
//! A three-stage pipeline executed once per active (non-clock-gated) cycle,
//! in reverse order so a flit takes one stage per cycle:
//!
//! 1. **SA/ST** — switch allocation + traversal: per output port, a
//!    round-robin arbiter picks among input VCs whose packet was routed to
//!    that port, holds a downstream VC, and has a credit. The winning flit
//!    leaves through the crossbar (at most one flit per input port and per
//!    output port per cycle).
//! 2. **VA** — virtual-channel allocation: head flits that have a route claim
//!    a free VC at the downstream input port.
//! 3. **RC** — route computation: head flits at the front of a VC compute
//!    their candidate output ports; adaptive algorithms pick the candidate
//!    with the most free downstream credits.
//!
//! Flow control is credit-based: the router keeps, per output port and VC,
//! the number of free slots in the downstream buffer and the packet that owns
//! the VC; the network layer returns credits as downstream buffers drain.

use crate::arbiter::RoundRobinArbiter;
use crate::fault::LinkState;
use crate::flit::{Flit, PacketId};
use crate::power::{PowerEvent, PowerModel};
use crate::routing::{route, route_live, RoutingAlgorithm};
use crate::stats::EnergySink;
use crate::topology::{NodeId, Port, Topology};
use crate::vc::{InputVc, OutputVcState};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Effects of one router cycle, applied by the network layer.
#[derive(Debug, Clone, PartialEq)]
pub enum RouterEvent {
    /// A flit leaves through `out_port` toward the neighboring router.
    Forward {
        /// Output port the flit leaves through.
        out_port: Port,
        /// The departing flit (with `vc` set to the downstream VC).
        flit: Flit,
    },
    /// A flit reaches its destination and leaves the network.
    Eject {
        /// The delivered flit.
        flit: Flit,
    },
    /// A buffer slot freed on input port `in_port`, VC `vc`: the upstream
    /// sender regains one credit.
    Credit {
        /// Input port whose buffer drained.
        in_port: Port,
        /// Virtual channel index.
        vc: usize,
    },
    /// A flit of an unroutable packet is discarded (fault handling). The
    /// network layer counts it toward the drop/unreachable statistics.
    Drop {
        /// The discarded flit.
        flit: Flit,
    },
}

/// Per-cycle execution context handed to [`Router::step`].
#[allow(missing_debug_implementations)]
pub struct RouterCtx<'a> {
    /// The network topology (for route computation).
    pub topo: &'a Topology,
    /// Routing algorithm in force this cycle.
    pub routing: RoutingAlgorithm,
    /// Event-energy model.
    pub power: &'a PowerModel,
    /// Energy accumulator — a meter on the serial path, a per-tile
    /// [`crate::stats::StatsOp`] log inside the partitioned stepper.
    pub energy: EnergySink<'a>,
    /// Dynamic energy multiplier for this router's current V/F level.
    pub dynamic_scale: f64,
    /// Link/router liveness under the active fault set. `None` means the
    /// simulation runs without a fault plan (the common case) and route
    /// computation skips the liveness filter entirely.
    pub faults: Option<&'a LinkState>,
}

/// A single wormhole VC router.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Router {
    id: NodeId,
    num_vcs: usize,
    vc_depth: usize,
    /// When true, VC allocation partitions VCs into two dateline classes
    /// (tori). Requires `num_vcs >= 2`.
    vc_partition: bool,
    /// Input VC state, `[port][vc]`.
    inputs: Vec<Vec<InputVc>>,
    /// Upstream view of downstream VC state, `[port][vc]`. The `Local`
    /// output (ejection) is modeled with infinite credits.
    outputs: Vec<Vec<OutputVcState>>,
    /// Switch arbiter per output port, over flattened `(in_port, vc)`.
    sw_arb: Vec<RoundRobinArbiter>,
    /// Rotation pointer per output port for fair VC allocation.
    va_ptr: Vec<usize>,
    /// Scratch request vector for switch allocation, kept across cycles so
    /// the hot loop never allocates. Always left empty between cycles, so it
    /// is invisible to `PartialEq` and serialization.
    #[serde(skip)]
    sw_requests: Vec<bool>,
    /// Buffered-flit count, maintained on accept/pop so [`Router::occupancy`]
    /// is O(1) — the cycle loop samples it several times per router per
    /// cycle. Derivable state: deserialization rebuilds it from the buffers
    /// (see the manual `Deserialize` impl) rather than trusting the wire.
    #[serde(skip)]
    occ: usize,
}

// Deserialization is written by hand (over a derive-backed shadow struct)
// so the occupancy counter is always recomputed from the deserialized
// buffers. Trusting a stored counter — or defaulting it to zero for
// snapshots that predate the field — would desynchronize it from the
// buffers and stall the router: `step_into` short-circuits on
// `occupancy() == 0`.
impl<'de> serde::Deserialize<'de> for Router {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        #[derive(Deserialize)]
        struct Shadow {
            id: NodeId,
            num_vcs: usize,
            vc_depth: usize,
            vc_partition: bool,
            inputs: Vec<Vec<InputVc>>,
            outputs: Vec<Vec<OutputVcState>>,
            sw_arb: Vec<RoundRobinArbiter>,
            va_ptr: Vec<usize>,
        }
        let s = Shadow::deserialize(d)?;
        let occ = s
            .inputs
            .iter()
            .flatten()
            .map(|vc| vc.buf.len())
            .sum::<usize>();
        Ok(Router {
            id: s.id,
            num_vcs: s.num_vcs,
            vc_depth: s.vc_depth,
            vc_partition: s.vc_partition,
            inputs: s.inputs,
            outputs: s.outputs,
            sw_arb: s.sw_arb,
            va_ptr: s.va_ptr,
            sw_requests: Vec::new(),
            occ,
        })
    }
}

impl Router {
    /// Build an idle router.
    ///
    /// # Panics
    /// Panics if `num_vcs == 0`, `vc_depth == 0`, or `vc_partition` is set
    /// with fewer than two VCs.
    pub fn new(id: NodeId, num_vcs: usize, vc_depth: usize, vc_partition: bool) -> Self {
        assert!(num_vcs > 0, "router needs at least one VC");
        assert!(vc_depth > 0, "VC depth must be positive");
        assert!(
            !vc_partition || num_vcs >= 2,
            "VC partitioning requires >= 2 VCs"
        );
        let inputs = (0..Port::COUNT)
            .map(|_| (0..num_vcs).map(|_| InputVc::new(vc_depth)).collect())
            .collect();
        let outputs = (0..Port::COUNT)
            .map(|_| (0..num_vcs).map(|_| OutputVcState::new(vc_depth)).collect())
            .collect();
        let sw_arb = (0..Port::COUNT)
            .map(|_| RoundRobinArbiter::new(Port::COUNT * num_vcs))
            .collect();
        Router {
            id,
            num_vcs,
            vc_depth,
            vc_partition,
            inputs,
            outputs,
            sw_arb,
            va_ptr: vec![0; Port::COUNT],
            sw_requests: Vec::new(),
            occ: 0,
        }
    }

    /// This router's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of virtual channels per port.
    pub fn num_vcs(&self) -> usize {
        self.num_vcs
    }

    /// Buffer depth per VC, in flits.
    pub fn vc_depth(&self) -> usize {
        self.vc_depth
    }

    /// Total flits currently buffered across all input VCs.
    pub fn occupancy(&self) -> usize {
        debug_assert_eq!(
            self.occ,
            self.inputs
                .iter()
                .flatten()
                .map(|vc| vc.buf.len())
                .sum::<usize>(),
            "occupancy counter out of sync with the buffers"
        );
        self.occ
    }

    /// Total buffering capacity across all input VCs.
    pub fn buffer_capacity(&self) -> usize {
        Port::COUNT * self.num_vcs * self.vc_depth
    }

    /// Whether input VC `(port, vc)` can accept a flit right now. Used by
    /// the network layer to double-check flow control in debug builds.
    pub fn can_accept(&self, port: Port, vc: usize) -> bool {
        !self.inputs[port.index()][vc].buf.is_full()
    }

    /// Deposit a flit arriving on `port` into its VC buffer. Called by the
    /// network layer for link deliveries and local injections.
    ///
    /// # Panics
    /// Panics if the buffer is full (a flow-control violation).
    pub fn accept(&mut self, port: Port, flit: Flit, ctx: &mut RouterCtx<'_>) {
        ctx.energy
            .record(ctx.power, PowerEvent::BufferWrite, ctx.dynamic_scale);
        self.inputs[port.index()][flit.vc].buf.push(flit);
        self.occ += 1;
    }

    /// Return one credit for output `(port, vc)` (downstream buffer drained
    /// a flit).
    pub fn return_credit(&mut self, port: Port, vc: usize) {
        let s = &mut self.outputs[port.index()][vc];
        debug_assert!(s.credits < self.vc_depth, "credit overflow on {port}/{vc}");
        s.credits += 1;
    }

    /// Free slots the upstream view holds for output `(port, vc)`.
    pub fn credits(&self, port: Port, vc: usize) -> usize {
        self.outputs[port.index()][vc].credits
    }

    /// The VC indices a flit may claim at the next hop, honoring the dateline
    /// partition on tori.
    fn allowed_vcs(&self, flit: &Flit) -> std::ops::Range<usize> {
        if self.vc_partition {
            let half = self.num_vcs / 2;
            if flit.vc_class == 0 {
                0..half
            } else {
                half..self.num_vcs
            }
        } else {
            0..self.num_vcs
        }
    }

    /// Execute one active cycle: SA/ST, then VA, then RC. Returns the events
    /// the network layer must apply (flit movements, ejections, credits).
    pub fn step(&mut self, ctx: &mut RouterCtx<'_>) -> Vec<RouterEvent> {
        let mut events = Vec::new();
        self.step_into(ctx, &mut events);
        events
    }

    /// Allocation-free variant of [`Router::step`]: appends this cycle's
    /// events to a caller-owned buffer. The network layer's cycle loop calls
    /// this with one scratch buffer reused across all routers and cycles.
    pub fn step_into(&mut self, ctx: &mut RouterCtx<'_>, events: &mut Vec<RouterEvent>) {
        if self.occupancy() == 0 {
            return; // idle router: nothing to route, allocate, or move
        }
        if ctx.faults.is_some() {
            self.drain_dropped(events);
        }
        self.switch_allocation(ctx, events);
        self.vc_allocation(ctx);
        self.route_computation(ctx);
    }

    /// Discard buffered flits of packets marked `dropping` (unroutable under
    /// the active fault set), returning a credit per discarded flit so the
    /// upstream sender keeps feeding the remainder of the packet. The tail
    /// flit releases the VC.
    fn drain_dropped(&mut self, events: &mut Vec<RouterEvent>) {
        for ip in 0..Port::COUNT {
            for vc in 0..self.num_vcs {
                let ivc = &mut self.inputs[ip][vc];
                if !ivc.dropping {
                    continue;
                }
                let mut removed = 0;
                while let Some(flit) = ivc.buf.pop() {
                    removed += 1;
                    let is_tail = flit.is_tail();
                    events.push(RouterEvent::Drop { flit });
                    events.push(RouterEvent::Credit {
                        in_port: Port::from_index(ip),
                        vc,
                    });
                    if is_tail {
                        ivc.release();
                        break;
                    }
                }
                self.occ -= removed;
            }
        }
    }

    /// SA/ST: one flit per output port per cycle, one per input port per
    /// cycle, round-robin among eligible input VCs.
    fn switch_allocation(&mut self, ctx: &mut RouterCtx<'_>, events: &mut Vec<RouterEvent>) {
        let v = self.num_vcs;
        let mut input_port_used = [false; Port::COUNT];
        // One reusable request vector over flattened (in_port, vc), borrowed
        // from the router's scratch storage (allocates on the first active
        // cycle only).
        let mut requests = std::mem::take(&mut self.sw_requests);
        requests.resize(Port::COUNT * v, false);
        for out_port in Port::ALL {
            let op = out_port.index();
            requests.fill(false);
            for in_port in Port::ALL {
                let ip = in_port.index();
                if input_port_used[ip] {
                    continue;
                }
                for vc in 0..v {
                    let ivc = &self.inputs[ip][vc];
                    if !ivc.ready_for_switch() || ivc.route != Some(out_port) {
                        continue;
                    }
                    let has_credit = if out_port == Port::Local {
                        true // ejection sinks flits unconditionally
                    } else {
                        let ovc = ivc.out_vc.expect("ready_for_switch implies out_vc");
                        self.outputs[op][ovc].has_credit()
                    };
                    if has_credit {
                        requests[ip * v + vc] = true;
                    }
                }
            }
            let Some(win) = self.sw_arb[op].grant(&requests) else {
                continue;
            };
            let (ip, vc) = (win / v, win % v);
            input_port_used[ip] = true;
            let in_port = Port::from_index(ip);
            let ivc = &mut self.inputs[ip][vc];
            let out_vc = ivc.out_vc.expect("granted VC has out_vc");
            let mut flit = ivc.buf.pop().expect("granted VC has a flit");
            self.occ -= 1;
            let is_tail = flit.is_tail();
            if is_tail {
                ivc.release();
            }
            ctx.energy
                .record(ctx.power, PowerEvent::BufferRead, ctx.dynamic_scale);
            ctx.energy
                .record(ctx.power, PowerEvent::SwitchArb, ctx.dynamic_scale);
            ctx.energy
                .record(ctx.power, PowerEvent::Crossbar, ctx.dynamic_scale);
            if out_port == Port::Local {
                events.push(RouterEvent::Eject { flit });
            } else {
                debug_assert!(
                    ctx.faults.is_none_or(|ls| ls.is_link_up(self.id, out_port)),
                    "SA forwarded into a dead link (boundary purge missed a route)"
                );
                flit.vc = out_vc;
                flit.hops += 1;
                let st = &mut self.outputs[op][out_vc];
                debug_assert!(st.credits > 0, "SA granted without credit");
                st.credits -= 1;
                if is_tail {
                    st.owner = None;
                }
                events.push(RouterEvent::Forward { out_port, flit });
            }
            events.push(RouterEvent::Credit { in_port, vc });
        }
        // Return the scratch vector empty so it never affects equality or
        // serialization.
        requests.clear();
        self.sw_requests = requests;
    }

    /// VA: head flits holding a route claim a free downstream VC.
    fn vc_allocation(&mut self, ctx: &mut RouterCtx<'_>) {
        let v = self.num_vcs;
        for ip in 0..Port::COUNT {
            for vc in 0..v {
                if !self.inputs[ip][vc].awaiting_vc_alloc() {
                    continue;
                }
                let out_port = self.inputs[ip][vc].route.expect("awaiting implies route");
                let op = out_port.index();
                if out_port == Port::Local {
                    // Ejection needs no downstream VC; claim slot 0 nominally.
                    self.inputs[ip][vc].out_vc = Some(0);
                    ctx.energy
                        .record(ctx.power, PowerEvent::VcAlloc, ctx.dynamic_scale);
                    continue;
                }
                let flit = self.inputs[ip][vc]
                    .buf
                    .front()
                    .expect("awaiting implies flit");
                debug_assert!(flit.is_head(), "VA on a non-head flit");
                let range = self.allowed_vcs(flit);
                let packet = flit.packet;
                let span = range.len();
                let start = self.va_ptr[op] % span.max(1);
                let granted = (0..span)
                    .map(|off| range.start + (start + off) % span)
                    .find(|&ovc| self.outputs[op][ovc].is_free());
                if let Some(ovc) = granted {
                    self.outputs[op][ovc].owner = Some(packet);
                    self.inputs[ip][vc].out_vc = Some(ovc);
                    self.va_ptr[op] = self.va_ptr[op].wrapping_add(1);
                    ctx.energy
                        .record(ctx.power, PowerEvent::VcAlloc, ctx.dynamic_scale);
                }
            }
        }
    }

    /// RC: compute output-port candidates for head flits; adaptive
    /// algorithms pick the candidate whose free VCs hold the most credits.
    /// Under an active fault set, dead output links are excluded; a packet
    /// with no live candidate is marked for dropping instead of wedging.
    fn route_computation(&mut self, ctx: &mut RouterCtx<'_>) {
        for ip in 0..Port::COUNT {
            for vc in 0..self.num_vcs {
                let ivc = &self.inputs[ip][vc];
                if ivc.dropping || ivc.route.is_some() || ivc.buf.is_empty() {
                    continue;
                }
                let flit = ivc.buf.front().expect("checked non-empty");
                debug_assert!(
                    flit.is_head(),
                    "non-head flit at front of an unrouted VC: flow-control bug"
                );
                let packet = flit.packet;
                let cands = match ctx.faults {
                    Some(ls) => route_live(ctx.routing, ctx.topo, ls, self.id, flit.src, flit.dst),
                    None => route(ctx.routing, ctx.topo, self.id, flit.src, flit.dst),
                };
                if cands.is_empty() {
                    // Every minimal permitted direction is dead: the packet
                    // is unroutable. Discard it (drain stage) rather than
                    // letting it wedge the network.
                    let ivc = &mut self.inputs[ip][vc];
                    ivc.dropping = true;
                    ivc.owner = Some(packet);
                    continue;
                }
                let chosen = if cands.len() == 1 {
                    cands[0]
                } else {
                    let range = self.allowed_vcs(flit);
                    *cands
                        .iter()
                        .max_by_key(|p| {
                            self.outputs[p.index()][range.clone()]
                                .iter()
                                .filter(|s| s.is_free())
                                .map(|s| s.credits)
                                .sum::<usize>()
                        })
                        .expect("route returned no candidates")
                };
                let ivc = &mut self.inputs[ip][vc];
                ivc.route = Some(chosen);
                ivc.owner = Some(packet);
                ctx.energy
                    .record(ctx.power, PowerEvent::RouteCompute, ctx.dynamic_scale);
            }
        }
    }

    /// Record the owners of this router's output VCs on `port` (packets
    /// mid-transmission across that link) into `out`. Fault handling calls
    /// this for every newly dead outgoing link: those packets are severed
    /// and must be condemned network-wide.
    pub(crate) fn condemn_output_owners(&self, port: Port, out: &mut BTreeSet<PacketId>) {
        for ovc in &self.outputs[port.index()] {
            if let Some(pid) = ovc.owner {
                out.insert(pid);
            }
        }
    }

    /// Record every packet with a flit buffered here or holding one of this
    /// router's output claims into `out` — used when the router itself dies.
    pub(crate) fn condemn_all(&self, out: &mut BTreeSet<PacketId>) {
        for port_vcs in &self.inputs {
            for ivc in port_vcs {
                for flit in ivc.buf.iter() {
                    out.insert(flit.packet);
                }
            }
        }
        for port_vcs in &self.outputs {
            for ovc in port_vcs {
                if let Some(pid) = ovc.owner {
                    out.insert(pid);
                }
            }
        }
    }

    /// Purge condemned packets and clear routes into dead links.
    ///
    /// * Flits of condemned packets are removed from every input VC;
    ///   `credit(in_port, vc)` is invoked once per removed flit so the
    ///   network can restore the upstream sender's credit.
    /// * Input VCs owned by a condemned packet are released, dropping the
    ///   downstream output-VC claim they held.
    /// * Routes that point into a dead link but have not yet claimed a
    ///   downstream VC are cleared so RC can re-route the packet around the
    ///   fault next cycle.
    ///
    /// Returns the number of flits removed.
    pub(crate) fn purge_and_reroute(
        &mut self,
        condemned: &BTreeSet<PacketId>,
        dead: impl Fn(Port) -> bool,
        mut credit: impl FnMut(Port, usize),
    ) -> u64 {
        let mut removed = 0u64;
        for ip in 0..Port::COUNT {
            let in_port = Port::from_index(ip);
            for vc in 0..self.num_vcs {
                if !condemned.is_empty() {
                    let ivc = &mut self.inputs[ip][vc];
                    let mut purged = 0;
                    for pid in condemned {
                        purged += ivc.purge_packet(*pid);
                    }
                    for _ in 0..purged {
                        credit(in_port, vc);
                    }
                    removed += purged as u64;
                    let owner_condemned = ivc.owner.is_some_and(|o| condemned.contains(&o));
                    if owner_condemned {
                        let claim = match (ivc.route, ivc.out_vc) {
                            (Some(route), Some(out_vc)) if route != Port::Local => {
                                Some((route, out_vc))
                            }
                            _ => None,
                        };
                        ivc.release();
                        if let Some((route, out_vc)) = claim {
                            self.outputs[route.index()][out_vc].owner = None;
                        }
                    }
                }
                let ivc = &mut self.inputs[ip][vc];
                if let Some(route) = ivc.route {
                    if route != Port::Local && dead(route) && ivc.out_vc.is_none() {
                        // Not yet committed downstream: let RC re-route.
                        ivc.route = None;
                    }
                }
            }
        }
        self.occ -= removed as usize;
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, Packet, PacketId};
    use crate::power::EnergyMeter;

    fn ctx_parts() -> (Topology, PowerModel) {
        (Topology::mesh(4, 4), PowerModel::default_32nm())
    }

    fn make_flits(src: usize, dst: usize, len: u32) -> Vec<Flit> {
        Packet {
            id: PacketId(1),
            src: NodeId(src),
            dst: NodeId(dst),
            len_flits: len,
            created_at: 0,
        }
        .to_flits(0)
    }

    /// Serialization round-trip of a loaded router rebuilds the occupancy
    /// counter from the buffers (it is never trusted from the wire), so a
    /// deserialized router keeps routing its buffered flits.
    #[test]
    fn deserialized_router_recomputes_occupancy() {
        let (topo, power) = ctx_parts();
        let mut meter = EnergyMeter::new();
        let mut r = Router::new(NodeId(0), 2, 4, false);
        let mut ctx = RouterCtx {
            topo: &topo,
            routing: RoutingAlgorithm::Xy,
            power: &power,
            energy: EnergySink::Meter(&mut meter),
            dynamic_scale: 1.0,
            faults: None,
        };
        for f in make_flits(0, 1, 3) {
            r.accept(Port::Local, f, &mut ctx);
        }
        assert_eq!(r.occupancy(), 3);
        let json = serde_json::to_string(&r).expect("router serializes");
        let back: Router = serde_json::from_str(&json).expect("router deserializes");
        assert_eq!(
            back.occupancy(),
            3,
            "counter must be rebuilt, not defaulted"
        );
        assert_eq!(back, r);
        // The restored router still routes: three cycles later the head flit
        // is forwarded, which is impossible with a stale zero counter.
        let mut back = back;
        let mut events = Vec::new();
        for _ in 0..3 {
            events.clear();
            back.step_into(&mut ctx, &mut events);
        }
        assert!(
            events
                .iter()
                .any(|e| matches!(e, RouterEvent::Forward { .. })),
            "deserialized router must make progress: {events:?}"
        );
    }

    /// Drive a lone router: inject a packet on the Local port addressed to a
    /// neighbor and check it is forwarded east with pipeline latency 3
    /// (RC, VA, SA on successive cycles).
    #[test]
    fn single_flit_traverses_pipeline_in_three_cycles() {
        let (topo, power) = ctx_parts();
        let mut meter = EnergyMeter::new();
        let mut r = Router::new(NodeId(0), 2, 4, false);
        let mut ctx = RouterCtx {
            topo: &topo,
            routing: RoutingAlgorithm::Xy,
            power: &power,
            energy: EnergySink::Meter(&mut meter),
            dynamic_scale: 1.0,
            faults: None,
        };
        let flits = make_flits(0, 1, 1);
        r.accept(Port::Local, flits[0].clone(), &mut ctx);

        // Cycle 1: RC only.
        let ev = r.step(&mut ctx);
        assert!(ev.is_empty(), "no movement before VA: {ev:?}");
        // Cycle 2: VA.
        let ev = r.step(&mut ctx);
        assert!(ev.is_empty(), "no movement before SA: {ev:?}");
        // Cycle 3: SA/ST forwards the flit.
        let ev = r.step(&mut ctx);
        let fwd = ev.iter().find_map(|e| match e {
            RouterEvent::Forward { out_port, flit } => Some((*out_port, flit.clone())),
            _ => None,
        });
        let (port, flit) = fwd.expect("flit forwarded");
        assert_eq!(port, Port::East);
        assert_eq!(flit.hops, 1);
        assert!(ev.iter().any(|e| matches!(
            e,
            RouterEvent::Credit {
                in_port: Port::Local,
                vc: 0
            }
        )));
    }

    #[test]
    fn flit_at_destination_is_ejected() {
        let (topo, power) = ctx_parts();
        let mut meter = EnergyMeter::new();
        let mut r = Router::new(NodeId(5), 2, 4, false);
        let mut ctx = RouterCtx {
            topo: &topo,
            routing: RoutingAlgorithm::Xy,
            power: &power,
            energy: EnergySink::Meter(&mut meter),
            dynamic_scale: 1.0,
            faults: None,
        };
        let mut flit = make_flits(0, 5, 1).remove(0);
        flit.vc = 1;
        r.accept(Port::West, flit, &mut ctx);
        let mut ejected = false;
        for _ in 0..3 {
            for e in r.step(&mut ctx) {
                if let RouterEvent::Eject { flit } = e {
                    assert_eq!(flit.dst, NodeId(5));
                    ejected = true;
                }
            }
        }
        assert!(ejected, "flit should eject within 3 cycles");
    }

    #[test]
    fn credits_limit_outstanding_flits() {
        let (topo, power) = ctx_parts();
        let mut meter = EnergyMeter::new();
        let mut r = Router::new(NodeId(0), 1, 2, false);
        let mut ctx = RouterCtx {
            topo: &topo,
            routing: RoutingAlgorithm::Xy,
            power: &power,
            energy: EnergySink::Meter(&mut meter),
            dynamic_scale: 1.0,
            faults: None,
        };
        // 5-flit packet; downstream buffer depth 2 and no credit returns.
        for f in make_flits(0, 3, 5).into_iter().take(2) {
            r.accept(Port::Local, f, &mut ctx);
        }
        let mut forwarded = 0;
        for _ in 0..10 {
            for e in r.step(&mut ctx) {
                if matches!(e, RouterEvent::Forward { .. }) {
                    forwarded += 1;
                }
            }
        }
        assert_eq!(
            forwarded, 2,
            "only vc_depth flits may be in flight without credits"
        );
        // Returning credits unblocks... nothing more is buffered, so verify
        // credit accounting instead.
        assert_eq!(r.credits(Port::East, 0), 0);
        r.return_credit(Port::East, 0);
        assert_eq!(r.credits(Port::East, 0), 1);
    }

    #[test]
    fn tail_flit_releases_vc_ownership() {
        let (topo, power) = ctx_parts();
        let mut meter = EnergyMeter::new();
        let mut r = Router::new(NodeId(0), 1, 4, false);
        let mut ctx = RouterCtx {
            topo: &topo,
            routing: RoutingAlgorithm::Xy,
            power: &power,
            energy: EnergySink::Meter(&mut meter),
            dynamic_scale: 1.0,
            faults: None,
        };
        for f in make_flits(0, 1, 2) {
            r.accept(Port::Local, f, &mut ctx);
        }
        let mut tails = 0;
        for _ in 0..8 {
            for e in r.step(&mut ctx) {
                if let RouterEvent::Forward { flit, .. } = e {
                    if flit.kind == FlitKind::Tail {
                        tails += 1;
                    }
                }
            }
        }
        assert_eq!(tails, 1);
        // After the tail left, the output VC is free for a new packet.
        assert!(r.outputs[Port::East.index()][0].is_free());
        assert!(r.inputs[Port::Local.index()][0].route.is_none());
    }

    #[test]
    fn occupancy_tracks_buffered_flits() {
        let (topo, power) = ctx_parts();
        let mut meter = EnergyMeter::new();
        let mut r = Router::new(NodeId(0), 2, 4, false);
        let mut ctx = RouterCtx {
            topo: &topo,
            routing: RoutingAlgorithm::Xy,
            power: &power,
            energy: EnergySink::Meter(&mut meter),
            dynamic_scale: 1.0,
            faults: None,
        };
        assert_eq!(r.occupancy(), 0);
        for f in make_flits(0, 1, 3) {
            r.accept(Port::Local, f, &mut ctx);
        }
        assert_eq!(r.occupancy(), 3);
        assert_eq!(r.buffer_capacity(), 5 * 2 * 4);
    }

    #[test]
    fn vc_partition_restricts_allocation() {
        let (topo, power) = ctx_parts();
        let mut meter = EnergyMeter::new();
        let mut r = Router::new(NodeId(0), 4, 2, true);
        let mut ctx = RouterCtx {
            topo: &topo,
            routing: RoutingAlgorithm::Xy,
            power: &power,
            energy: EnergySink::Meter(&mut meter),
            dynamic_scale: 1.0,
            faults: None,
        };
        let mut flit = make_flits(0, 1, 1).remove(0);
        flit.vc_class = 1;
        r.accept(Port::Local, flit, &mut ctx);
        r.step(&mut ctx); // RC
        r.step(&mut ctx); // VA
        let out_vc = r.inputs[Port::Local.index()][0]
            .out_vc
            .expect("VC allocated");
        assert!(
            out_vc >= 2,
            "class-1 flit must use the upper VC half, got {out_vc}"
        );
    }

    #[test]
    fn step_consumes_energy() {
        let (topo, power) = ctx_parts();
        let mut meter = EnergyMeter::new();
        let mut r = Router::new(NodeId(0), 2, 4, false);
        let mut ctx = RouterCtx {
            topo: &topo,
            routing: RoutingAlgorithm::Xy,
            power: &power,
            energy: EnergySink::Meter(&mut meter),
            dynamic_scale: 1.0,
            faults: None,
        };
        let f = make_flits(0, 1, 1).remove(0);
        r.accept(Port::Local, f, &mut ctx);
        for _ in 0..3 {
            r.step(&mut ctx);
        }
        assert!(meter.dynamic_pj() > 0.0);
        assert!(meter.events() >= 4, "write + RC + VA + SA events expected");
    }
}
