//! Value-generation strategies (sampling only; no shrinking).

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("options", &self.options.len())
            .finish()
    }
}

impl<T> Union<T> {
    /// Build from a non-empty list of alternatives.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.rng().gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

macro_rules! tuple_strategies {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy over the full domain of a primitive type.
#[derive(Debug, Clone, Default)]
pub struct FullRange<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen()
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> Self::Strategy {
                FullRange { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

arbitrary_via_standard!(bool, u32, u64, usize, f32, f64);

/// The canonical strategy for `A` (`any::<bool>()`, …).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}
