//! Convenience wrappers: train the DRL agent on [`crate::NocEnv`], and run
//! any controller against a workload to produce comparable metrics.

use crate::action::ActionSpace;
use crate::controller::Controller;
use crate::env::{NocEnv, NocEnvConfig};
use crate::state::StateEncoder;
use noc_sim::{SimConfig, SimResult, Simulator, WindowMetrics};
use rl::{DqnAgent, DqnConfig, EpisodeStats, TabularConfig, TabularQ, TrainConfig};
use serde::{Deserialize, Serialize};

/// Everything produced by a training run.
#[derive(Debug)]
pub struct TrainedPolicy {
    /// The trained agent.
    pub agent: DqnAgent,
    /// Per-episode learning curve (Fig 3).
    pub curve: Vec<EpisodeStats>,
    /// The state encoder used during training (reuse it at deployment).
    pub encoder: StateEncoder,
    /// The action space used during training.
    pub action_space: ActionSpace,
}

/// Train a DQN policy on the self-configuration environment.
///
/// The DQN's dimensions are taken from the environment; `dqn` fields
/// `state_dim`/`num_actions` are overwritten.
///
/// # Errors
/// Returns an error if the environment configuration is invalid.
pub fn train_drl(
    env_config: NocEnvConfig,
    mut dqn: DqnConfig,
    train: TrainConfig,
) -> SimResult<TrainedPolicy> {
    let mut env = NocEnv::new(env_config)?;
    dqn.state_dim = rl::Environment::state_dim(&env);
    dqn.num_actions = rl::Environment::num_actions(&env);
    let mut agent = DqnAgent::new(dqn);
    let curve = rl::train(&mut env, &mut agent, &train);
    let encoder = env.encoder().clone();
    let action_space = env.config().action_space.clone();
    Ok(TrainedPolicy {
        agent,
        curve,
        encoder,
        action_space,
    })
}

/// Train the tabular Q-learning baseline on the same environment.
///
/// # Errors
/// Returns an error if the environment configuration is invalid.
pub fn train_tabular(
    env_config: NocEnvConfig,
    mut tab: TabularConfig,
    train: TrainConfig,
) -> SimResult<(TabularQ, Vec<EpisodeStats>, StateEncoder, ActionSpace)> {
    let mut env = NocEnv::new(env_config)?;
    tab.state_dim = rl::Environment::state_dim(&env);
    tab.num_actions = rl::Environment::num_actions(&env);
    let mut agent = TabularQ::new(tab);
    let curve = rl::train(&mut env, &mut agent, &train);
    let encoder = env.encoder().clone();
    let action_space = env.config().action_space.clone();
    Ok((agent, curve, encoder, action_space))
}

/// Aggregate figures of a controller run (one row of the comparison tables).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunAggregate {
    /// Controller name.
    pub controller: String,
    /// Total cycles simulated.
    pub cycles: u64,
    /// Mean packet latency over all completed packets (sample-weighted).
    #[serde(with = "noc_sim::stats::serde_nan")]
    pub avg_latency: f64,
    /// Mean accepted throughput, flits per node per cycle.
    pub throughput: f64,
    /// Total energy (pJ).
    pub energy_pj: f64,
    /// Energy per delivered flit (pJ/flit).
    #[serde(with = "noc_sim::stats::serde_nan")]
    pub energy_per_flit: f64,
    /// Energy-delay product: total energy × mean latency.
    #[serde(with = "noc_sim::stats::serde_nan")]
    pub edp: f64,
    /// Mean reward per epoch under the default reward (for reference).
    #[serde(with = "noc_sim::stats::serde_nan")]
    pub mean_level: f64,
}

/// Full trace of a controller run.
#[derive(Debug, Clone)]
pub struct ControllerRun {
    /// Aggregate row.
    pub aggregate: RunAggregate,
    /// Per-epoch telemetry.
    pub epochs: Vec<WindowMetrics>,
    /// Per-epoch level vectors (after the controller's decision).
    pub levels: Vec<Vec<usize>>,
}

/// Drive `controller` over `epochs` control epochs of `epoch_cycles` each on
/// a fresh simulator built from `sim_config`.
///
/// # Errors
/// Returns an error if the simulator configuration is invalid.
pub fn run_controller(
    sim_config: &SimConfig,
    controller: &mut dyn Controller,
    epochs: usize,
    epoch_cycles: u64,
) -> SimResult<ControllerRun> {
    let mut sim = Simulator::new(sim_config.clone())?;
    let num_levels = sim_config.vf_table.num_levels();
    let mut epoch_metrics = Vec::with_capacity(epochs);
    let mut levels_trace = Vec::with_capacity(epochs);
    // Warm the telemetry with one epoch before the first decision.
    let mut last = sim.run_epoch(epoch_cycles);
    for _ in 0..epochs {
        let decision = controller.decide(&last, sim.region_levels(), num_levels);
        for (r, &l) in decision.levels.iter().enumerate() {
            sim.set_region_level(r, l)?;
        }
        if let Some(routing) = decision.routing {
            sim.set_routing(routing)?;
        }
        last = sim.run_epoch(epoch_cycles);
        levels_trace.push(sim.region_levels().to_vec());
        epoch_metrics.push(last.clone());
    }
    let aggregate = aggregate_run(controller.name(), &epoch_metrics, &levels_trace);
    Ok(ControllerRun {
        aggregate,
        epochs: epoch_metrics,
        levels: levels_trace,
    })
}

/// Fold per-epoch metrics into one comparison row.
pub fn aggregate_run(name: &str, epochs: &[WindowMetrics], levels: &[Vec<usize>]) -> RunAggregate {
    let cycles: u64 = epochs.iter().map(|m| m.cycles).sum();
    let samples: u64 = epochs.iter().map(|m| m.latency_samples).sum();
    let lat_sum: f64 = epochs
        .iter()
        .filter(|m| m.latency_samples > 0)
        .map(|m| m.avg_packet_latency * m.latency_samples as f64)
        .sum();
    let avg_latency = if samples > 0 {
        lat_sum / samples as f64
    } else {
        f64::NAN
    };
    let energy_pj: f64 = epochs.iter().map(|m| m.energy_pj).sum();
    let ejected: u64 = epochs.iter().map(|m| m.ejected_flits).sum();
    let throughput = if cycles > 0 {
        epochs
            .iter()
            .map(|m| m.throughput * m.cycles as f64)
            .sum::<f64>()
            / cycles as f64
    } else {
        0.0
    };
    let mean_level = if levels.is_empty() {
        f64::NAN
    } else {
        levels
            .iter()
            .flat_map(|v| v.iter().map(|&l| l as f64))
            .sum::<f64>()
            / levels.iter().map(|v| v.len()).sum::<usize>().max(1) as f64
    };
    RunAggregate {
        controller: name.to_string(),
        cycles,
        avg_latency,
        throughput,
        energy_pj,
        energy_per_flit: if ejected > 0 {
            energy_pj / ejected as f64
        } else {
            f64::NAN
        },
        edp: energy_pj * avg_latency,
        mean_level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{StaticController, ThresholdController};
    use crate::reward::RewardConfig;
    use noc_sim::TrafficPattern;
    use rl::Schedule;

    fn small_sim() -> SimConfig {
        SimConfig::default()
            .with_size(4, 4)
            .with_traffic(TrafficPattern::Uniform, 0.10)
            .with_regions(2, 2)
    }

    fn small_env_cfg() -> NocEnvConfig {
        NocEnvConfig {
            action_space: ActionSpace::PerRegionDelta {
                num_regions: 4,
                num_levels: 4,
            },
            sim: small_sim(),
            epoch_cycles: 150,
            epochs_per_episode: 4,
            reward: RewardConfig::default(),
            traffic_menu: vec![],
            seed: 7,
        }
    }

    #[test]
    fn run_controller_produces_full_trace() {
        let mut c = StaticController::max();
        let run = run_controller(&small_sim(), &mut c, 6, 200).unwrap();
        assert_eq!(run.epochs.len(), 6);
        assert_eq!(run.levels.len(), 6);
        assert_eq!(run.aggregate.cycles, 1200);
        assert!(run.aggregate.avg_latency.is_finite());
        assert!(run.aggregate.energy_pj > 0.0);
        assert_eq!(run.aggregate.mean_level, 3.0);
        assert_eq!(run.aggregate.controller, "static-max");
    }

    #[test]
    fn static_min_saves_energy_but_adds_latency() {
        let mut hi = StaticController::max();
        let mut lo = StaticController::min();
        let a = run_controller(&small_sim(), &mut hi, 8, 200)
            .unwrap()
            .aggregate;
        let b = run_controller(&small_sim(), &mut lo, 8, 200)
            .unwrap()
            .aggregate;
        assert!(b.energy_pj < a.energy_pj, "min level must burn less energy");
        assert!(
            b.avg_latency > a.avg_latency,
            "min level must be slower: {} vs {}",
            b.avg_latency,
            a.avg_latency
        );
    }

    #[test]
    fn threshold_controller_runs_and_reacts() {
        let sim = small_sim();
        let net = Simulator::new(sim.clone()).unwrap();
        let caps = net.network().region_capacity();
        let mut c = ThresholdController::new(caps, 16);
        let run = run_controller(&sim, &mut c, 8, 200).unwrap();
        assert_eq!(run.aggregate.controller, "threshold");
        assert!(run.aggregate.avg_latency.is_finite());
    }

    #[test]
    fn train_drl_smoke() {
        let policy = train_drl(
            small_env_cfg(),
            DqnConfig {
                hidden: vec![16],
                batch_size: 8,
                min_replay: 8,
                ..DqnConfig::default()
            },
            TrainConfig {
                episodes: 3,
                max_steps: 4,
                epsilon: Schedule::Constant(0.5),
                train_per_step: 1,
                seed: 1,
            },
        )
        .unwrap();
        assert_eq!(policy.curve.len(), 3);
        assert!(policy.agent.train_steps() > 0);
        assert_eq!(policy.encoder.state_dim(), 17);
        assert_eq!(policy.action_space.num_actions(), 11);
    }

    #[test]
    fn train_tabular_smoke() {
        let (agent, curve, _, _) = train_tabular(
            small_env_cfg(),
            TabularConfig {
                bins: 3,
                ..TabularConfig::default()
            },
            TrainConfig {
                episodes: 3,
                max_steps: 4,
                epsilon: Schedule::Constant(0.5),
                train_per_step: 0,
                seed: 2,
            },
        )
        .unwrap();
        assert_eq!(curve.len(), 3);
        assert!(agent.updates() > 0);
    }

    #[test]
    fn aggregate_handles_empty_and_weighted_latency() {
        let agg = aggregate_run("x", &[], &[]);
        assert!(agg.avg_latency.is_nan());
        assert_eq!(agg.cycles, 0);
    }
}
