//! Integration tests of the sweep-as-a-service stack: cache-key
//! completeness, single-flight deduplication, the warm-cache speedup
//! headline, and the daemon's protocol / admission / failure behavior.

use noc_selfconf::serve::{
    scenario_cache_key, CacheOutcome, Daemon, ErrorCode, Event, Request, ResultCache, Scheduler,
    SchedulerConfig, ServeClient, ServeConfig,
};
use noc_selfconf::{ScenarioResult, SweepGrid};
use noc_sim::{RoutingAlgorithm, SimError, SwitchArb, TrafficPattern};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// A small, fast grid (4 scenarios at 4x4, 110 cycles each).
fn tiny_grid() -> SweepGrid {
    SweepGrid {
        sizes: vec![(4, 4)],
        patterns: vec![TrafficPattern::Uniform, TrafficPattern::Transpose],
        rates: vec![0.03, 0.06],
        routings: vec![RoutingAlgorithm::Xy],
        warmup: 10,
        measure: 50,
        drain: 50,
        ..SweepGrid::default()
    }
}

/// A single-scenario grid that takes long enough to keep one worker busy
/// while a few quick scheduler calls happen on another thread.
fn slow_grid() -> SweepGrid {
    SweepGrid {
        sizes: vec![(8, 8)],
        patterns: vec![TrafficPattern::Uniform],
        rates: vec![0.05],
        routings: vec![RoutingAlgorithm::Xy],
        warmup: 100,
        measure: 4000,
        drain: 400,
        ..SweepGrid::default()
    }
}

/// Fresh per-test temp dir (removed up front so reruns start cold).
fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("noc_serve_test_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// ---------------------------------------------------------------------------
// Cache keys (satellite: completeness audit)
// ---------------------------------------------------------------------------

/// The cache key of scenario 0 of a grid, as a hex string.
fn key_of(grid: &SweepGrid) -> String {
    let s = &grid.scenarios()[0];
    scenario_cache_key(s, grid.warmup, grid.measure, grid.drain)
        .as_str()
        .to_string()
}

#[test]
fn cache_key_covers_every_behavior_affecting_field() {
    let base = tiny_grid();
    let reference = key_of(&base);

    // Identical derivation is stable, and keys are 32 hex chars (usable as
    // file stems without escaping).
    assert_eq!(reference, key_of(&tiny_grid()));
    assert_eq!(reference.len(), 32);
    assert!(reference.chars().all(|c| c.is_ascii_hexdigit()));

    // switch_arb must be in the key: configs differing only in arbitration
    // policy simulate differently (for multi-flit packets).
    let mut g = tiny_grid();
    g.base = g.base.clone().with_switch_arb(SwitchArb::PerPacket);
    assert_ne!(reference, key_of(&g), "switch_arb must affect the key");

    // Base-config fields that never appear in the label still land in the
    // key via the serialized config.
    let mut g = tiny_grid();
    g.base.packet_len = 7;
    assert_ne!(reference, key_of(&g), "packet length must affect the key");
    let mut g = tiny_grid();
    g.base.vc_depth += 2;
    assert_ne!(reference, key_of(&g), "vc_depth must affect the key");

    // Seed, axes, and window budgets all separate.
    let g = SweepGrid {
        base_seed: 999,
        ..tiny_grid()
    };
    assert_ne!(reference, key_of(&g), "seed must affect the key");
    let g = SweepGrid {
        rates: vec![0.04, 0.06],
        ..tiny_grid()
    };
    assert_ne!(reference, key_of(&g), "injection rate must affect the key");
    let g = SweepGrid {
        measure: 60,
        ..tiny_grid()
    };
    assert_ne!(reference, key_of(&g), "window budget must affect the key");
    let g = SweepGrid {
        faults: vec![2],
        ..tiny_grid()
    };
    assert_ne!(reference, key_of(&g), "fault plan must affect the key");
    let g = SweepGrid {
        levels: vec![Some(0)],
        ..tiny_grid()
    };
    assert_ne!(
        reference,
        key_of(&g),
        "pinned DVFS level must affect the key"
    );

    // `partitions` is the one deliberate exclusion: results are pinned
    // byte-identical across partition counts, so the cache must hit across
    // them — that is the point of caching.
    let g = SweepGrid {
        partitions: 4,
        ..tiny_grid()
    };
    assert_eq!(reference, key_of(&g), "partitions must NOT affect the key");
}

// ---------------------------------------------------------------------------
// Single-flight + cache tiers
// ---------------------------------------------------------------------------

#[test]
fn concurrent_identical_lookups_compute_exactly_once() {
    let grid = tiny_grid();
    let scenarios = grid.scenarios();
    let scenario = &scenarios[0];
    let key = scenario_cache_key(scenario, grid.warmup, grid.measure, grid.drain);
    let cache = ResultCache::in_memory();
    let runs = AtomicUsize::new(0);
    let n = 8;
    let barrier = Barrier::new(n);
    let results: Vec<(ScenarioResult, CacheOutcome)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let (cache, runs, barrier, key, grid) = (&cache, &runs, &barrier, &key, &grid);
                scope.spawn(move || {
                    barrier.wait();
                    cache
                        .get_or_compute(key, || {
                            runs.fetch_add(1, Ordering::SeqCst);
                            grid.run_scenario(scenario)
                        })
                        .expect("scenario runs")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(
        runs.load(Ordering::SeqCst),
        1,
        "N concurrent identical lookups must trigger exactly one run"
    );
    let bytes: Vec<String> = results
        .iter()
        .map(|(r, _)| serde_json::to_string(r).unwrap())
        .collect();
    assert!(
        bytes.iter().all(|b| b == &bytes[0]),
        "every caller must see identical result bytes"
    );
    let computed = results
        .iter()
        .filter(|(_, o)| *o == CacheOutcome::Computed)
        .count();
    assert_eq!(computed, 1, "exactly one caller computed");
    let stats = cache.stats();
    assert_eq!(stats.computed, 1);
    assert_eq!(stats.lookups(), n as u64);
}

#[test]
fn failed_computation_releases_the_flight_and_allows_retry() {
    let cache = ResultCache::in_memory();
    let grid = tiny_grid();
    let scenarios = grid.scenarios();
    let scenario = &scenarios[0];
    let key = scenario_cache_key(scenario, grid.warmup, grid.measure, grid.drain);
    // First computation fails; the error propagates and the slot is freed.
    let err = cache.get_or_compute(&key, || Err(SimError::InvalidConfig("boom".into())));
    assert!(err.is_err());
    // The next caller is not stuck behind a dead flight — it computes.
    let (result, outcome) = cache
        .get_or_compute(&key, || grid.run_scenario(scenario))
        .expect("retry succeeds");
    assert_eq!(outcome, CacheOutcome::Computed);
    assert_eq!(result.label, scenario.label);
}

#[test]
fn unwritable_cache_dir_is_rejected_at_open() {
    // A regular file where the directory should be: creation fails.
    let dir = temp_dir("unwritable");
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, b"not a directory").unwrap();
    assert!(
        ResultCache::open(&blocker.join("cache")).is_err(),
        "opening a cache under a regular file must fail"
    );
    // And the daemon refuses to start on it (graceful-errors satellite).
    let config = ServeConfig {
        cache_dir: Some(blocker.join("cache")),
        ..ServeConfig::default()
    };
    assert!(Daemon::start(config).is_err());
}

#[test]
fn corrupt_disk_entries_are_soft_misses() {
    let dir = temp_dir("corrupt");
    let grid = tiny_grid();
    let scenarios = grid.scenarios();
    let scenario = &scenarios[0];
    let key = scenario_cache_key(scenario, grid.warmup, grid.measure, grid.drain);
    std::fs::write(dir.join(format!("{key}.json")), b"{torn write").unwrap();
    let cache = ResultCache::open(&dir).unwrap();
    let (_, outcome) = cache
        .get_or_compute(&key, || grid.run_scenario(scenario))
        .expect("corrupt entry must not fail the job");
    assert_eq!(outcome, CacheOutcome::Computed);
    assert_eq!(cache.stats().read_errors, 1);
    // The entry was rewritten; a fresh cache now disk-hits.
    let cache2 = ResultCache::open(&dir).unwrap();
    let (_, outcome) = cache2
        .get_or_compute(&key, || grid.run_scenario(scenario))
        .expect("rewritten entry loads");
    assert_eq!(outcome, CacheOutcome::DiskHit);
}

// ---------------------------------------------------------------------------
// The headline: warm rerun of a >= 100-scenario grid, >= 10x, byte-identical
// ---------------------------------------------------------------------------

#[test]
fn warm_cache_rerun_is_10x_faster_and_byte_identical() {
    // 4 patterns x 25 rates = 100 scenarios at 4x4. The budget (1210
    // cycles per scenario) keeps the cold run comfortably past 10x the
    // warm disk-read cost even in release mode, where simulation is cheap.
    let grid = SweepGrid {
        sizes: vec![(4, 4)],
        patterns: vec![
            TrafficPattern::Uniform,
            TrafficPattern::Transpose,
            TrafficPattern::Tornado,
            TrafficPattern::BitComplement,
        ],
        rates: (1..=25).map(|i| f64::from(i) * 0.003).collect(),
        routings: vec![RoutingAlgorithm::Xy],
        warmup: 10,
        measure: 1000,
        drain: 200,
        ..SweepGrid::default()
    };
    assert!(grid.len() >= 100, "headline needs >= 100 scenarios");
    let dir = temp_dir("warm10x");
    let threads = 4;

    let cold_cache = ResultCache::open(&dir).unwrap();
    let cold_start = Instant::now();
    let cold = grid.run_cached(threads, &cold_cache).expect("cold run");
    let cold_time = cold_start.elapsed();
    assert_eq!(cold_cache.stats().computed, grid.len() as u64);

    // A fresh process would open a fresh cache: only the disk tier is warm.
    let warm_cache = ResultCache::open(&dir).unwrap();
    let warm_start = Instant::now();
    let warm = grid.run_cached(threads, &warm_cache).expect("warm run");
    let warm_time = warm_start.elapsed();
    assert_eq!(warm_cache.stats().disk_hits, grid.len() as u64);
    assert_eq!(
        warm_cache.stats().computed,
        0,
        "warm rerun simulates nothing"
    );

    let cold_bytes = serde_json::to_string_pretty(&cold).unwrap();
    let warm_bytes = serde_json::to_string_pretty(&warm).unwrap();
    assert_eq!(cold_bytes, warm_bytes, "warm report must be byte-identical");

    // And byte-identical to the cache-free engine at another thread count.
    let direct = serde_json::to_string_pretty(&grid.run(2).expect("direct run")).unwrap();
    assert_eq!(cold_bytes, direct, "cached and uncached worlds must agree");

    assert!(
        warm_time.as_secs_f64() * 10.0 <= cold_time.as_secs_f64(),
        "warm rerun must be >= 10x faster (cold {cold_time:?}, warm {warm_time:?})"
    );
}

// ---------------------------------------------------------------------------
// Scheduler admission + cancel accounting (no TCP)
// ---------------------------------------------------------------------------

#[test]
fn admission_bounds_reject_and_free_cleanly() {
    let scheduler = Scheduler::start(
        SchedulerConfig {
            threads: 2,
            max_outstanding: 10,
            max_client_outstanding: 4,
        },
        Arc::new(ResultCache::in_memory()),
    );
    let (tx, rx) = std::sync::mpsc::channel();
    // 4 scenarios fit the client quota exactly.
    scheduler
        .submit("alice", 1, tiny_grid(), &tx)
        .expect("within bounds");
    // A second 4-scenario job busts alice's quota (4+4 > 4)...
    let err = scheduler.submit("alice", 2, tiny_grid(), &tx).unwrap_err();
    assert_eq!(err.0, ErrorCode::ClientQuota);
    // ...bob still fits (global 4+4 <= 10, fresh quota)...
    scheduler
        .submit("bob", 2, tiny_grid(), &tx)
        .expect("bob fits");
    // ...and a third job busts the global bound (8+4 > 10).
    let err = scheduler.submit("carl", 3, tiny_grid(), &tx).unwrap_err();
    assert_eq!(err.0, ErrorCode::QueueFull);
    // Empty grids are rejected before admission.
    let empty = SweepGrid {
        rates: vec![],
        ..tiny_grid()
    };
    let err = scheduler.submit("carl", 3, empty, &tx).unwrap_err();
    assert_eq!(err.0, ErrorCode::InvalidGrid);

    // Drain both jobs; the reservations free and carl fits again.
    let mut done = 0;
    while done < 2 {
        match rx
            .recv_timeout(Duration::from_secs(60))
            .expect("job events")
        {
            Event::Done { job, report } => {
                assert!(job == 1 || job == 2);
                assert_eq!(report.aggregate.num_scenarios, 4);
                done += 1;
            }
            Event::Accepted { .. } | Event::Result { .. } => {}
            other => panic!("unexpected event: {other:?}"),
        }
    }
    assert_eq!(
        scheduler.stats().outstanding_scenarios,
        0,
        "no leaked slots"
    );
    scheduler
        .submit("carl", 3, tiny_grid(), &tx)
        .expect("freed reservations re-admit");
    scheduler.begin_shutdown();
    scheduler.join();
}

#[test]
fn cancel_frees_reservations_and_is_idempotent() {
    // One worker, kept busy by a slow job, so the victim job is still fully
    // queued when the cancel lands.
    let scheduler = Scheduler::start(
        SchedulerConfig {
            threads: 1,
            ..SchedulerConfig::default()
        },
        Arc::new(ResultCache::in_memory()),
    );
    let (tx, rx) = std::sync::mpsc::channel();
    let blocker = scheduler
        .submit("ada", 1, slow_grid(), &tx)
        .expect("blocker admitted");
    // Wait until the worker has actually picked the blocker up, so both
    // cancel paths below are deterministic.
    let deadline = Instant::now() + Duration::from_secs(30);
    while scheduler.status(blocker).map(|(phase, _, _)| phase) != Some("running".to_string()) {
        assert!(Instant::now() < deadline, "blocker must start running");
        std::thread::yield_now();
    }
    let victim = scheduler
        .submit("carol", 2, tiny_grid(), &tx)
        .expect("victim admitted");
    assert!(scheduler.status(victim).is_some());
    // The victim has nothing dispatched (the lone worker is busy with the
    // blocker), so the first cancel finalizes it on the spot; after that it
    // is unknown — terminal jobs don't linger.
    assert!(scheduler.cancel(victim), "active job cancels");
    assert!(!scheduler.cancel(victim), "finalized job is gone");
    // The blocker HAS a dispatched scenario, so its cancel stays pending
    // until that scenario lands — and a repeated cancel is idempotent.
    assert!(scheduler.cancel(blocker), "in-flight job cancels");
    assert!(
        scheduler.cancel(blocker),
        "cancel is idempotent while pending"
    );
    let mut canceled = 0;
    while canceled < 2 {
        match rx
            .recv_timeout(Duration::from_secs(60))
            .expect("job events")
        {
            Event::Canceled { completed, .. } => {
                assert!(completed <= 4);
                canceled += 1;
            }
            Event::Accepted { .. } | Event::Result { .. } => {}
            other => panic!("unexpected event: {other:?}"),
        }
    }
    assert_eq!(
        scheduler.stats().outstanding_scenarios,
        0,
        "no leaked slots"
    );
    assert!(!scheduler.cancel(victim), "finished jobs are unknown");
    assert!(scheduler.status(victim).is_none());
    scheduler.begin_shutdown();
    scheduler.join();
}

// ---------------------------------------------------------------------------
// Daemon protocol end-to-end (TCP on 127.0.0.1)
// ---------------------------------------------------------------------------

fn local_daemon(config: ServeConfig) -> Daemon {
    Daemon::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..config
    })
    .expect("daemon starts")
}

fn shut_down(daemon: Daemon) {
    daemon.shutdown();
    daemon.wait();
}

#[test]
fn daemon_serves_ping_stats_and_structured_errors() {
    let daemon = local_daemon(ServeConfig::default());
    let addr = daemon.addr().to_string();
    let mut conn = ServeClient::connect(&addr).unwrap();
    assert_eq!(conn.request(&Request::Ping).unwrap(), Event::Pong);

    // Malformed requests produce structured errors, and the connection
    // stays usable afterwards (graceful-errors satellite).
    for bad in [
        "this is not json",
        "{}",
        "{\"cmd\":\"submit\"}",
        "{\"cmd\":\"submit\",\"grid\":{\"rates\":\"all\"}}",
        "[1,2]",
    ] {
        conn.send_raw(bad).unwrap();
        match conn.recv().unwrap() {
            Event::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest, "line: {bad}"),
            other => panic!("expected bad_request for `{bad}`, got {other:?}"),
        }
        assert_eq!(
            conn.request(&Request::Ping).unwrap(),
            Event::Pong,
            "connection must stay usable after `{bad}`"
        );
    }

    // Status/cancel of unknown jobs: structured unknown_job, no panic.
    match conn.request(&Request::Status { job: 42 }).unwrap() {
        Event::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownJob),
        other => panic!("expected unknown_job, got {other:?}"),
    }
    match conn.request(&Request::Cancel { job: 7 }).unwrap() {
        Event::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownJob),
        other => panic!("expected unknown_job, got {other:?}"),
    }

    // Stats replies parse and start at zero sim runs.
    match conn.request(&Request::Stats).unwrap() {
        Event::Stats { cache, scheduler } => {
            assert_eq!(cache.computed, 0);
            assert_eq!(scheduler.sim_runs, 0);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    drop(conn);
    shut_down(daemon);
}

#[test]
fn submitted_report_matches_local_run_bytes() {
    let daemon = local_daemon(ServeConfig::default());
    let addr = daemon.addr().to_string();
    let grid = tiny_grid();
    let mut conn = ServeClient::connect(&addr).unwrap();
    let remote = conn.run_grid("test", &grid).expect("daemon runs the grid");
    let local = grid.run_serial().expect("local run");
    assert_eq!(
        serde_json::to_string_pretty(&remote).unwrap(),
        serde_json::to_string_pretty(&local).unwrap(),
        "daemon-side execution must be byte-identical to a local run"
    );
    drop(conn);
    shut_down(daemon);
}

#[test]
fn concurrent_duplicate_submissions_share_one_simulation() {
    let daemon = local_daemon(ServeConfig::default());
    let addr = daemon.addr().to_string();
    let grid = tiny_grid();
    let n_clients = 3;
    let barrier = Barrier::new(n_clients);
    let streams: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_clients)
            .map(|i| {
                let (addr, grid, barrier) = (&addr, &grid, &barrier);
                scope.spawn(move || {
                    let mut conn = ServeClient::connect(addr).unwrap();
                    barrier.wait();
                    conn.send(&Request::Submit {
                        client: format!("client-{i}"),
                        grid: Box::new(grid.clone()),
                    })
                    .unwrap();
                    let mut lines = Vec::new();
                    loop {
                        let line = conn.recv_line().unwrap();
                        let done = line.starts_with("{\"event\":\"done\"");
                        lines.push(line);
                        if done {
                            return lines;
                        }
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Byte-identical response streams: connection-scoped job ids and
    // in-order emission make each stream a pure function of the grid.
    assert_eq!(
        streams[0].len(),
        grid.len() + 2,
        "accepted + results + done"
    );
    for stream in &streams[1..] {
        assert_eq!(
            stream, &streams[0],
            "every client must receive byte-identical lines"
        );
    }
    // Single-flight across clients: one simulation per unique scenario.
    let mut conn = ServeClient::connect(&addr).unwrap();
    match conn.request(&Request::Stats).unwrap() {
        Event::Stats { scheduler, .. } => {
            assert_eq!(
                scheduler.sim_runs,
                grid.len() as u64,
                "duplicate submissions must not re-simulate"
            );
        }
        other => panic!("expected stats, got {other:?}"),
    }
    drop(conn);
    shut_down(daemon);
}

#[test]
fn disconnect_mid_stream_frees_reservations() {
    let daemon = local_daemon(ServeConfig {
        scheduler: SchedulerConfig {
            threads: 1,
            ..SchedulerConfig::default()
        },
        ..ServeConfig::default()
    });
    let addr = daemon.addr().to_string();
    {
        let mut conn = ServeClient::connect(&addr).unwrap();
        conn.send(&Request::Submit {
            client: "ghost".to_string(),
            grid: Box::new(slow_grid()),
        })
        .unwrap();
        // Read the acceptance, then vanish mid-job.
        match conn.recv().unwrap() {
            Event::Accepted { scenarios, .. } => assert_eq!(scenarios, 1),
            other => panic!("expected accepted, got {other:?}"),
        }
    } // dropped: TCP close; the daemon cancels and frees the reservations
    let mut conn = ServeClient::connect(&addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match conn.request(&Request::Stats).unwrap() {
            Event::Stats { scheduler, .. } => {
                if scheduler.outstanding_scenarios == 0 && scheduler.active_jobs == 0 {
                    break;
                }
            }
            other => panic!("expected stats, got {other:?}"),
        }
        assert!(
            Instant::now() < deadline,
            "disconnect must free reservations"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    // The daemon is still fully functional for the next client.
    let report = conn.run_grid("next", &tiny_grid()).expect("daemon alive");
    assert_eq!(report.aggregate.num_scenarios, 4);
    drop(conn);
    shut_down(daemon);
}

#[test]
fn shutdown_command_stops_the_daemon_cleanly() {
    let daemon = local_daemon(ServeConfig::default());
    let addr = daemon.addr().to_string();
    let mut conn = ServeClient::connect(&addr).unwrap();
    assert_eq!(
        conn.request(&Request::Shutdown).unwrap(),
        Event::ShuttingDown
    );
    // New submits are refused during the drain (or the daemon has already
    // closed the connection — both are clean outcomes).
    match conn.request(&Request::Submit {
        client: "late".to_string(),
        grid: Box::new(tiny_grid()),
    }) {
        Ok(Event::Error { code, .. }) => assert_eq!(code, ErrorCode::ShuttingDown),
        Ok(other) => panic!("expected shutting_down, got {other:?}"),
        Err(_) => {} // connection already drained and closed
    }
    drop(conn);
    // wait() must return (accept loop, connections, and workers joined).
    let handle = std::thread::spawn(move || daemon.wait());
    let start = Instant::now();
    while !handle.is_finished() {
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "daemon.wait() must complete after shutdown"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.join().unwrap();
}

#[test]
fn daemon_with_disk_cache_serves_warm_submissions() {
    let dir = temp_dir("daemon_disk");
    let grid = tiny_grid();
    // First daemon: cold, computes and persists.
    let daemon = local_daemon(ServeConfig {
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let addr = daemon.addr().to_string();
    let mut conn = ServeClient::connect(&addr).unwrap();
    let first = conn.run_grid("cold", &grid).unwrap();
    drop(conn);
    shut_down(daemon);
    // Second daemon (a fresh process's worth of state): disk-warm.
    let daemon = local_daemon(ServeConfig {
        cache_dir: Some(dir),
        ..ServeConfig::default()
    });
    let addr = daemon.addr().to_string();
    let mut conn = ServeClient::connect(&addr).unwrap();
    let second = conn.run_grid("warm", &grid).unwrap();
    match conn.request(&Request::Stats).unwrap() {
        Event::Stats { cache, scheduler } => {
            assert_eq!(scheduler.sim_runs, 0, "warm daemon must not simulate");
            assert_eq!(cache.disk_hits, grid.len() as u64);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    assert_eq!(
        serde_json::to_string_pretty(&first).unwrap(),
        serde_json::to_string_pretty(&second).unwrap(),
        "cache restarts must preserve byte-identity"
    );
    drop(conn);
    shut_down(daemon);
}

// ---------------------------------------------------------------------------
// Property: cache determinism across thread counts and reruns
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For arbitrary small grids, the cached engine is byte-identical to
    /// the cache-free one at every thread count, and a warm rerun (memory
    /// tier, arbitrary other thread count) reproduces the same bytes
    /// without a single extra simulation.
    #[test]
    fn cached_reports_are_byte_identical_across_thread_counts(
        pattern_idx in 0usize..4,
        rate in 0.01f64..0.12,
        seed in 0u64..1_000,
        measure in 30u64..80,
        cold_threads in 1usize..5,
        warm_threads in 1usize..5,
    ) {
        let pattern = [
            TrafficPattern::Uniform,
            TrafficPattern::Transpose,
            TrafficPattern::Tornado,
            TrafficPattern::BitComplement,
        ][pattern_idx].clone();
        let grid = SweepGrid {
            sizes: vec![(4, 4)],
            patterns: vec![pattern],
            rates: vec![rate, rate + 0.01],
            routings: vec![RoutingAlgorithm::Xy],
            warmup: 10,
            measure,
            drain: 40,
            base_seed: seed,
            ..SweepGrid::default()
        };
        let reference = serde_json::to_string_pretty(
            &grid.run_serial().expect("serial run"),
        ).unwrap();
        let cache = ResultCache::in_memory();
        let cold = grid.run_cached(cold_threads, &cache).expect("cold cached run");
        prop_assert_eq!(
            &serde_json::to_string_pretty(&cold).unwrap(),
            &reference,
            "cold cached run must match the serial engine"
        );
        prop_assert_eq!(cache.stats().computed, grid.len() as u64);
        let warm = grid.run_cached(warm_threads, &cache).expect("warm cached run");
        prop_assert_eq!(
            &serde_json::to_string_pretty(&warm).unwrap(),
            &reference,
            "warm rerun must match at any thread count"
        );
        prop_assert_eq!(cache.stats().computed, grid.len() as u64, "no recompute");
        prop_assert_eq!(cache.stats().memory_hits, grid.len() as u64);
    }
}
