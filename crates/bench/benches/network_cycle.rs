//! Criterion bench: full-network cycles at several loads and mesh sizes —
//! the figure that determines every experiment's wall-clock cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use noc_sim::{SimConfig, Simulator, TrafficPattern};
use std::hint::black_box;

fn bench_network_cycles(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_cycles");
    for (name, width, rate) in [
        ("4x4@0.1", 4usize, 0.1),
        ("8x8@0.1", 8, 0.1),
        ("8x8@0.25", 8, 0.25),
    ] {
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            let cfg = SimConfig::default()
                .with_size(width, width)
                .with_traffic(TrafficPattern::Uniform, rate);
            let mut sim = Simulator::new(cfg).expect("valid config");
            sim.run(500); // warm the network
            b.iter(|| {
                sim.run(100);
                black_box(sim.stats().ejected_flits)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_network_cycles);
criterion_main!(benches);
