//! Table 3 — per-pattern summary at mid load: latency, throughput, energy,
//! EDP, and savings vs the static-max baseline.

use noc_bench::comparison::run_or_load;
use noc_bench::{fmt, print_table, save_csv, save_markdown, Scale};

fn main() {
    let scale = Scale::from_env();
    let points = run_or_load(scale);
    // Mid-load column: the rate closest to 0.10.
    let mut rates: Vec<f64> = points.iter().map(|p| p.rate).collect();
    rates.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    rates.dedup();
    let mid = rates
        .iter()
        .copied()
        .min_by(|a, b| {
            (a - 0.10)
                .abs()
                .partial_cmp(&(b - 0.10).abs())
                .expect("finite")
        })
        .expect("rates non-empty");

    let mut rows = Vec::new();
    let mut patterns: Vec<String> = points.iter().map(|p| p.pattern.clone()).collect();
    patterns.sort();
    patterns.dedup();
    for pattern in &patterns {
        let base = points
            .iter()
            .find(|p| p.pattern == *pattern && p.rate == mid && p.controller == "static-max")
            .expect("baseline present");
        for p in points
            .iter()
            .filter(|p| p.pattern == *pattern && p.rate == mid)
        {
            rows.push(vec![
                pattern.clone(),
                p.controller.clone(),
                fmt(p.agg.avg_latency),
                fmt(p.agg.throughput),
                fmt(p.agg.energy_pj / 1e3),
                fmt(p.agg.edp / 1e6),
                format!(
                    "{:+.1}%",
                    100.0 * (p.agg.avg_latency / base.agg.avg_latency - 1.0)
                ),
                format!(
                    "{:+.1}%",
                    100.0 * (p.agg.energy_pj / base.agg.energy_pj - 1.0)
                ),
                format!("{:+.1}%", 100.0 * (p.agg.edp / base.agg.edp - 1.0)),
            ]);
        }
    }
    let headers = [
        "pattern",
        "controller",
        "latency",
        "throughput",
        "energy (nJ)",
        "EDP (×10⁶)",
        "Δlatency vs max",
        "Δenergy vs max",
        "ΔEDP vs max",
    ];
    let md = print_table(
        &format!("Table 3 — per-pattern summary at rate {mid:.2}"),
        &headers,
        &rows,
    );
    save_csv("table3_summary", &headers, &rows);
    save_markdown("table3_summary", &md);
}
