//! Episode-driven training and evaluation loops.

use crate::env::{Environment, LearningAgent};
use crate::replay::Transition;
use crate::schedule::Schedule;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Training-loop parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of episodes.
    pub episodes: usize,
    /// Hard cap on steps per episode (safety net on top of env termination).
    pub max_steps: usize,
    /// Exploration schedule over *environment steps*.
    pub epsilon: Schedule,
    /// Gradient updates attempted per environment step.
    pub train_per_step: usize,
    /// RNG seed for exploration and replay sampling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            episodes: 100,
            max_steps: 200,
            epsilon: Schedule::epsilon_default(5_000),
            train_per_step: 1,
            seed: 0,
        }
    }
}

/// Per-episode training statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeStats {
    /// Episode index (0-based).
    pub episode: usize,
    /// Undiscounted return.
    pub total_reward: f64,
    /// Steps taken.
    pub steps: usize,
    /// Mean training loss across updates this episode (0 if none ran).
    pub avg_loss: f32,
    /// ε at the episode's final step.
    pub epsilon: f64,
}

/// Train `agent` on `env` for the configured number of episodes.
pub fn train(
    env: &mut dyn Environment,
    agent: &mut dyn LearningAgent,
    config: &TrainConfig,
) -> Vec<EpisodeStats> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut global_step: u64 = 0;
    let mut out = Vec::with_capacity(config.episodes);
    for episode in 0..config.episodes {
        let mut state = env.reset();
        let mut total_reward = 0.0;
        let mut losses = (0.0f32, 0u32);
        let mut steps = 0;
        let mut eps = config.epsilon.value(global_step);
        for _ in 0..config.max_steps {
            eps = config.epsilon.value(global_step);
            let action = agent.act(&state, eps, &mut rng);
            let step = env.step(action);
            total_reward += step.reward;
            agent.observe(Transition {
                state: state.clone(),
                action,
                reward: step.reward as f32,
                next_state: step.state.clone(),
                done: step.done,
            });
            for _ in 0..config.train_per_step {
                if let Some(l) = agent.train_step(&mut rng) {
                    losses.0 += l;
                    losses.1 += 1;
                }
            }
            state = step.state;
            global_step += 1;
            steps += 1;
            if step.done {
                break;
            }
        }
        out.push(EpisodeStats {
            episode,
            total_reward,
            steps,
            avg_loss: if losses.1 > 0 {
                losses.0 / losses.1 as f32
            } else {
                0.0
            },
            epsilon: eps,
        });
    }
    out
}

/// Run `episodes` greedy (ε=0) episodes and return the mean return.
pub fn evaluate(
    env: &mut dyn Environment,
    agent: &mut dyn LearningAgent,
    episodes: usize,
    max_steps: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0.0;
    for _ in 0..episodes {
        let mut state = env.reset();
        for _ in 0..max_steps {
            let action = agent.act(&state, 0.0, &mut rng);
            let step = env.step(action);
            total += step.reward;
            state = step.state;
            if step.done {
                break;
            }
        }
    }
    total / episodes as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dqn::{DqnAgent, DqnConfig};
    use crate::env::ChainEnv;
    use crate::tabular::{TabularConfig, TabularQ};

    #[test]
    fn dqn_solves_the_chain() {
        let mut env = ChainEnv::new(5, 0.01, 30);
        let mut agent = DqnAgent::new(DqnConfig {
            hidden: vec![32],
            batch_size: 16,
            min_replay: 64,
            replay_capacity: 4096,
            lr: 2e-3,
            gamma: 0.9,
            ..DqnConfig::default().with_dims(5, 2)
        });
        let config = TrainConfig {
            episodes: 120,
            max_steps: 30,
            epsilon: Schedule::Linear {
                start: 1.0,
                end: 0.02,
                steps: 1500,
            },
            train_per_step: 1,
            seed: 11,
        };
        let stats = train(&mut env, &mut agent, &config);
        assert_eq!(stats.len(), 120);
        let avg = evaluate(&mut env, &mut agent, 10, 30, 1);
        assert!(
            avg > 0.9 * env.optimal_return(),
            "greedy return {avg} should be near optimal {}",
            env.optimal_return()
        );
        // Learning curve: late episodes beat early ones.
        let early: f64 = stats[..20].iter().map(|s| s.total_reward).sum::<f64>() / 20.0;
        let late: f64 = stats[100..].iter().map(|s| s.total_reward).sum::<f64>() / 20.0;
        assert!(
            late > early,
            "reward should improve: early {early}, late {late}"
        );
    }

    #[test]
    fn tabular_solves_the_chain() {
        let mut env = ChainEnv::new(5, 0.01, 30);
        // One-hot observations in [0,1] with 2 bins land each feature in a
        // distinct bucket, so the table sees exact states.
        let mut agent = TabularQ::new(TabularConfig {
            state_dim: 5,
            num_actions: 2,
            bins: 2,
            alpha: 0.2,
            gamma: 0.9,
            ..TabularConfig::default()
        });
        let config = TrainConfig {
            episodes: 200,
            max_steps: 30,
            epsilon: Schedule::Linear {
                start: 1.0,
                end: 0.02,
                steps: 2000,
            },
            train_per_step: 0, // tabular learns in observe()
            seed: 5,
        };
        train(&mut env, &mut agent, &config);
        let avg = evaluate(&mut env, &mut agent, 10, 30, 2);
        assert!(
            avg > 0.9 * env.optimal_return(),
            "tabular greedy return {avg}"
        );
    }

    #[test]
    fn epsilon_anneals_over_training() {
        let mut env = ChainEnv::new(3, 0.0, 10);
        let mut agent = TabularQ::new(TabularConfig {
            state_dim: 3,
            bins: 2,
            ..TabularConfig::default()
        });
        let config = TrainConfig {
            episodes: 30,
            max_steps: 10,
            epsilon: Schedule::Linear {
                start: 1.0,
                end: 0.0,
                steps: 100,
            },
            train_per_step: 0,
            seed: 0,
        };
        let stats = train(&mut env, &mut agent, &config);
        let first = stats.first().unwrap().epsilon;
        let last = stats.last().unwrap().epsilon;
        assert!(
            first > last,
            "epsilon must decay: first {first}, last {last}"
        );
        assert!(
            last < 0.2,
            "epsilon should be mostly decayed by episode 30: {last}"
        );
    }
}
