//! # noc-bench — the experiment harness
//!
//! One binary per table/figure of the evaluation (see DESIGN.md for the
//! index) plus Criterion micro-benchmarks of the hot paths. This library
//! holds what the binaries share: result formatting, artifact caching for
//! trained policies, standard configurations, and a tiny thread-pool helper.

#![warn(missing_docs)]

pub mod report;

use noc_selfconf::{NocEnvConfig, PolicyArtifact};
use rl::{DqnConfig, TabularConfig, TrainConfig};
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::{Path, PathBuf};

/// Scale of an experiment run. `EXPT_SCALE=quick` shrinks every budget so
/// integration tests and smoke runs finish in seconds; the default `full`
/// scale regenerates paper-quality curves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-quality budgets (minutes).
    Full,
    /// Smoke-test budgets (seconds).
    Quick,
}

impl Scale {
    /// Read the scale from the `EXPT_SCALE` environment variable.
    pub fn from_env() -> Scale {
        match std::env::var("EXPT_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            _ => Scale::Full,
        }
    }

    /// Pick `full` or `quick` depending on the scale.
    pub fn pick<T>(self, full: T, quick: T) -> T {
        match self {
            Scale::Full => full,
            Scale::Quick => quick,
        }
    }
}

/// Directory where experiment outputs (CSV, markdown, trained policies) are
/// written: `results/` at the repository root, or `$EXPT_RESULTS`.
///
/// # Panics
/// Panics with the offending path and OS error when the directory cannot be
/// created — a swallowed error here surfaces later as a baffling "No such
/// file" from some unrelated artifact write, which is undiagnosable in CI
/// logs.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("EXPT_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results"));
    fs::create_dir_all(&dir).unwrap_or_else(|e| {
        panic!(
            "cannot create results directory `{}` (set $EXPT_RESULTS to relocate it): {e}",
            dir.display()
        )
    });
    dir
}

/// Render a markdown table to stdout and return it as a string.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n## {title}\n\n"));
    out.push_str(&format!("| {} |\n", headers.join(" | ")));
    out.push_str(&format!("|{}\n", "---|".repeat(headers.len())));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    print!("{out}");
    out
}

/// Write rows as CSV into `results/<name>.csv`.
pub fn save_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let mut s = String::new();
    s.push_str(&headers.join(","));
    s.push('\n');
    for row in rows {
        s.push_str(&row.join(","));
        s.push('\n');
    }
    let path = results_dir().join(format!("{name}.csv"));
    fs::write(&path, s).expect("CSV must be writable");
    eprintln!("wrote {}", path.display());
}

/// Write a markdown report into `results/<name>.md`.
pub fn save_markdown(name: &str, content: &str) {
    let path = results_dir().join(format!("{name}.md"));
    fs::write(&path, content).expect("markdown must be writable");
    eprintln!("wrote {}", path.display());
}

/// Format a float with sensible precision for tables.
pub fn fmt(v: f64) -> String {
    if v.is_nan() {
        "—".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Run `f(0..n)` on up to `threads` OS threads and collect results in order
/// (the workspace's shared pool primitive, re-exported from the core crate).
pub use noc_selfconf::{default_threads, parallel_map};

/// Whether a cached artifact at `path` can satisfy a request whose training
/// configuration hashes to `expected`. Artifacts whose hash differs — or
/// legacy artifacts, which carry no hash — are misses: returning them would
/// silently hand the caller a policy trained under a *different*
/// configuration (the old cache's stale-artifact bug).
fn cache_hit(path: &Path, expected: &str, kind: &str) -> Option<PolicyArtifact> {
    if std::env::var("EXPT_RETRAIN").is_ok() {
        return None;
    }
    let artifact = PolicyArtifact::load(path).ok()?;
    if artifact.kind_name() != kind {
        return None;
    }
    if artifact.config_hash != expected {
        eprintln!(
            "cached policy {} was trained under a different configuration; retraining",
            path.display()
        );
        return None;
    }
    eprintln!("loaded cached policy {}", path.display());
    Some(artifact)
}

/// Train a DQN policy, caching the artifact at `<dir>/<key>.json`. The
/// cache is keyed on the configuration hash: an artifact trained under a
/// different environment/hyper-parameter/budget combination (or a pre-zoo
/// legacy artifact, which records no hash) is a miss and gets retrained.
/// `EXPT_RETRAIN` forces a miss.
pub fn train_or_load_in(
    dir: &Path,
    key: &str,
    env_cfg: NocEnvConfig,
    dqn: DqnConfig,
    train: TrainConfig,
) -> PolicyArtifact {
    let path = dir.join(format!("{key}.json"));
    let expected = noc_selfconf::dqn_config_hash(&env_cfg, &dqn, &train);
    if let Some(artifact) = cache_hit(&path, &expected, "dqn") {
        return artifact;
    }
    eprintln!("training policy `{key}` ({} episodes)...", train.episodes);
    let t0 = std::time::Instant::now();
    let policy = noc_selfconf::train_drl(env_cfg.clone(), dqn, train.clone())
        .expect("training configuration");
    eprintln!(
        "trained `{key}` in {:.1?} ({} steps)",
        t0.elapsed(),
        policy.agent.train_steps()
    );
    let artifact = PolicyArtifact::from_dqn(&policy, env_cfg, train).expect("policy serializes");
    artifact.save(&path).expect("artifact must be writable");
    artifact
}

/// [`train_or_load_in`] against the shared `results/` directory.
pub fn train_or_load(
    key: &str,
    env_cfg: NocEnvConfig,
    dqn: DqnConfig,
    train: TrainConfig,
) -> PolicyArtifact {
    train_or_load_in(&results_dir(), key, env_cfg, dqn, train)
}

/// Train the tabular baseline, caching at `<dir>/<key>.json` with the same
/// config-hash keying as [`train_or_load_in`].
pub fn train_or_load_tabular_in(
    dir: &Path,
    key: &str,
    env_cfg: NocEnvConfig,
    tab: TabularConfig,
    train: TrainConfig,
) -> PolicyArtifact {
    let path = dir.join(format!("{key}.json"));
    let expected = noc_selfconf::tabular_config_hash(&env_cfg, &tab, &train);
    if let Some(artifact) = cache_hit(&path, &expected, "tabular") {
        return artifact;
    }
    eprintln!("training tabular `{key}` ({} episodes)...", train.episodes);
    let (agent, curve, encoder, action_space) =
        noc_selfconf::train_tabular(env_cfg.clone(), tab, train.clone())
            .expect("training configuration");
    let artifact =
        PolicyArtifact::from_tabular(agent, curve, encoder, action_space, env_cfg, train);
    artifact.save(&path).expect("artifact must be writable");
    artifact
}

/// [`train_or_load_tabular_in`] against the shared `results/` directory.
pub fn train_or_load_tabular(
    key: &str,
    env_cfg: NocEnvConfig,
    tab: TabularConfig,
    train: TrainConfig,
) -> PolicyArtifact {
    train_or_load_tabular_in(&results_dir(), key, env_cfg, tab, train)
}

/// Standard experiment configurations shared by the binaries.
pub mod configs {
    use super::*;
    use noc_sim::{
        InjectionProcess, NodeId, SimConfig, TrafficPattern, TrafficSpec, WorkloadPhase,
        WorkloadSpec,
    };
    use rl::Schedule;

    /// The paper's mesh: 8×8, 4 VCs × 4 flits, 5-flit packets, 2×2 regions.
    pub fn mesh8() -> SimConfig {
        SimConfig::default()
    }

    /// The scalability mesh: 4×4 with 2×2 regions.
    pub fn mesh4() -> SimConfig {
        SimConfig::default().with_size(4, 4).with_regions(2, 2)
    }

    /// The patterns of the comparison figures.
    pub fn comparison_patterns() -> Vec<(&'static str, TrafficPattern)> {
        vec![
            ("uniform", TrafficPattern::Uniform),
            ("transpose", TrafficPattern::Transpose),
            ("bitcomp", TrafficPattern::BitComplement),
            ("hotspot", hotspot()),
        ]
    }

    /// The hotspot pattern used throughout: 30 % of traffic to node 0.
    pub fn hotspot() -> TrafficPattern {
        TrafficPattern::Hotspot {
            hotspots: vec![NodeId(0)],
            fraction: 0.3,
        }
    }

    /// The bursty phase trace of Fig 7. Phases last 12 control epochs so
    /// controllers have room to settle inside each regime; the third regime
    /// uses a bursty on/off process at the same mean load the old Bernoulli
    /// phase carried.
    pub fn phase_trace() -> TrafficSpec {
        TrafficSpec::Workload(WorkloadSpec::new(vec![
            WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.03, 6000),
            WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.25, 6000),
            WorkloadPhase::new(
                TrafficPattern::Transpose,
                InjectionProcess::Bursty {
                    rate_on: 0.24,
                    switch: 0.02,
                },
                6000,
            ),
            WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.01, 6000),
        ]))
    }

    /// The environment configuration used to train the deployed policies
    /// (the paper-style environment over the given fabric).
    pub fn train_env(sim: SimConfig, seed: u64) -> NocEnvConfig {
        NocEnvConfig::for_sim(sim, seed)
    }

    /// The DQN hyper-parameters of Table 2.
    pub fn dqn_default(seed: u64) -> DqnConfig {
        DqnConfig::default().with_seed(seed)
    }

    /// The training budget, scaled.
    pub fn train_budget(scale: Scale, seed: u64) -> TrainConfig {
        TrainConfig {
            episodes: scale.pick(250, 3),
            max_steps: 40,
            epsilon: Schedule::Linear {
                start: 1.0,
                end: 0.05,
                steps: scale.pick(7000, 60),
            },
            train_per_step: 1,
            seed,
        }
    }

    /// The tabular baseline's configuration.
    pub fn tabular_default() -> TabularConfig {
        TabularConfig {
            bins: 3,
            alpha: 0.15,
            gamma: 0.95,
            ..TabularConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_is_compact() {
        assert_eq!(fmt(f64::NAN), "—");
        assert_eq!(fmt(12345.6), "12346");
        assert_eq!(fmt(42.42), "42.4");
        assert_eq!(fmt(0.1234), "0.123");
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(20, 4, |i| i * i);
        assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Full.pick(10, 1), 10);
        assert_eq!(Scale::Quick.pick(10, 1), 1);
    }

    #[test]
    fn table_renders_markdown() {
        let s = print_table("T", &["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(s.contains("| a | b |"));
        assert!(s.contains("| 1 | 2 |"));
    }

    /// Regression for the stale-cache bug: the old cache returned whatever
    /// artifact sat under the key, even when the requested training
    /// configuration had changed. The cache is now keyed on the config
    /// hash, so a changed configuration under the same key must retrain.
    #[test]
    fn policy_cache_misses_on_config_change() {
        let dir = std::env::temp_dir().join(format!("noc_bench_cache_test_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let env = configs::train_env(configs::mesh4(), 3);
        let dqn = DqnConfig {
            hidden: vec![8],
            batch_size: 8,
            min_replay: 8,
            ..configs::dqn_default(3)
        };
        let train = TrainConfig {
            episodes: 1,
            max_steps: 2,
            ..configs::train_budget(Scale::Quick, 3)
        };
        let a = train_or_load_in(&dir, "cache_probe", env.clone(), dqn.clone(), train.clone());
        // Same configuration: the second call is a cache hit with identical
        // bytes (or an identical deterministic retrain under EXPT_RETRAIN).
        let b = train_or_load_in(&dir, "cache_probe", env.clone(), dqn.clone(), train.clone());
        assert_eq!(a.to_json(), b.to_json());
        // Changed configuration under the SAME key: the cached artifact
        // must not be returned.
        let mut env2 = env.clone();
        env2.epoch_cycles += 1;
        let c = train_or_load_in(&dir, "cache_probe", env2.clone(), dqn, train.clone());
        assert_ne!(a.config_hash, c.config_hash);
        assert_eq!(
            c.provenance
                .as_ref()
                .expect("fresh artifact has provenance")
                .env
                .epoch_cycles,
            env2.epoch_cycles
        );
        // The tabular path shares the keying: a DQN artifact under a
        // tabular key is a kind mismatch, not a hit.
        let t =
            train_or_load_tabular_in(&dir, "cache_probe", env2, configs::tabular_default(), train);
        assert_eq!(t.kind_name(), "tabular");
        let _ = fs::remove_dir_all(&dir);
    }
}

/// The controller-comparison grid shared by Figs 4–6 and Table 3.
pub mod comparison {
    use super::*;
    use noc_selfconf::{
        run_controller, Controller, RunAggregate, StaticController, ThresholdController,
    };
    use noc_sim::{SimConfig, Simulator, TrafficPattern};

    /// One grid point: a controller on a workload.
    #[derive(Debug, Clone, Serialize, Deserialize)]
    pub struct ComparisonPoint {
        /// Traffic pattern name.
        pub pattern: String,
        /// Offered injection rate (flits/node/cycle).
        pub rate: f64,
        /// Controller name.
        pub controller: String,
        /// Aggregate metrics of the run.
        pub agg: RunAggregate,
    }

    /// A factory producing fresh instances of one controller flavor.
    pub type ControllerFactory = Box<dyn FnMut() -> Box<dyn Controller> + Send>;

    /// The controllers compared everywhere. Policies are trained (or loaded
    /// from cache) for the given mesh key.
    pub fn controllers_for(
        sim: &SimConfig,
        key_prefix: &str,
        scale: Scale,
    ) -> Vec<(&'static str, ControllerFactory)> {
        let probe = Simulator::new(sim.clone()).expect("valid sim");
        let caps = probe.network().region_capacity();
        let nodes = probe.network().topology().num_nodes();
        let drl = train_or_load(
            &format!("{key_prefix}_drl"),
            configs::train_env(sim.clone(), 7),
            configs::dqn_default(7),
            configs::train_budget(scale, 7),
        );
        let tab = train_or_load_tabular(
            &format!("{key_prefix}_tabular"),
            configs::train_env(sim.clone(), 8),
            configs::tabular_default(),
            configs::train_budget(scale, 8),
        );
        let drl = std::sync::Arc::new(drl);
        let tab = std::sync::Arc::new(tab);
        let caps2 = caps.clone();
        vec![
            (
                "static-max",
                Box::new(|| Box::new(StaticController::max()) as Box<dyn Controller>),
            ),
            (
                "static-min",
                Box::new(|| Box::new(StaticController::min()) as Box<dyn Controller>),
            ),
            (
                "threshold",
                Box::new(move || {
                    Box::new(ThresholdController::new(caps2.clone(), nodes)) as Box<dyn Controller>
                }),
            ),
            (
                "tabular-q",
                Box::new({
                    let tab = tab.clone();
                    move || tab.controller().expect("cached policy deploys")
                }),
            ),
            (
                "drl",
                Box::new({
                    let drl = drl.clone();
                    move || drl.controller().expect("cached policy deploys")
                }),
            ),
        ]
    }

    /// Injection rates of the comparison sweep.
    pub fn sweep_rates(scale: Scale) -> Vec<f64> {
        scale.pick(vec![0.02, 0.06, 0.10, 0.14, 0.18, 0.22], vec![0.05, 0.20])
    }

    /// Patterns of the comparison sweep.
    pub fn sweep_patterns() -> Vec<(&'static str, TrafficPattern)> {
        vec![
            ("uniform", TrafficPattern::Uniform),
            ("transpose", TrafficPattern::Transpose),
            ("hotspot", configs::hotspot()),
        ]
    }

    /// Run (or load from cache) the full comparison grid on the 8×8 mesh.
    pub fn run_or_load(scale: Scale) -> Vec<ComparisonPoint> {
        let tag = scale.pick("full", "quick");
        let cache = results_dir().join(format!("comparison_{tag}.json"));
        if std::env::var("EXPT_RERUN").is_err() {
            if let Ok(bytes) = std::fs::read(&cache) {
                if let Ok(points) = serde_json::from_slice::<Vec<ComparisonPoint>>(&bytes) {
                    eprintln!("loaded cached comparison {}", cache.display());
                    return points;
                }
            }
        }
        let sim = configs::mesh8();
        let mut factories = controllers_for(&sim, "mesh8", scale);
        let rates = sweep_rates(scale);
        let patterns = sweep_patterns();
        let epochs = scale.pick(40, 3);
        let epoch_cycles = scale.pick(500, 200);

        // Flatten the grid, then evaluate points in parallel per controller
        // (controller factories are FnMut, so parallelize over the grid for
        // each controller in turn).
        let mut points = Vec::new();
        for (name, factory) in factories.iter_mut() {
            let mut grid: Vec<(String, f64, SimConfig)> = Vec::new();
            for (pname, pattern) in &patterns {
                for &rate in &rates {
                    grid.push((
                        pname.to_string(),
                        rate,
                        sim.clone().with_traffic(pattern.clone(), rate),
                    ));
                }
            }
            let controllers: Vec<std::sync::Mutex<Box<dyn Controller>>> = grid
                .iter()
                .map(|_| std::sync::Mutex::new(factory()))
                .collect();
            let threads = noc_selfconf::default_threads();
            let results = parallel_map(grid.len(), threads, |i| {
                let (pname, rate, cfg) = &grid[i];
                let mut c = controllers[i].lock().expect("controller lock poisoned");
                let run = run_controller(cfg, c.as_mut(), epochs, epoch_cycles)
                    .expect("valid configuration");
                ComparisonPoint {
                    pattern: pname.clone(),
                    rate: *rate,
                    controller: name.to_string(),
                    agg: run.aggregate,
                }
            });
            points.extend(results);
            eprintln!("comparison: finished controller {name}");
        }
        std::fs::write(
            &cache,
            serde_json::to_vec(&points).expect("points serialize"),
        )
        .expect("cache must be writable");
        points
    }
}
