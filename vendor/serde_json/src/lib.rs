//! # serde_json (offline stand-in)
//!
//! JSON text ⇄ the vendored serde [`Value`] tree. Implements the entry
//! points this workspace calls — [`to_string`], [`to_string_pretty`],
//! [`to_vec`], [`from_str`], [`from_slice`] — plus a recursive-descent
//! parser covering the full JSON grammar (escapes and `\uXXXX` included).
//!
//! Rendering is deterministic: derived maps preserve field declaration
//! order and `HashMap`s are serialized key-sorted by the vendored serde,
//! so equal inputs always produce byte-identical output (the sweep
//! engine's report determinism rests on this).

#![warn(missing_docs)]

use serde::ser::Serialize;
use serde::value::render;
use serde::Deserialize;
pub use serde::Value;
use std::fmt;

/// Error raised by JSON (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = serde::to_value(value).map_err(|e| Error(e.to_string()))?;
    Ok(render(&v, false))
}

/// Serialize a value to pretty-printed JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = serde::to_value(value).map_err(|e| Error(e.to_string()))?;
    Ok(render(&v, true))
}

/// Serialize a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T> {
    let v = parse(s)?;
    serde::from_value(&v).map_err(|e| Error(e.to_string()))
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        chars: s.chars().collect(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<char> {
        let c = self
            .peek()
            .ok_or_else(|| Error("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<()> {
        let got = self.bump()?;
        if got != c {
            return Err(Error(format!(
                "expected `{c}`, got `{got}` at offset {}",
                self.pos - 1
            )));
        }
        Ok(())
    }

    fn keyword(&mut self, word: &str) -> Result<()> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self
            .peek()
            .ok_or_else(|| Error("unexpected end of input".into()))?
        {
            'n' => {
                self.keyword("null")?;
                Ok(Value::Null)
            }
            't' => {
                self.keyword("true")?;
                Ok(Value::Bool(true))
            }
            'f' => {
                self.keyword("false")?;
                Ok(Value::Bool(false))
            }
            '"' => self.string().map(Value::Str),
            '[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bump()? {
                        ',' => continue,
                        ']' => return Ok(Value::Seq(items)),
                        c => return Err(Error(format!("expected `,` or `]`, got `{c}`"))),
                    }
                }
            }
            '{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some('}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(':')?;
                    entries.push((key, self.value()?));
                    self.skip_ws();
                    match self.bump()? {
                        ',' => continue,
                        '}' => return Ok(Value::Map(entries)),
                        c => return Err(Error(format!("expected `,` or `}}`, got `{c}`"))),
                    }
                }
            }
            c if c == '-' || c.is_ascii_digit() => self.number(),
            c => Err(Error(format!(
                "unexpected character `{c}` at offset {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                '"' => return Ok(out),
                '\\' => match self.bump()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let c = self.bump()?;
                            code = code * 16
                                + c.to_digit(16).ok_or_else(|| {
                                    Error(format!("invalid unicode escape digit `{c}`"))
                                })?;
                        }
                        // Surrogate pairs: join a high surrogate with the
                        // following `\uXXXX` low surrogate.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            self.expect('\\')?;
                            self.expect('u')?;
                            let mut low = 0u32;
                            for _ in 0..4 {
                                let c = self.bump()?;
                                low = low * 16
                                    + c.to_digit(16).ok_or_else(|| {
                                        Error(format!("invalid unicode escape digit `{c}`"))
                                    })?;
                            }
                            let joined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(joined)
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| Error("invalid unicode escape".into()))?);
                    }
                    c => return Err(Error(format!("invalid escape `\\{c}`"))),
                },
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' => self.pos += 1,
                '.' | 'e' | 'E' | '+' | '-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(format!("invalid number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error(format!("invalid number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error(format!("invalid number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let v: Vec<f64> = from_str("[1.5, 2.0, -3.25]").unwrap();
        assert_eq!(v, vec![1.5, 2.0, -3.25]);
        assert_eq!(to_string(&v).unwrap(), "[1.5,2.0,-3.25]");
    }

    #[test]
    fn parse_nested() {
        let v = parse(r#"{"a": [1, {"b": "x\ny"}], "c": null, "d": true}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Null));
        assert_eq!(
            v.get("a").and_then(|a| a.as_seq()).map(|s| s.len()),
            Some(2)
        );
    }

    #[test]
    fn integral_floats_keep_point() {
        assert_eq!(to_string(&vec![1.0f64]).unwrap(), "[1.0]");
        let back: Vec<f64> = from_str("[1.0]").unwrap();
        assert_eq!(back, vec![1.0]);
    }
}
