//! # self-configurable-noc
//!
//! Umbrella crate for the reproduction of *Deep Reinforcement Learning for
//! Self-Configurable NoC* (SOCC 2020). Re-exports the four member crates:
//!
//! * [`noc_sim`] — the cycle-level NoC simulator.
//! * [`neural`] — the from-scratch neural-network library.
//! * [`rl`] — DQN/Double-DQN, prioritized replay, tabular Q-learning.
//! * [`noc_selfconf`] — the paper's contribution: the self-configuration
//!   layer (state/action/reward, `NocEnv`, controllers).
//!
//! See `README.md` for the project overview, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the reproduced evaluation.
//!
//! ```
//! use self_configurable_noc::noc_sim::{SimConfig, Simulator, TrafficPattern};
//!
//! # fn main() -> Result<(), self_configurable_noc::noc_sim::SimError> {
//! let mut sim = Simulator::new(
//!     SimConfig::default().with_size(4, 4).with_traffic(TrafficPattern::Uniform, 0.08),
//! )?;
//! let run = sim.run_classic(500, 2000, 2000);
//! assert!(run.window.avg_packet_latency > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use neural;
pub use noc_selfconf;
pub use noc_sim;
pub use rl;
