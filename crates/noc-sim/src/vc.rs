//! Virtual-channel state: input buffers and the upstream view of downstream
//! VC ownership and credits (credit-based flow control).

use crate::flit::{Flit, PacketId};
use crate::topology::Port;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A FIFO flit buffer of bounded capacity backing one input virtual channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VcBuffer {
    fifo: VecDeque<Flit>,
    capacity: usize,
}

impl VcBuffer {
    /// An empty buffer with room for `capacity` flits.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "VC buffer capacity must be positive");
        VcBuffer {
            fifo: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Number of buffered flits.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// Whether the buffer holds no flits.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Whether the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        self.fifo.len() >= self.capacity
    }

    /// Buffer capacity in flits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The flit at the head of the FIFO, if any.
    pub fn front(&self) -> Option<&Flit> {
        self.fifo.front()
    }

    /// Append a flit.
    ///
    /// # Panics
    /// Panics if the buffer is full — callers must respect credits, so an
    /// overflow indicates a flow-control bug.
    pub fn push(&mut self, flit: Flit) {
        assert!(
            !self.is_full(),
            "VC buffer overflow: flow-control violation"
        );
        self.fifo.push_back(flit);
    }

    /// Remove and return the head flit.
    pub fn pop(&mut self) -> Option<Flit> {
        self.fifo.pop_front()
    }

    /// Iterate over the buffered flits in FIFO order.
    pub fn iter(&self) -> impl Iterator<Item = &Flit> {
        self.fifo.iter()
    }

    /// Remove every flit of `packet`, in order, returning how many were
    /// removed. Fault handling uses this to purge condemned packets; normal
    /// operation never removes flits out of FIFO order.
    pub fn purge_packet(&mut self, packet: PacketId) -> usize {
        let before = self.fifo.len();
        self.fifo.retain(|f| f.packet != packet);
        before - self.fifo.len()
    }
}

/// One input virtual channel: its buffer plus the per-packet routing state
/// established by the head flit and reused by body/tail flits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputVc {
    /// Buffered flits.
    pub buf: VcBuffer,
    /// Output port assigned by route computation for the packet currently
    /// occupying this VC.
    pub route: Option<Port>,
    /// Downstream VC index granted by VC allocation.
    pub out_vc: Option<usize>,
    /// Packet occupying this VC, recorded at route computation. Fault
    /// handling uses it to find and release every VC a condemned packet
    /// holds along its path.
    pub owner: Option<PacketId>,
    /// When true, the occupying packet was found unroutable (every candidate
    /// output link dead): its flits are discarded as they arrive until the
    /// tail releases the VC.
    pub dropping: bool,
}

impl InputVc {
    /// A fresh idle VC with the given buffer capacity.
    pub fn new(capacity: usize) -> Self {
        InputVc {
            buf: VcBuffer::new(capacity),
            route: None,
            out_vc: None,
            owner: None,
            dropping: false,
        }
    }

    /// Whether the VC currently has a route but no output VC (waiting in the
    /// VC-allocation stage).
    pub fn awaiting_vc_alloc(&self) -> bool {
        self.route.is_some() && self.out_vc.is_none() && !self.buf.is_empty()
    }

    /// Whether the VC is fully allocated and has a flit ready to bid for the
    /// switch.
    pub fn ready_for_switch(&self) -> bool {
        self.route.is_some() && self.out_vc.is_some() && !self.buf.is_empty()
    }

    /// Clear per-packet state after the tail flit departs (or the packet is
    /// dropped).
    pub fn release(&mut self) {
        self.route = None;
        self.out_vc = None;
        self.owner = None;
        self.dropping = false;
    }

    /// Remove every flit of `packet` from the buffer, in order, returning
    /// how many were removed. Fault handling uses this to purge condemned
    /// packets; normal operation never removes flits out of FIFO order.
    pub fn purge_packet(&mut self, packet: PacketId) -> usize {
        self.buf.purge_packet(packet)
    }
}

/// The upstream router's bookkeeping for one VC at the downstream input port
/// reached through one of its output ports: who owns it and how many buffer
/// slots remain (credits).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutputVcState {
    /// Packet currently holding this downstream VC, if any.
    pub owner: Option<PacketId>,
    /// Free downstream buffer slots.
    pub credits: usize,
}

impl OutputVcState {
    /// Initial state: unowned, all `depth` slots free.
    pub fn new(depth: usize) -> Self {
        OutputVcState {
            owner: None,
            credits: depth,
        }
    }

    /// Whether a new packet may claim this VC.
    pub fn is_free(&self) -> bool {
        self.owner.is_none()
    }

    /// Whether a flit may be sent right now (owned or not, needs a credit).
    pub fn has_credit(&self) -> bool {
        self.credits > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, PacketId};
    use crate::topology::NodeId;

    fn flit(seq: u32, kind: FlitKind) -> Flit {
        Flit {
            packet: PacketId(1),
            kind,
            seq,
            src: NodeId(0),
            dst: NodeId(1),
            created_at: 0,
            injected_at: 0,
            vc: 0,
            hops: 0,
            vc_class: 0,
        }
    }

    #[test]
    fn buffer_is_fifo() {
        let mut b = VcBuffer::new(4);
        b.push(flit(0, FlitKind::Head));
        b.push(flit(1, FlitKind::Tail));
        assert_eq!(b.len(), 2);
        assert_eq!(b.pop().unwrap().seq, 0);
        assert_eq!(b.pop().unwrap().seq, 1);
        assert!(b.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "flow-control violation")]
    fn buffer_overflow_panics() {
        let mut b = VcBuffer::new(1);
        b.push(flit(0, FlitKind::Head));
        b.push(flit(1, FlitKind::Tail));
    }

    #[test]
    fn input_vc_stage_predicates() {
        let mut vc = InputVc::new(2);
        assert!(!vc.awaiting_vc_alloc() && !vc.ready_for_switch());
        vc.buf.push(flit(0, FlitKind::Head));
        assert!(!vc.awaiting_vc_alloc(), "no route yet");
        vc.route = Some(Port::East);
        assert!(vc.awaiting_vc_alloc());
        vc.out_vc = Some(1);
        assert!(vc.ready_for_switch());
        vc.release();
        assert!(vc.route.is_none() && vc.out_vc.is_none());
    }

    #[test]
    fn purge_removes_only_the_named_packet() {
        let mut vc = InputVc::new(4);
        vc.buf.push(flit(0, FlitKind::Head));
        vc.buf.push(flit(1, FlitKind::Tail));
        let mut other = flit(0, FlitKind::Single);
        other.packet = PacketId(2);
        vc.buf.push(other);
        assert_eq!(vc.purge_packet(PacketId(1)), 2);
        assert_eq!(vc.buf.len(), 1);
        assert_eq!(vc.buf.front().unwrap().packet, PacketId(2));
        assert_eq!(vc.purge_packet(PacketId(1)), 0);
    }

    #[test]
    fn output_vc_state_tracks_credits_and_ownership() {
        let mut s = OutputVcState::new(4);
        assert!(s.is_free() && s.has_credit());
        s.owner = Some(PacketId(9));
        assert!(!s.is_free());
        s.credits = 0;
        assert!(!s.has_credit());
    }
}
