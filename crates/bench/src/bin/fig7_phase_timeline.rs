//! Fig 7 — phase-trace adaptation timeline: per-epoch mean V/F level,
//! latency, and power for the DRL controller vs the threshold heuristic vs
//! static-max on the bursty phase trace.
//!
//! Expected shape: DRL (and, lagging, the threshold heuristic) drop levels
//! during the idle/low phases and raise them for the burst; static-max stays
//! pinned and burns energy through the idle phase.

use noc_bench::comparison::controllers_for;
use noc_bench::{configs, fmt, print_table, save_csv, save_markdown, Scale};
use noc_selfconf::run_controller;

fn main() {
    let scale = Scale::from_env();
    let sim = configs::mesh8().with_traffic_spec(configs::phase_trace());
    let epochs = scale.pick(64usize, 6);
    let epoch_cycles = 500;

    let mut factories = controllers_for(&configs::mesh8(), "mesh8", scale);
    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for (name, factory) in factories.iter_mut() {
        if *name == "static-min" || *name == "tabular-q" {
            continue; // keep the figure readable: 3 series as in the paper
        }
        let mut controller = factory();
        let run = run_controller(&sim, controller.as_mut(), epochs, epoch_cycles)
            .expect("valid configuration");
        for (i, (m, levels)) in run.epochs.iter().zip(&run.levels).enumerate() {
            let mean_level = levels.iter().map(|&l| l as f64).sum::<f64>() / levels.len() as f64;
            rows.push(vec![
                name.to_string(),
                i.to_string(),
                format!("{:.2}", mean_level),
                fmt(m.avg_packet_latency),
                fmt(m.energy_pj / m.cycles.max(1) as f64), // pJ/cycle (power)
                fmt(m.injection_rate),
            ]);
        }
        summary.push(vec![
            name.to_string(),
            fmt(run.aggregate.avg_latency),
            fmt(run.aggregate.energy_pj / 1e3),
            fmt(run.aggregate.edp / 1e6),
            fmt(run.aggregate.mean_level),
        ]);
    }
    let headers = [
        "controller",
        "epoch",
        "mean level",
        "epoch latency",
        "power (pJ/cycle)",
        "inj rate",
    ];
    let md = print_table("Fig 7 — phase-trace adaptation timeline", &headers, &rows);
    save_csv("fig7_phase_timeline", &headers, &rows);
    save_markdown("fig7_phase_timeline", &md);
    print_table(
        "Fig 7b — phase-trace aggregates",
        &[
            "controller",
            "avg latency",
            "energy (nJ)",
            "EDP (×10⁶)",
            "mean level",
        ],
        &summary,
    );
}
