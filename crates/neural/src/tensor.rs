//! A minimal dense matrix type for batched MLP arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A row-major `rows × cols` matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A zero matrix.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix { rows, cols, data }
    }

    /// A 1×n row vector.
    pub fn row(data: Vec<f32>) -> Self {
        let n = data.len();
        Matrix::from_vec(1, n, data)
    }

    /// Pack equal-length rows into one matrix (single allocation, one
    /// `memcpy` per row) — the batch-assembly primitive for inference.
    ///
    /// # Panics
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows<S: AsRef<[f32]>>(rows: &[S]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].as_ref().len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            let row = row.as_ref();
            assert_eq!(row.len(), cols, "from_rows rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix::from_vec(rows.len(), cols, data)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Set element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// The flat row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row as a slice.
    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ × rhs` without materializing the transpose.
    ///
    /// # Panics
    /// Panics if `self.rows != rhs.rows`.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "t_matmul row mismatch");
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for r in 0..self.rows {
            let arow = &self.data[r * self.cols..(r + 1) * self.cols];
            let brow = &rhs.data[r * rhs.cols..(r + 1) * rhs.cols];
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self × rhsᵀ` without materializing the transpose.
    ///
    /// # Panics
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_t column mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..rhs.rows {
                let brow = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                let dot: f32 = arow.iter().zip(brow).map(|(&a, &b)| a * b).sum();
                out.data[i * rhs.rows + j] = dot;
            }
        }
        out
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Add a row vector to every row (bias broadcast).
    ///
    /// # Panics
    /// Panics if `bias.len() != self.cols`.
    pub fn add_row(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (x, &b) in row.iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Sum over rows, producing a column-wise total (bias gradient).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row_slice(r)) {
                *o += x;
            }
        }
        out
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise product in place.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn hadamard_inplace(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>9.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 6 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn t_matmul_equals_transpose_then_matmul() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 4, &(0..12).map(|i| i as f32).collect::<Vec<_>>());
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_equals_matmul_with_transpose() {
        let a = m(2, 3, &[1.0, -2.0, 0.5, 3.0, 4.0, -1.0]);
        let b = m(4, 3, &(0..12).map(|i| i as f32 * 0.5).collect::<Vec<_>>());
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_is_involutive() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_row_broadcasts_bias() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row(&[1.0, 2.0, 3.0]);
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn col_sums_sum_rows() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.col_sums(), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let mut a = m(1, 3, &[1.0, 2.0, 3.0]);
        a.hadamard_inplace(&m(1, 3, &[2.0, 0.5, -1.0]));
        assert_eq!(a.as_slice(), &[2.0, 1.0, -3.0]);
    }

    #[test]
    fn map_inplace_applies_function() {
        let mut a = m(1, 3, &[-1.0, 0.0, 2.0]);
        a.map_inplace(|x| x.max(0.0));
        assert_eq!(a.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let _ = Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_vec_length_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }
}
