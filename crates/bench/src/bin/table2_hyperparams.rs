//! Table 2 — DRL hyper-parameters.

use noc_bench::{configs, print_table, save_markdown, Scale};

fn main() {
    let dqn = configs::dqn_default(7);
    let env = configs::train_env(configs::mesh8(), 7);
    let train = configs::train_budget(Scale::Full, 7);
    let rows = vec![
        vec![
            "Network".into(),
            format!("MLP {:?} (ReLU hidden, linear head)", dqn.hidden),
        ],
        vec![
            "State".into(),
            format!(
                "3 features × {} regions + 3 global = {} dims",
                env.sim.regions_x * env.sim.regions_y,
                3 * env.sim.regions_x * env.sim.regions_y + 3
            ),
        ],
        vec![
            "Actions".into(),
            format!(
                "{} (per-region level ±1 / hold)",
                env.action_space.num_actions()
            ),
        ],
        vec!["Discount γ".into(), format!("{}", dqn.gamma)],
        vec!["Optimizer".into(), format!("Adam, lr {}", dqn.lr)],
        vec!["Loss".into(), format!("{:?}", dqn.loss)],
        vec!["Batch size".into(), dqn.batch_size.to_string()],
        vec![
            "Replay".into(),
            format!(
                "{} transitions (min {})",
                dqn.replay_capacity, dqn.min_replay
            ),
        ],
        vec!["Target sync".into(), format!("{:?}", dqn.target_sync)],
        vec!["Double DQN".into(), dqn.double.to_string()],
        vec!["ε schedule".into(), format!("{:?}", train.epsilon)],
        vec![
            "Episodes".into(),
            format!("{} × {} epochs", train.episodes, train.max_steps),
        ],
        vec!["Epoch".into(), format!("{} cycles", env.epoch_cycles)],
        vec![
            "Reward".into(),
            format!(
                "{}·tput − {}·latencỹ − {}·energỹ − {}·[lat>{:?}]",
                env.reward.throughput_weight,
                env.reward.latency_weight,
                env.reward.energy_weight,
                env.reward.violation_penalty,
                env.reward.latency_limit
            ),
        ],
    ];
    let md = print_table(
        "Table 2 — DRL hyper-parameters",
        &["Parameter", "Value"],
        &rows,
    );
    save_markdown("table2_hyperparams", &md);
}
