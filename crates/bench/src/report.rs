//! Machine-readable performance tracking: the `noc-cli bench` subsystem.
//!
//! The ROADMAP's north star is a system that runs "as fast as the hardware
//! allows" — which is unfalsifiable without machine-readable perf history.
//! This module provides it:
//!
//! * [`run_suite`] executes a fixed set of timed workloads (cycle-level
//!   simulation on several mesh/pattern points plus torus and faulted-fabric
//!   scenarios, batched DQN training steps,
//!   full `NocEnv` control epochs, and a parallel sweep-grid fan-out),
//!   repeats each one `repeats` times, and records the **median** and
//!   **interquartile range** of the wall-clock cost plus derived rates
//!   (cycles/sec, flits/sec, steps/sec, ...).
//! * [`BenchReport`] serializes to a deterministic-schema JSON artifact,
//!   conventionally named `BENCH_<git-sha>.json`, so perf history can be
//!   diffed across commits.
//! * [`compare`] diffs two reports workload-by-workload and flags median
//!   regressions beyond a tolerance — the CI perf gate.
//!
//! Wall-clock numbers are inherently machine-dependent; reports record the
//! median of several repeats to tame scheduler noise. The CI gate applies a
//! **per-workload** tolerance when the baseline carries one (fast workloads
//! are noisier than slow ones, so a single global knob either lets slow
//! regressions through or flakes on fast points), falling back to a generous
//! global (30 %) tolerance otherwise. A baseline workload may additionally
//! carry an absolute `target_units_per_sec` floor — the candidate fails the
//! gate outright when it runs below it, regardless of relative deltas, which
//! is how the "8x8 uniform\@0.10 sustains ≥ 100k cycles/sec" promise is held.
//!
//! [`append_trajectory`] distils each gated run to one CSV line (sha, date,
//! headline cycles/sec) appended to `results/trajectory.csv`, giving a
//! commit-over-commit perf history that survives artifact expiry.

use noc_selfconf::{zoo, ActionSpace, NocEnv, NocEnvConfig, RewardConfig, SweepGrid};
use noc_sim::{
    FaultPlan, InjectionProcess, RoutingAlgorithm, SimConfig, Simulator, SwitchArb, Topology,
    TopologyKind, TrafficPattern, WorkloadSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::{DqnAgent, DqnConfig, Environment, LearningAgent, Transition};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::time::Instant;

/// Version stamped into every report; bump on schema changes so `compare`
/// can refuse apples-to-oranges diffs.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Default regression tolerance of the CI gate: a workload regresses when
/// its median wall-clock grows by more than this fraction.
pub const DEFAULT_TOLERANCE: f64 = 0.30;

/// Budget knobs for one suite run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchSuiteConfig {
    /// Repeats per workload (median/IQR are taken over these).
    pub repeats: usize,
    /// Simulated cycles per simulator-workload repeat.
    pub sim_cycles: u64,
    /// Warmup cycles before a simulator workload is timed.
    pub sim_warmup: u64,
    /// DQN training steps per repeat.
    pub dqn_steps: usize,
    /// Batched Q-value evaluations per repeat.
    pub dqn_predicts: usize,
    /// `NocEnv` control epochs per repeat.
    pub env_epochs: usize,
    /// Measurement-window cycles of the sweep-grid workload.
    pub sweep_measure: u64,
}

impl BenchSuiteConfig {
    /// Paper-quality budgets (a few minutes).
    pub fn full() -> Self {
        BenchSuiteConfig {
            repeats: 7,
            sim_cycles: 20_000,
            sim_warmup: 500,
            dqn_steps: 300,
            dqn_predicts: 2_000,
            env_epochs: 10,
            sweep_measure: 1_000,
        }
    }

    /// Smoke budgets (a few seconds) — `noc-cli bench --quick` and CI.
    pub fn quick() -> Self {
        BenchSuiteConfig {
            repeats: 3,
            sim_cycles: 3_000,
            sim_warmup: 200,
            dqn_steps: 50,
            dqn_predicts: 300,
            env_epochs: 3,
            sweep_measure: 300,
        }
    }
}

/// One measured workload of the suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadResult {
    /// Stable identifier, e.g. `sim/8x8/uniform/r0.10` — the key `compare`
    /// matches on.
    pub name: String,
    /// Human-readable scenario metadata (mesh, pattern, budget, batch, ...).
    pub params: String,
    /// Number of timed repeats.
    pub repeats: usize,
    /// Median wall-clock per repeat, nanoseconds.
    pub median_ns: u64,
    /// Interquartile range of the repeat wall-clocks, nanoseconds.
    pub iqr_ns: u64,
    /// Work units executed per repeat.
    pub units: u64,
    /// What one unit is ("cycles", "train_steps", "epochs", ...).
    pub unit: String,
    /// Units per second at the median repeat.
    pub units_per_sec: f64,
    /// Flits delivered per second (simulator workloads only).
    pub flits_per_sec: Option<f64>,
    /// Per-workload regression tolerance. Set in curated baselines; when
    /// present it overrides the global `--tolerance` for this workload in
    /// [`compare`]. Fresh suite runs leave it unset.
    #[serde(default)]
    pub tolerance: Option<f64>,
    /// Absolute floor on the candidate's `units_per_sec`. Set in curated
    /// baselines; a candidate below the floor fails the gate even if its
    /// relative delta is within tolerance. Fresh suite runs leave it unset.
    #[serde(default)]
    pub target_units_per_sec: Option<f64>,
}

/// The serialized artifact: one suite run on one commit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema version ([`BENCH_SCHEMA_VERSION`] at write time).
    pub schema_version: u32,
    /// Git commit the binary was built from (`unknown` outside a checkout).
    pub git_sha: String,
    /// Suite scale the run used (`quick` or `full`).
    pub mode: String,
    /// The budget knobs the run used.
    pub config: BenchSuiteConfig,
    /// Per-workload measurements, in fixed suite order.
    pub workloads: Vec<WorkloadResult>,
}

impl BenchReport {
    /// Conventional artifact file name for this report.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.git_sha)
    }

    /// Render a human-readable summary table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>10} {:>14} {:>14}",
            "workload", "median", "iqr", "rate", "flits/sec"
        );
        for w in &self.workloads {
            let _ = writeln!(
                out,
                "{:<28} {:>12} {:>10} {:>14} {:>14}",
                w.name,
                fmt_ns(w.median_ns),
                fmt_ns(w.iqr_ns),
                format!("{:.0} {}/s", w.units_per_sec, short_unit(&w.unit)),
                w.flits_per_sec
                    .map_or_else(|| "—".to_string(), |f| format!("{f:.0}")),
            );
        }
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn short_unit(unit: &str) -> &str {
    match unit {
        "cycles" => "cyc",
        "train_steps" => "step",
        "predict_batches" => "batch",
        "epochs" => "epoch",
        "scenarios" => "scen",
        other => other,
    }
}

/// Median and interquartile range of raw samples (in place sort).
pub fn median_iqr(samples: &mut [u64]) -> (u64, u64) {
    assert!(!samples.is_empty(), "median of an empty sample set");
    samples.sort_unstable();
    let n = samples.len();
    let median = if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2
    };
    // Quartiles via floor-of-rank on the sorted samples — a coarse but
    // monotonic spread estimate that needs no interpolation; for n <= 2 the
    // IQR collapses to 0.
    let q1 = samples[(n - 1) / 4];
    let q3 = samples[(3 * (n - 1)) / 4];
    (median, q3.saturating_sub(q1))
}

/// Headline workloads distilled into the trajectory CSV, in column order:
/// the loaded and idle-heavy points at both tracked fabric sizes.
pub const TRAJECTORY_WORKLOADS: [&str; 4] = [
    "sim/8x8/uniform/r0.10",
    "sim/8x8/uniform/r0.01",
    "sim/16x16/uniform/r0.10",
    "sim/16x16/uniform/r0.01",
];

/// Header line of `trajectory.csv` (no trailing newline).
pub fn trajectory_header() -> String {
    let mut out = String::from("sha,date");
    for name in TRAJECTORY_WORKLOADS {
        let _ = write!(out, ",{name}");
    }
    out
}

/// One trajectory row for `report` (no trailing newline): commit sha, UTC
/// date, then cycles/sec for each headline workload (empty cell when the
/// report lacks the workload, so schema drift stays visible instead of
/// shifting columns).
pub fn trajectory_line(report: &BenchReport) -> String {
    let mut out = format!("{},{}", report.git_sha, utc_date_string());
    for name in TRAJECTORY_WORKLOADS {
        match report.workloads.iter().find(|w| w.name == name) {
            Some(w) => {
                let _ = write!(out, ",{:.0}", w.units_per_sec);
            }
            None => out.push(','),
        }
    }
    out
}

/// Append `report`'s trajectory row to the CSV at `path`, writing the
/// header first when the file is missing or empty.
///
/// # Errors
/// Propagates filesystem errors from opening or writing the file.
pub fn append_trajectory(report: &BenchReport, path: &std::path::Path) -> std::io::Result<()> {
    use std::io::Write as _;
    let needs_header = std::fs::metadata(path).map_or(true, |m| m.len() == 0);
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    if needs_header {
        writeln!(file, "{}", trajectory_header())?;
    }
    writeln!(file, "{}", trajectory_line(report))
}

/// Today's UTC date as `YYYY-MM-DD`, from the system clock. Uses the
/// days-to-civil conversion of Hinnant's date algorithms; no external
/// time crate needed for a date stamp.
fn utc_date_string() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

/// The git commit of the working tree, or `unknown`.
pub fn detect_git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Run `body` `repeats` times; the body times its own measured region (so
/// per-repeat setup/warmup stays outside the sample) and returns
/// `(elapsed_ns, units, flits)`. Returns `(median_ns, iqr_ns, units,
/// flits)`, with `units`/`flits` from the last repeat (workloads are
/// deterministic, so every repeat does identical work).
fn timed<F>(repeats: usize, mut body: F) -> (u64, u64, u64, Option<u64>)
where
    F: FnMut() -> (u64, u64, Option<u64>),
{
    let mut samples = Vec::with_capacity(repeats);
    let mut units = 0;
    let mut flits = None;
    for _ in 0..repeats {
        let (dt, u, f) = body();
        samples.push(dt.max(1)); // guard div-by-zero on sub-ns clocks
        units = u;
        flits = f;
    }
    let (median, iqr) = median_iqr(&mut samples);
    (median, iqr, units, flits)
}

fn push_result(
    out: &mut Vec<WorkloadResult>,
    name: &str,
    params: String,
    unit: &str,
    repeats: usize,
    measured: (u64, u64, u64, Option<u64>),
) {
    let (median_ns, iqr_ns, units, flits) = measured;
    let secs = median_ns as f64 / 1e9;
    out.push(WorkloadResult {
        name: name.to_string(),
        params,
        repeats,
        median_ns,
        iqr_ns,
        units,
        unit: unit.to_string(),
        units_per_sec: units as f64 / secs,
        flits_per_sec: flits.map(|f| f as f64 / secs),
        tolerance: None,
        target_units_per_sec: None,
    });
}

/// Run the full suite at the given budgets. `mode` is recorded verbatim in
/// the report (`"quick"` / `"full"` from the CLI).
pub fn run_suite(config: BenchSuiteConfig, mode: &str, git_sha: String) -> BenchReport {
    assert!(config.repeats > 0, "bench suite needs at least one repeat");
    let mut workloads = Vec::new();

    // --- Cycle-level simulator throughput across mesh sizes and patterns.
    let sim_points: &[(usize, TrafficPattern, f64)] = &[
        (4, TrafficPattern::Uniform, 0.10),
        (4, TrafficPattern::Transpose, 0.10),
        (8, TrafficPattern::Uniform, 0.10),
        (8, TrafficPattern::Transpose, 0.10),
        (8, TrafficPattern::Uniform, 0.25),
        // Idle-heavy point: at 0.01 flits/node/cycle most routers are empty
        // most cycles, so this workload tracks the active-router worklist
        // (idle routers must cost ~nothing, not a full pipeline walk).
        (8, TrafficPattern::Uniform, 0.01),
    ];
    for (width, pattern, rate) in sim_points {
        let name = format!("sim/{width}x{width}/{}/r{rate:.2}", pattern.name());
        let params = format!(
            "{width}x{width} mesh, {} traffic at {rate} flits/node/cycle, \
             {} warmup + {} timed cycles",
            pattern.name(),
            config.sim_warmup,
            config.sim_cycles
        );
        let cfg = SimConfig::default()
            .with_size(*width, *width)
            .with_traffic(pattern.clone(), *rate);
        let measured = timed(config.repeats, || {
            // Fresh simulator per repeat so repeats are identical work;
            // construction and warmup stay outside the timed region.
            let mut sim = Simulator::new(cfg.clone()).expect("valid bench config");
            sim.run(config.sim_warmup);
            let flits0 = sim.stats().ejected_flits;
            let t0 = Instant::now();
            sim.run(config.sim_cycles);
            let dt = t0.elapsed().as_nanos() as u64;
            let flits = sim.stats().ejected_flits - flits0;
            (dt, config.sim_cycles, Some(flits))
        });
        push_result(
            &mut workloads,
            &name,
            params,
            "cycles",
            config.repeats,
            measured,
        );
    }

    // --- Torus fabric: the wrap-aware scenario family (dateline VC
    // partitioning, wrap-link traversal, torus routing) at the same size
    // and load as the 8x8 mesh point, so mesh-vs-torus cost stays visible
    // in the perf history. One dimension-ordered point and one
    // minimal-adaptive point under link faults (the adaptive fault path).
    {
        let cfg = SimConfig::default()
            .with_topology(TopologyKind::Torus)
            .with_routing(RoutingAlgorithm::TorusDor)
            .with_traffic(TrafficPattern::Uniform, 0.10);
        let measured = timed(config.repeats, || {
            let mut sim = Simulator::new(cfg.clone()).expect("valid bench config");
            sim.run(config.sim_warmup);
            let flits0 = sim.stats().ejected_flits;
            let t0 = Instant::now();
            sim.run(config.sim_cycles);
            let dt = t0.elapsed().as_nanos() as u64;
            let flits = sim.stats().ejected_flits - flits0;
            (dt, config.sim_cycles, Some(flits))
        });
        push_result(
            &mut workloads,
            "sim/8x8/torus/uniform/r0.10",
            format!(
                "8x8 torus, torus-DOR routing, uniform traffic at 0.1 \
                 flits/node/cycle, {} warmup + {} timed cycles",
                config.sim_warmup, config.sim_cycles
            ),
            "cycles",
            config.repeats,
            measured,
        );

        let plan = FaultPlan::random_links(&Topology::torus(8, 8), 2, 0x70F5, 0, None);
        let cfg = SimConfig::default()
            .with_topology(TopologyKind::Torus)
            .with_routing(RoutingAlgorithm::TorusMinAdaptive)
            .with_traffic(TrafficPattern::Uniform, 0.10)
            .with_faults(plan);
        let measured = timed(config.repeats, || {
            let mut sim = Simulator::new(cfg.clone()).expect("valid bench config");
            sim.run(config.sim_warmup);
            let flits0 = sim.stats().ejected_flits;
            let t0 = Instant::now();
            sim.run(config.sim_cycles);
            let dt = t0.elapsed().as_nanos() as u64;
            let flits = sim.stats().ejected_flits - flits0;
            (dt, config.sim_cycles, Some(flits))
        });
        push_result(
            &mut workloads,
            "sim/8x8/torus/uniform/r0.10/faults2",
            format!(
                "8x8 torus, minimal-adaptive routing, 2 permanent link faults, \
                 uniform traffic at 0.1 flits/node/cycle, {} warmup + {} timed cycles",
                config.sim_warmup, config.sim_cycles
            ),
            "cycles",
            config.repeats,
            measured,
        );
    }

    // --- Degraded fabric: the fault path (liveness filter in route
    // computation, adaptive rerouting, drop accounting) on an 8x8 mesh with
    // four permanent link faults, so the perf trajectory tracks faulted
    // operation alongside the healthy-mesh workloads above.
    {
        let plan = FaultPlan::random_links(&Topology::mesh(8, 8), 4, 0xFA17, 0, None);
        let cfg = SimConfig::default()
            .with_traffic(TrafficPattern::Uniform, 0.10)
            .with_routing(RoutingAlgorithm::OddEven)
            .with_faults(plan);
        let measured = timed(config.repeats, || {
            let mut sim = Simulator::new(cfg.clone()).expect("valid bench config");
            sim.run(config.sim_warmup);
            let flits0 = sim.stats().ejected_flits;
            let t0 = Instant::now();
            sim.run(config.sim_cycles);
            let dt = t0.elapsed().as_nanos() as u64;
            let flits = sim.stats().ejected_flits - flits0;
            (dt, config.sim_cycles, Some(flits))
        });
        push_result(
            &mut workloads,
            "sim/8x8/uniform/r0.10/faults4",
            format!(
                "8x8 mesh, odd-even routing, 4 permanent link faults, uniform traffic \
                 at 0.1 flits/node/cycle, {} warmup + {} timed cycles",
                config.sim_warmup, config.sim_cycles
            ),
            "cycles",
            config.repeats,
            measured,
        );
    }

    // --- Bursty workload: the composable-workload path (per-node on/off
    // process state, phase lookup) on an 8x8 mesh at the same mean load as
    // the uniform r0.10 point, so the perf trajectory tracks non-Bernoulli
    // injection alongside the classic workloads.
    {
        let workload = WorkloadSpec::stationary(
            TrafficPattern::Uniform,
            InjectionProcess::Bursty {
                rate_on: 0.2,
                switch: 0.02,
            },
        );
        let cfg = SimConfig::default().with_workload(workload.clone());
        let measured = timed(config.repeats, || {
            let mut sim = Simulator::new(cfg.clone()).expect("valid bench config");
            sim.run(config.sim_warmup);
            let flits0 = sim.stats().ejected_flits;
            let t0 = Instant::now();
            sim.run(config.sim_cycles);
            let dt = t0.elapsed().as_nanos() as u64;
            let flits = sim.stats().ejected_flits - flits0;
            (dt, config.sim_cycles, Some(flits))
        });
        push_result(
            &mut workloads,
            "sim/8x8/uniform/bursty",
            format!(
                "8x8 mesh, bursty on/off uniform traffic ({}, mean 0.1 \
                 flits/node/cycle), {} warmup + {} timed cycles",
                workload.label(),
                config.sim_warmup,
                config.sim_cycles
            ),
            "cycles",
            config.repeats,
            measured,
        );
    }

    // --- Big fabrics: 16x16 and 32x32 meshes and tori, serial and
    // partitioned. The serial 16x16 point is the baseline the partitioned
    // points are compared against (the partition-speedup criterion); the
    // p4 points exercise the tile pool, boundary exchange, and log-replay
    // stats commit at the scale where parallelism pays off.
    {
        let time_cfg = |cfg: &SimConfig| {
            timed(config.repeats, || {
                let mut sim = Simulator::new(cfg.clone()).expect("valid bench config");
                sim.run(config.sim_warmup);
                let flits0 = sim.stats().ejected_flits;
                let t0 = Instant::now();
                sim.run(config.sim_cycles);
                let dt = t0.elapsed().as_nanos() as u64;
                let flits = sim.stats().ejected_flits - flits0;
                (dt, config.sim_cycles, Some(flits))
            })
        };

        let cfg = SimConfig::default()
            .with_size(16, 16)
            .with_traffic(TrafficPattern::Uniform, 0.10);
        let measured = time_cfg(&cfg);
        push_result(
            &mut workloads,
            "sim/16x16/uniform/r0.10",
            format!(
                "16x16 mesh, XY routing, uniform traffic at 0.1 flits/node/cycle, \
                 serial stepping, {} warmup + {} timed cycles",
                config.sim_warmup, config.sim_cycles
            ),
            "cycles",
            config.repeats,
            measured,
        );

        // The large-fabric idle-heavy point: 256 routers at 0.01
        // flits/node/cycle is where worklist skipping pays the most, since
        // the active set is a small fraction of the fabric each cycle.
        let low = SimConfig::default()
            .with_size(16, 16)
            .with_traffic(TrafficPattern::Uniform, 0.01);
        let measured = time_cfg(&low);
        push_result(
            &mut workloads,
            "sim/16x16/uniform/r0.01",
            format!(
                "16x16 mesh, XY routing, uniform traffic at 0.01 flits/node/cycle \
                 (idle-heavy), serial stepping, {} warmup + {} timed cycles",
                config.sim_warmup, config.sim_cycles
            ),
            "cycles",
            config.repeats,
            measured,
        );

        let measured = time_cfg(&cfg.clone().with_partitions(4));
        push_result(
            &mut workloads,
            "sim/16x16/uniform/r0.10/p4",
            format!(
                "16x16 mesh, XY routing, uniform traffic at 0.1 flits/node/cycle, \
                 4 partitions, {} warmup + {} timed cycles",
                config.sim_warmup, config.sim_cycles
            ),
            "cycles",
            config.repeats,
            measured,
        );

        let cfg = SimConfig::default()
            .with_size(16, 16)
            .with_topology(TopologyKind::Torus)
            .with_routing(RoutingAlgorithm::TorusDor)
            .with_traffic(TrafficPattern::Uniform, 0.10)
            .with_partitions(4);
        let measured = time_cfg(&cfg);
        push_result(
            &mut workloads,
            "sim/16x16/torus/uniform/r0.10/p4",
            format!(
                "16x16 torus, torus-DOR routing, uniform traffic at 0.1 \
                 flits/node/cycle, 4 partitions, {} warmup + {} timed cycles",
                config.sim_warmup, config.sim_cycles
            ),
            "cycles",
            config.repeats,
            measured,
        );

        let plan = FaultPlan::random_links(&Topology::mesh(16, 16), 4, 0xB16F, 0, None);
        let cfg = SimConfig::default()
            .with_size(16, 16)
            .with_traffic(TrafficPattern::Uniform, 0.10)
            .with_routing(RoutingAlgorithm::OddEven)
            .with_faults(plan)
            .with_partitions(4);
        let measured = time_cfg(&cfg);
        push_result(
            &mut workloads,
            "sim/16x16/uniform/r0.10/faults4/p4",
            format!(
                "16x16 mesh, odd-even routing, 4 permanent link faults, uniform \
                 traffic at 0.1 flits/node/cycle, 4 partitions, {} warmup + {} \
                 timed cycles",
                config.sim_warmup, config.sim_cycles
            ),
            "cycles",
            config.repeats,
            measured,
        );

        let cfg = SimConfig::default()
            .with_size(32, 32)
            .with_traffic(TrafficPattern::Uniform, 0.10)
            .with_partitions(4);
        let measured = time_cfg(&cfg);
        push_result(
            &mut workloads,
            "sim/32x32/uniform/r0.10/p4",
            format!(
                "32x32 mesh, XY routing, uniform traffic at 0.1 flits/node/cycle, \
                 4 partitions, {} warmup + {} timed cycles",
                config.sim_warmup, config.sim_cycles
            ),
            "cycles",
            config.repeats,
            measured,
        );

        let cfg = SimConfig::default()
            .with_size(32, 32)
            .with_topology(TopologyKind::Torus)
            .with_routing(RoutingAlgorithm::TorusDor)
            .with_traffic(TrafficPattern::Uniform, 0.10)
            .with_partitions(4);
        let measured = time_cfg(&cfg);
        push_result(
            &mut workloads,
            "sim/32x32/torus/uniform/r0.10/p4",
            format!(
                "32x32 torus, torus-DOR routing, uniform traffic at 0.1 \
                 flits/node/cycle, 4 partitions, {} warmup + {} timed cycles",
                config.sim_warmup, config.sim_cycles
            ),
            "cycles",
            config.repeats,
            measured,
        );
    }

    // --- Wormhole fabric: long packets under per-packet switch arbitration,
    // the flow-control path where a head flit holds its output port until
    // the tail releases it. One healthy 8-flit point, and a table-routed
    // twin under permanent link faults (k-path table build + fault
    // recompute + route-hold interplay), so wormhole cost stays visible in
    // the perf history next to the legacy per-flit workloads.
    {
        let time_cfg = |cfg: &SimConfig| {
            timed(config.repeats, || {
                let mut sim = Simulator::new(cfg.clone()).expect("valid bench config");
                sim.run(config.sim_warmup);
                let flits0 = sim.stats().ejected_flits;
                let t0 = Instant::now();
                sim.run(config.sim_cycles);
                let dt = t0.elapsed().as_nanos() as u64;
                let flits = sim.stats().ejected_flits - flits0;
                (dt, config.sim_cycles, Some(flits))
            })
        };

        let cfg = SimConfig::default()
            .with_traffic(TrafficPattern::Uniform, 0.05)
            .with_packet_len(8)
            .with_switch_arb(SwitchArb::PerPacket);
        let measured = time_cfg(&cfg);
        push_result(
            &mut workloads,
            "sim/8x8/uniform/r0.05/len8",
            format!(
                "8x8 mesh, XY routing, 8-flit packets under per-packet wormhole \
                 arbitration, uniform traffic at 0.05 flits/node/cycle, {} warmup \
                 + {} timed cycles",
                config.sim_warmup, config.sim_cycles
            ),
            "cycles",
            config.repeats,
            measured,
        );

        let plan = FaultPlan::random_links(&Topology::mesh(8, 8), 2, 0x7AB1E, 0, None);
        let cfg = SimConfig::default()
            .with_traffic(TrafficPattern::Uniform, 0.05)
            .with_packet_len(8)
            .with_switch_arb(SwitchArb::PerPacket)
            .with_routing(RoutingAlgorithm::Table)
            .with_faults(plan);
        let measured = time_cfg(&cfg);
        push_result(
            &mut workloads,
            "sim/8x8/uniform/r0.05/len8/table/faults2",
            format!(
                "8x8 mesh, table-driven k-path routing with 2 permanent link \
                 faults, 8-flit packets under per-packet wormhole arbitration, \
                 uniform traffic at 0.05 flits/node/cycle, {} warmup + {} timed \
                 cycles",
                config.sim_warmup, config.sim_cycles
            ),
            "cycles",
            config.repeats,
            measured,
        );
    }

    // --- Batched DQN forward/backward (the training inner loop).
    {
        let mut agent = bench_agent();
        let mut rng = StdRng::seed_from_u64(1);
        // Prime replay + Adam state outside the timed region.
        agent.train_step(&mut rng);
        let steps = config.dqn_steps as u64;
        let measured = timed(config.repeats, || {
            let t0 = Instant::now();
            for _ in 0..steps {
                agent.train_step(&mut rng);
            }
            (t0.elapsed().as_nanos() as u64, steps, None)
        });
        push_result(
            &mut workloads,
            "dqn/train_step/batch32",
            format!(
                "15-64-64-9 MLP, batch 32, double-DQN, {} train steps per repeat",
                config.dqn_steps
            ),
            "train_steps",
            config.repeats,
            measured,
        );

        let states: Vec<Vec<f32>> = (0..32)
            .map(|i| (0..15).map(|j| ((i * 3 + j) % 11) as f32 / 11.0).collect())
            .collect();
        let batches = config.dqn_predicts as u64;
        let measured = timed(config.repeats, || {
            let mut acc = 0.0f32;
            let t0 = Instant::now();
            for _ in 0..batches {
                let q = agent.q_values_batch(&states);
                acc += q.get(0, 0);
            }
            let dt = t0.elapsed().as_nanos() as u64;
            std::hint::black_box(acc);
            (dt, batches, None)
        });
        push_result(
            &mut workloads,
            "dqn/predict/batch32",
            format!(
                "15-64-64-9 MLP, 32-state batched Q evaluation, {} batches per repeat",
                config.dqn_predicts
            ),
            "predict_batches",
            config.repeats,
            measured,
        );
    }

    // --- Full NocEnv control epoch (simulate + encode + reward).
    {
        let sim = SimConfig::default()
            .with_size(4, 4)
            .with_traffic(TrafficPattern::Uniform, 0.1)
            .with_regions(2, 2);
        let mut env = NocEnv::new(NocEnvConfig {
            action_space: ActionSpace::PerRegionDelta {
                num_regions: 4,
                num_levels: 4,
            },
            sim,
            epoch_cycles: 500,
            epochs_per_episode: usize::MAX / 2, // never terminates mid-bench
            reward: RewardConfig::default(),
            traffic_menu: vec![],
            seed: 0,
        })
        .expect("valid bench environment");
        env.reset();
        let epochs = config.env_epochs as u64;
        let mut action = 0usize;
        let measured = timed(config.repeats, || {
            let t0 = Instant::now();
            for _ in 0..epochs {
                action = (action + 1) % env.num_actions();
                std::hint::black_box(env.step(action));
            }
            (t0.elapsed().as_nanos() as u64, epochs, None)
        });
        push_result(
            &mut workloads,
            "env/epoch/4x4",
            format!(
                "4x4 mesh, 2x2 regions, 500-cycle epochs, {} epochs per repeat",
                config.env_epochs
            ),
            "epochs",
            config.repeats,
            measured,
        );
    }

    // --- Sweep-grid fan-out (the parallel scenario engine end to end).
    {
        let grid = SweepGrid {
            sizes: vec![(4, 4), (8, 8)],
            patterns: vec![TrafficPattern::Uniform],
            rates: vec![0.05, 0.10],
            routings: vec![RoutingAlgorithm::Xy],
            levels: vec![None],
            warmup: config.sweep_measure / 4,
            measure: config.sweep_measure,
            drain: config.sweep_measure,
            base_seed: 7,
            ..SweepGrid::default()
        };
        let threads = noc_selfconf::default_threads();
        let scenarios = grid.len() as u64;
        let measured = timed(config.repeats, || {
            let t0 = Instant::now();
            let report = grid.run(threads).expect("valid bench grid");
            let dt = t0.elapsed().as_nanos() as u64;
            std::hint::black_box(report.aggregate.num_scenarios);
            (dt, scenarios, None)
        });
        push_result(
            &mut workloads,
            "sweep/fanout/4scenarios",
            format!(
                "4x4+8x8 uniform at 0.05/0.10, {} measure cycles, {threads} threads",
                config.sweep_measure
            ),
            "scenarios",
            config.repeats,
            measured,
        );
    }

    // --- Warm-cache sweep service (the daemon's data path): resolve a
    // full grid against a pre-warmed in-memory result cache. This times
    // key derivation + single-flight lookup + result clone + report
    // assembly with zero simulation, i.e. the marginal cost of a cache-hit
    // job in `noc-cli serve`.
    {
        let grid = SweepGrid {
            sizes: vec![(4, 4)],
            patterns: vec![TrafficPattern::Uniform, TrafficPattern::Transpose],
            rates: vec![0.02, 0.04, 0.06, 0.08],
            routings: vec![RoutingAlgorithm::Xy],
            levels: vec![None],
            warmup: config.sweep_measure / 4,
            measure: config.sweep_measure,
            drain: config.sweep_measure,
            base_seed: 11,
            ..SweepGrid::default()
        };
        let threads = noc_selfconf::default_threads();
        let scenarios = grid.len() as u64;
        let cache = noc_selfconf::ResultCache::in_memory();
        // Warm every key outside the timed region.
        grid.run_cached(threads, &cache).expect("valid bench grid");
        let measured = timed(config.repeats, || {
            let t0 = Instant::now();
            let report = grid.run_cached(threads, &cache).expect("valid bench grid");
            let dt = t0.elapsed().as_nanos() as u64;
            std::hint::black_box(report.aggregate.num_scenarios);
            (dt, scenarios, None)
        });
        push_result(
            &mut workloads,
            "serve/cache-hit",
            format!(
                "8-scenario 4x4 grid resolved from a warm in-memory result \
                 cache, {} measure cycles, {threads} threads",
                config.sweep_measure
            ),
            "scenarios",
            config.repeats,
            measured,
        );
    }

    // --- Tournament evaluator (policy deserialization + controller runs
    // over the generalization matrix). Two micro-budget policies are
    // trained outside the timed region; the timed body scores the full
    // 2-policy x 2-family matrix, i.e. the per-cell cost of
    // `noc-cli tournament`.
    {
        let base = SimConfig::default().with_size(4, 4).with_regions(2, 2);
        let grid = zoo::ZooGrid {
            base: base.clone(),
            variants: vec![zoo::DqnVariant {
                name: "bench".into(),
                dqn: DqnConfig {
                    hidden: vec![16],
                    batch_size: 8,
                    min_replay: 8,
                    ..DqnConfig::default()
                },
            }],
            families: vec![
                zoo::ScenarioFamily::parse("mesh/uniform/r0.1").expect("family parses"),
                zoo::ScenarioFamily::parse("torus/uniform/r0.1/f1").expect("family parses"),
            ],
            train: rl::TrainConfig {
                episodes: 1,
                max_steps: 4,
                ..rl::TrainConfig::default()
            },
            epoch_cycles: 100,
            epochs_per_episode: 4,
            base_seed: 17,
        };
        let policies: Vec<(String, zoo::PolicyArtifact)> = (0..grid.len())
            .map(|i| {
                (
                    format!("bench{i}"),
                    zoo::train_member(&grid, i).expect("bench policy trains"),
                )
            })
            .collect();
        let tournament = zoo::TournamentConfig {
            base,
            families: grid.families.clone(),
            epochs: config.env_epochs,
            epoch_cycles: 200,
            reward: RewardConfig::default(),
            base_seed: 17,
        };
        let threads = noc_selfconf::default_threads();
        let cells = (policies.len() * tournament.families.len()) as u64;
        let measured = timed(config.repeats, || {
            let t0 = Instant::now();
            let report = zoo::tournament_matrix(&policies, &tournament, threads)
                .expect("bench tournament runs");
            let dt = t0.elapsed().as_nanos() as u64;
            std::hint::black_box(report.cells.len());
            (dt, cells, None)
        });
        push_result(
            &mut workloads,
            "zoo/tournament/2x2",
            format!(
                "2 policies x 2 families on a 4x4 fabric, {} epochs x 200 \
                 cycles per cell, {threads} threads",
                config.env_epochs
            ),
            "cells",
            config.repeats,
            measured,
        );
    }

    BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        git_sha,
        mode: mode.to_string(),
        config,
        workloads,
    }
}

/// The standard bench agent: the self-configuration network shape with a
/// replay buffer pre-filled deterministically.
fn bench_agent() -> DqnAgent {
    let mut agent = DqnAgent::new(DqnConfig {
        min_replay: 64,
        ..DqnConfig::default().with_dims(15, 9)
    });
    for i in 0..256usize {
        let state: Vec<f32> = (0..15).map(|j| ((i + j) % 7) as f32 / 7.0).collect();
        let next: Vec<f32> = (0..15).map(|j| ((i + j + 1) % 7) as f32 / 7.0).collect();
        agent.observe(Transition {
            state,
            action: i % 9,
            reward: (i % 3) as f32 - 1.0,
            next_state: next,
            done: i % 40 == 0,
        });
    }
    agent
}

/// One workload's delta between two reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchDelta {
    /// Workload identifier.
    pub name: String,
    /// Baseline median, nanoseconds.
    pub old_median_ns: u64,
    /// Candidate median, nanoseconds.
    pub new_median_ns: u64,
    /// `(new - old) / old`; positive means slower.
    pub delta_frac: f64,
    /// The tolerance this workload was judged against: the baseline's
    /// per-workload value when present, else the global fallback.
    pub tolerance: f64,
    /// Candidate units per second (for target checks and the table).
    pub new_units_per_sec: f64,
    /// Absolute `units_per_sec` floor from the baseline, if any.
    pub target_units_per_sec: Option<f64>,
    /// Whether the delta exceeds this workload's tolerance.
    pub regression: bool,
    /// Whether the candidate ran below the absolute target floor.
    pub missed_target: bool,
}

impl BenchDelta {
    /// Whether this workload fails the gate (relative regression or an
    /// absolute target miss).
    pub fn failed(&self) -> bool {
        self.regression || self.missed_target
    }
}

/// Outcome of diffing two reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Global fallback tolerance (workloads without a baseline override).
    pub tolerance: f64,
    /// Per-workload deltas, in baseline order.
    pub deltas: Vec<BenchDelta>,
    /// Baseline workloads absent from the candidate (treated as failures:
    /// a silently dropped workload must force a baseline refresh).
    pub missing_in_new: Vec<String>,
    /// Candidate workloads absent from the baseline (informational).
    pub missing_in_old: Vec<String>,
}

impl Comparison {
    /// Number of gate failures (regressions, target misses, and dropped
    /// workloads).
    pub fn failures(&self) -> usize {
        self.deltas.iter().filter(|d| d.failed()).count() + self.missing_in_new.len()
    }

    /// Names of the workloads that breached their own budget (relative
    /// tolerance or absolute target), in baseline order.
    pub fn breached(&self) -> Vec<&str> {
        self.deltas
            .iter()
            .filter(|d| d.failed())
            .map(|d| d.name.as_str())
            .collect()
    }

    /// Render the delta table plus a verdict line. Every row shows the
    /// tolerance that judged it; failing rows say *which* budget broke
    /// (relative slowdown vs absolute target), and the trailing summary
    /// names every breaching workload so CI logs are self-explanatory.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<34} {:>12} {:>12} {:>9} {:>6}  verdict",
            "workload", "old median", "new median", "delta", "tol"
        );
        for d in &self.deltas {
            let verdict = if d.regression && d.missed_target {
                "REGRESSION+TARGET".to_string()
            } else if d.regression {
                "REGRESSION".to_string()
            } else if d.missed_target {
                format!(
                    "MISSED TARGET ({:.0} < {:.0} {}/s)",
                    d.new_units_per_sec,
                    d.target_units_per_sec.unwrap_or(0.0),
                    "units"
                )
            } else {
                "ok".to_string()
            };
            let _ = writeln!(
                out,
                "{:<34} {:>12} {:>12} {:>+8.1}% {:>5.0}%  {}",
                d.name,
                fmt_ns(d.old_median_ns),
                fmt_ns(d.new_median_ns),
                d.delta_frac * 100.0,
                d.tolerance * 100.0,
                verdict,
            );
        }
        for name in &self.missing_in_new {
            let _ = writeln!(out, "{name:<34} MISSING from candidate report");
        }
        for name in &self.missing_in_old {
            let _ = writeln!(out, "{name:<34} new workload (no baseline)");
        }
        let _ = writeln!(
            out,
            "{} workload(s) compared, {} failure(s) \
             ({:.0}% fallback tolerance, per-workload overrides applied)",
            self.deltas.len(),
            self.failures(),
            self.tolerance * 100.0
        );
        let breached = self.breached();
        if !breached.is_empty() {
            let _ = writeln!(out, "breached budget: {}", breached.join(", "));
        }
        out
    }
}

/// Diff `new` against the `old` baseline: a workload regresses when its
/// median wall-clock grew by more than its tolerance (the baseline
/// workload's own `tolerance` when present, else the global `tolerance`
/// fallback), and fails outright when the baseline sets a
/// `target_units_per_sec` floor the candidate runs below.
///
/// # Errors
/// Returns an error when the schema versions or suite budgets differ —
/// medians from different budgets (e.g. a `full` run vs a `quick`
/// baseline) share workload names but time different amounts of work, so
/// diffing them would report enormous phantom regressions.
pub fn compare(old: &BenchReport, new: &BenchReport, tolerance: f64) -> Result<Comparison, String> {
    if old.schema_version != new.schema_version {
        return Err(format!(
            "schema mismatch: baseline v{} vs candidate v{} — refresh the baseline",
            old.schema_version, new.schema_version
        ));
    }
    if old.config != new.config {
        return Err(format!(
            "suite-budget mismatch: baseline ran `{}` budgets, candidate ran `{}` \
             ({:?} vs {:?}) — rerun with matching flags or refresh the baseline",
            old.mode, new.mode, old.config, new.config
        ));
    }
    let mut deltas = Vec::new();
    let mut missing_in_new = Vec::new();
    for ow in &old.workloads {
        match new.workloads.iter().find(|nw| nw.name == ow.name) {
            Some(nw) => {
                let delta_frac =
                    (nw.median_ns as f64 - ow.median_ns as f64) / (ow.median_ns as f64).max(1.0);
                let tol = ow.tolerance.unwrap_or(tolerance);
                let target = ow.target_units_per_sec;
                deltas.push(BenchDelta {
                    name: ow.name.clone(),
                    old_median_ns: ow.median_ns,
                    new_median_ns: nw.median_ns,
                    delta_frac,
                    tolerance: tol,
                    new_units_per_sec: nw.units_per_sec,
                    target_units_per_sec: target,
                    regression: delta_frac > tol,
                    missed_target: target.is_some_and(|t| nw.units_per_sec < t),
                });
            }
            None => missing_in_new.push(ow.name.clone()),
        }
    }
    let missing_in_old = new
        .workloads
        .iter()
        .filter(|nw| !old.workloads.iter().any(|ow| ow.name == nw.name))
        .map(|nw| nw.name.clone())
        .collect();
    Ok(Comparison {
        tolerance,
        deltas,
        missing_in_new,
        missing_in_old,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> BenchSuiteConfig {
        BenchSuiteConfig {
            repeats: 3,
            sim_cycles: 40,
            sim_warmup: 10,
            dqn_steps: 2,
            dqn_predicts: 2,
            env_epochs: 1,
            sweep_measure: 40,
        }
    }

    #[test]
    fn median_iqr_matches_hand_computation() {
        assert_eq!(median_iqr(&mut [5]), (5, 0));
        assert_eq!(median_iqr(&mut [3, 1]), (2, 0));
        // Sorted [1, 5, 9]: q1 = s[0] = 1, q3 = s[(3*2)/4] = s[1] = 5.
        assert_eq!(median_iqr(&mut [9, 1, 5]), (5, 4));
        // 1..=8: median 4.5 -> 4 (integer), q1 = s[1] = 2, q3 = s[5] = 6.
        assert_eq!(median_iqr(&mut [8, 7, 6, 5, 4, 3, 2, 1]), (4, 4));
    }

    #[test]
    fn suite_runs_and_serializes_deterministically() {
        let report = run_suite(tiny_config(), "tiny", "deadbeef".into());
        assert_eq!(report.schema_version, BENCH_SCHEMA_VERSION);
        assert_eq!(report.file_name(), "BENCH_deadbeef.json");
        assert_eq!(report.workloads.len(), 25);
        for w in &report.workloads {
            assert!(w.median_ns > 0, "{} must take time", w.name);
            assert!(w.units_per_sec > 0.0, "{} must have a rate", w.name);
        }
        // Simulator workloads report flit throughput; others do not.
        assert!(report
            .workloads
            .iter()
            .filter(|w| w.name.starts_with("sim/"))
            .all(|w| w.flits_per_sec.is_some()));
        assert!(report
            .workloads
            .iter()
            .filter(|w| !w.name.starts_with("sim/"))
            .all(|w| w.flits_per_sec.is_none()));
        // Schema stability: JSON round-trips to byte-identical JSON.
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(serde_json::to_string_pretty(&back).unwrap(), json);
        // The summary table renders every workload.
        let table = report.render_table();
        for w in &report.workloads {
            assert!(table.contains(&w.name));
        }
    }

    #[test]
    fn self_comparison_reports_zero_failures() {
        let report = run_suite(tiny_config(), "tiny", "cafe".into());
        let cmp = compare(&report, &report, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(cmp.failures(), 0);
        assert_eq!(cmp.deltas.len(), report.workloads.len());
        assert!(cmp.deltas.iter().all(|d| d.delta_frac == 0.0));
        assert!(cmp.render_table().contains("0 failure(s)"));
    }

    #[test]
    fn slowdowns_beyond_tolerance_are_regressions() {
        let old = run_suite(tiny_config(), "tiny", "old".into());
        let mut new = old.clone();
        for w in &mut new.workloads {
            w.median_ns *= 2; // +100% >> 30%
        }
        let cmp = compare(&old, &new, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(cmp.failures(), old.workloads.len());
        assert!(cmp.render_table().contains("REGRESSION"));
        // Speedups never trip the gate.
        let cmp = compare(&new, &old, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(cmp.failures(), 0);
    }

    #[test]
    fn dropped_workloads_fail_the_gate() {
        let old = run_suite(tiny_config(), "tiny", "old".into());
        let mut new = old.clone();
        let dropped = new.workloads.remove(0);
        let cmp = compare(&old, &new, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(cmp.failures(), 1);
        assert_eq!(cmp.missing_in_new, vec![dropped.name.clone()]);
        assert!(cmp.render_table().contains("MISSING"));
        // A workload only the candidate has is informational, not a failure.
        let cmp = compare(&new, &old, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(cmp.failures(), 0);
        assert_eq!(cmp.missing_in_old, vec![dropped.name]);
    }

    #[test]
    fn per_workload_tolerance_overrides_the_global_fallback() {
        let old = run_suite(tiny_config(), "tiny", "old".into());
        let mut new = old.clone();
        for w in &mut new.workloads {
            w.median_ns = w.median_ns * 3 / 2; // +50%: above 30%, below 80%
        }
        // Globally this is a regression everywhere...
        let cmp = compare(&old, &new, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(cmp.failures(), old.workloads.len());
        // ...but a baseline that grants workload 0 an 80% budget exempts
        // exactly that workload, and the delta records which tolerance
        // actually judged it.
        let mut curated = old.clone();
        curated.workloads[0].tolerance = Some(0.80);
        let cmp = compare(&curated, &new, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(cmp.failures(), old.workloads.len() - 1);
        assert!(!cmp.deltas[0].regression);
        assert_eq!(cmp.deltas[0].tolerance, 0.80);
        assert_eq!(cmp.deltas[1].tolerance, DEFAULT_TOLERANCE);
        // The summary names every breaching workload — and not the exempt one.
        let table = cmp.render_table();
        assert!(table.contains("breached budget:"));
        assert!(!cmp.breached().contains(&cmp.deltas[0].name.as_str()));
    }

    #[test]
    fn absolute_target_floors_fail_independently_of_deltas() {
        let old = run_suite(tiny_config(), "tiny", "old".into());
        let new = old.clone();
        // Identical medians: zero delta everywhere. An unreachable floor on
        // workload 0 must still fail the gate and name the workload.
        let mut curated = old.clone();
        curated.workloads[0].target_units_per_sec = Some(f64::INFINITY);
        let cmp = compare(&curated, &new, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(cmp.failures(), 1);
        assert!(cmp.deltas[0].missed_target && !cmp.deltas[0].regression);
        assert_eq!(cmp.breached(), vec![cmp.deltas[0].name.as_str()]);
        assert!(cmp.render_table().contains("MISSED TARGET"));
        // A floor the candidate clears is not a failure.
        let mut curated = old.clone();
        curated.workloads[0].target_units_per_sec = Some(0.0);
        let cmp = compare(&curated, &new, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(cmp.failures(), 0);
    }

    #[test]
    fn trajectory_rows_track_the_headline_workloads() {
        let report = run_suite(tiny_config(), "tiny", "abc123".into());
        let header = trajectory_header();
        assert!(header.starts_with("sha,date"));
        for name in TRAJECTORY_WORKLOADS {
            assert!(header.contains(name), "header lacks {name}");
        }
        let line = trajectory_line(&report);
        assert!(line.starts_with("abc123,"));
        assert_eq!(
            line.matches(',').count(),
            header.matches(',').count(),
            "row/header column mismatch"
        );
        // Every headline workload exists in the suite, so no cell is empty.
        assert!(!line.contains(",,") && !line.ends_with(','));
        // The date cell is YYYY-MM-DD.
        let date = line.split(',').nth(1).unwrap();
        assert_eq!(date.len(), 10, "bad date stamp {date}");
        assert!(date.as_bytes()[4] == b'-' && date.as_bytes()[7] == b'-');

        let dir = std::env::temp_dir().join(format!("traj-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trajectory.csv");
        append_trajectory(&report, &path).unwrap();
        append_trajectory(&report, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "header once, then one row per append");
        assert_eq!(lines[0], header);
        assert_eq!(lines[1], lines[2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn schema_version_mismatch_is_an_error() {
        let old = run_suite(tiny_config(), "tiny", "old".into());
        let mut new = old.clone();
        new.schema_version += 1;
        assert!(compare(&old, &new, DEFAULT_TOLERANCE).is_err());
    }

    #[test]
    fn suite_budget_mismatch_is_an_error() {
        // A full-budget candidate against a quick-budget baseline times
        // different work under the same workload names; the diff must be
        // refused, not reported as a phantom regression.
        let old = run_suite(tiny_config(), "tiny", "old".into());
        let mut new = old.clone();
        new.config.sim_cycles *= 10;
        new.mode = "full".into();
        let err = compare(&old, &new, DEFAULT_TOLERANCE).unwrap_err();
        assert!(err.contains("budget mismatch"), "unexpected error: {err}");
    }

    #[test]
    fn detect_git_sha_returns_something() {
        let sha = detect_git_sha();
        assert!(!sha.is_empty());
    }
}
