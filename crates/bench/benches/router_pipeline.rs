//! Criterion bench: one router pipeline step (SA/VA/RC) under load.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_sim::flit::{Packet, PacketId};
use noc_sim::power::{EnergyMeter, PowerModel};
use noc_sim::router::{Router, RouterCtx};
use noc_sim::routing::RoutingAlgorithm;
use noc_sim::stats::EnergySink;
use noc_sim::topology::{NodeId, Port, Topology};
use noc_sim::SwitchArb;
use std::hint::black_box;

fn loaded_router() -> (Router, Topology, PowerModel) {
    let topo = Topology::mesh(8, 8);
    let power = PowerModel::default_32nm();
    let mut meter = EnergyMeter::new();
    let mut r = Router::new(NodeId(27), 4, 4, false);
    let mut ctx = RouterCtx {
        topo: &topo,
        routing: RoutingAlgorithm::Xy,
        power: &power,
        energy: EnergySink::Meter(&mut meter),
        dynamic_scale: 1.0,
        faults: None,
        arb: SwitchArb::PerFlit,
        tables: None,
    };
    // Fill several input VCs with traffic crossing the router.
    for (i, (port, dst)) in [
        (Port::West, 31),
        (Port::North, 59),
        (Port::Local, 0),
        (Port::East, 24),
    ]
    .iter()
    .enumerate()
    {
        let flits = Packet {
            id: PacketId(i as u64),
            src: NodeId(27),
            dst: NodeId(*dst),
            len_flits: 4,
            created_at: 0,
        }
        .to_flits(0);
        for mut f in flits {
            f.vc = i % 4;
            if r.can_accept(*port, f.vc) {
                r.accept(*port, f, &mut ctx);
            }
        }
    }
    (r, topo, power)
}

fn bench_router_step(c: &mut Criterion) {
    let (router, topo, power) = loaded_router();
    c.bench_function("router_step_loaded", |b| {
        b.iter_batched(
            || router.clone(),
            |mut r| {
                let mut meter = EnergyMeter::new();
                let mut ctx = RouterCtx {
                    topo: &topo,
                    routing: RoutingAlgorithm::Xy,
                    power: &power,
                    energy: EnergySink::Meter(&mut meter),
                    dynamic_scale: 1.0,
                    faults: None,
                    arb: SwitchArb::PerFlit,
                    tables: None,
                };
                black_box(r.step(&mut ctx));
            },
            criterion::BatchSize::SmallInput,
        )
    });

    let idle = Router::new(NodeId(0), 4, 4, false);
    c.bench_function("router_step_idle", |b| {
        b.iter_batched(
            || idle.clone(),
            |mut r| {
                let mut meter = EnergyMeter::new();
                let mut ctx = RouterCtx {
                    topo: &topo,
                    routing: RoutingAlgorithm::Xy,
                    power: &power,
                    energy: EnergySink::Meter(&mut meter),
                    dynamic_scale: 1.0,
                    faults: None,
                    arb: SwitchArb::PerFlit,
                    tables: None,
                };
                black_box(r.step(&mut ctx));
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_router_step);
criterion_main!(benches);
