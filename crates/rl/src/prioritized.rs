//! Prioritized experience replay (Schaul et al., 2016) backed by a sum tree.
//!
//! Transitions are sampled with probability proportional to `priorityᵅ`;
//! importance-sampling weights `(N·P(i))⁻ᵝ / max_w` correct the induced bias.

use crate::replay::Transition;
use rand::rngs::StdRng;
use rand::Rng;

/// A binary sum tree over `capacity` leaves supporting O(log n) priority
/// updates and prefix-sum sampling.
#[derive(Debug, Clone)]
pub struct SumTree {
    /// Heap-layout tree; leaves occupy `[capacity-1, 2*capacity-1)`.
    nodes: Vec<f64>,
    capacity: usize,
}

impl SumTree {
    /// A tree with all priorities zero.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sum tree capacity must be positive");
        SumTree {
            nodes: vec![0.0; 2 * capacity - 1],
            capacity,
        }
    }

    /// Number of leaves.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total priority mass.
    pub fn total(&self) -> f64 {
        self.nodes[0]
    }

    /// Priority of leaf `i`.
    pub fn get(&self, i: usize) -> f64 {
        self.nodes[self.capacity - 1 + i]
    }

    /// Set leaf `i` to `priority`, updating ancestors.
    ///
    /// # Panics
    /// Panics if `i >= capacity` or the priority is negative/non-finite.
    pub fn set(&mut self, i: usize, priority: f64) {
        assert!(i < self.capacity, "leaf index out of range");
        assert!(
            priority.is_finite() && priority >= 0.0,
            "priority must be non-negative"
        );
        let mut idx = self.capacity - 1 + i;
        let delta = priority - self.nodes[idx];
        self.nodes[idx] = priority;
        while idx > 0 {
            idx = (idx - 1) / 2;
            self.nodes[idx] += delta;
        }
    }

    /// Find the leaf whose cumulative-priority interval contains `mass`
    /// (`0 <= mass < total`).
    pub fn find(&self, mass: f64) -> usize {
        let mut idx = 0usize;
        let mut mass = mass.clamp(0.0, self.total().max(0.0));
        while idx < self.capacity - 1 {
            let left = 2 * idx + 1;
            if mass <= self.nodes[left] || self.nodes[left + 1] <= 0.0 {
                idx = left;
            } else {
                mass -= self.nodes[left];
                idx = left + 1;
            }
        }
        idx - (self.capacity - 1)
    }
}

/// A sampled batch with importance-sampling corrections.
#[derive(Debug, Clone)]
pub struct PrioritizedBatch {
    /// Buffer slots of the sampled transitions (pass back to
    /// [`PrioritizedReplay::update_priorities`]).
    pub indices: Vec<usize>,
    /// Normalized importance-sampling weights in `(0, 1]`.
    pub weights: Vec<f32>,
}

/// Prioritized replay buffer.
#[derive(Debug, Clone)]
pub struct PrioritizedReplay {
    data: Vec<Transition>,
    tree: SumTree,
    capacity: usize,
    next: usize,
    alpha: f64,
    max_priority: f64,
}

impl PrioritizedReplay {
    /// A buffer with priority exponent `alpha` (0 = uniform, 1 = fully
    /// proportional).
    ///
    /// # Panics
    /// Panics if `capacity == 0` or `alpha` is outside `[0, 1]`.
    pub fn new(capacity: usize, alpha: f64) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        assert!((0.0..=1.0).contains(&alpha), "alpha must lie in [0, 1]");
        PrioritizedReplay {
            data: Vec::new(),
            tree: SumTree::new(capacity),
            capacity,
            next: 0,
            alpha,
            max_priority: 1.0,
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Store a transition with maximal priority (so new experiences are
    /// replayed at least once soon).
    pub fn push(&mut self, t: Transition) {
        let idx = if self.data.len() < self.capacity {
            self.data.push(t);
            self.data.len() - 1
        } else {
            self.data[self.next] = t;
            self.next
        };
        self.next = (self.next + 1) % self.capacity;
        self.tree.set(idx, self.max_priority.powf(self.alpha));
    }

    /// Access a transition by buffer slot.
    pub fn get(&self, i: usize) -> &Transition {
        &self.data[i]
    }

    /// Sample `batch` slots proportionally to priority; `beta` is the
    /// importance-sampling exponent (anneal 0.4 → 1.0 over training).
    ///
    /// # Panics
    /// Panics if the buffer is empty.
    pub fn sample(&self, batch: usize, beta: f64, rng: &mut StdRng) -> PrioritizedBatch {
        assert!(
            !self.data.is_empty(),
            "cannot sample from an empty replay buffer"
        );
        let total = self.tree.total();
        let n = self.data.len() as f64;
        let mut indices = Vec::with_capacity(batch);
        let mut weights = Vec::with_capacity(batch);
        let mut max_w = 0.0f64;
        for _ in 0..batch {
            let mass = rng.gen::<f64>() * total;
            let mut idx = self.tree.find(mass);
            if idx >= self.data.len() {
                // Can only happen transiently before the buffer fills.
                idx = rng.gen_range(0..self.data.len());
            }
            let p = (self.tree.get(idx) / total).max(1e-12);
            let w = (n * p).powf(-beta);
            max_w = max_w.max(w);
            indices.push(idx);
            weights.push(w);
        }
        let weights = weights.into_iter().map(|w| (w / max_w) as f32).collect();
        PrioritizedBatch { indices, weights }
    }

    /// Update priorities after a training step from the new TD errors.
    ///
    /// # Panics
    /// Panics if lengths differ or an index is stale (out of range).
    pub fn update_priorities(&mut self, indices: &[usize], td_errors: &[f32]) {
        assert_eq!(
            indices.len(),
            td_errors.len(),
            "index/error length mismatch"
        );
        for (&i, &e) in indices.iter().zip(td_errors) {
            let p = (e.abs() as f64 + 1e-6).min(1e3);
            self.max_priority = self.max_priority.max(p);
            self.tree.set(i, p.powf(self.alpha));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(reward: f32) -> Transition {
        Transition {
            state: vec![0.0],
            action: 0,
            reward,
            next_state: vec![0.0],
            done: false,
        }
    }

    #[test]
    fn sum_tree_total_tracks_leaves() {
        let mut s = SumTree::new(4);
        s.set(0, 1.0);
        s.set(1, 2.0);
        s.set(2, 3.0);
        assert!((s.total() - 6.0).abs() < 1e-12);
        s.set(1, 0.5);
        assert!((s.total() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn sum_tree_find_respects_intervals() {
        let mut s = SumTree::new(4);
        s.set(0, 1.0);
        s.set(1, 2.0);
        s.set(2, 3.0);
        s.set(3, 4.0);
        assert_eq!(s.find(0.5), 0);
        assert_eq!(s.find(1.5), 1);
        assert_eq!(s.find(3.5), 2);
        assert_eq!(s.find(9.5), 3);
    }

    #[test]
    fn sampling_prefers_high_priority() {
        let mut b = PrioritizedReplay::new(8, 1.0);
        for i in 0..8 {
            b.push(t(i as f32));
        }
        // Make slot 3 dominate.
        b.update_priorities(&(0..8).collect::<Vec<_>>(), &[0.01; 8]);
        b.update_priorities(&[3], &[100.0]);
        let mut rng = StdRng::seed_from_u64(1);
        let batch = b.sample(1000, 0.4, &mut rng);
        let hits = batch.indices.iter().filter(|&&i| i == 3).count();
        assert!(
            hits > 900,
            "slot 3 should dominate sampling, got {hits}/1000"
        );
    }

    #[test]
    fn weights_are_normalized() {
        let mut b = PrioritizedReplay::new(8, 0.6);
        for i in 0..8 {
            b.push(t(i as f32));
        }
        b.update_priorities(
            &(0..8).collect::<Vec<_>>(),
            &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
        );
        let mut rng = StdRng::seed_from_u64(2);
        let batch = b.sample(64, 0.5, &mut rng);
        assert!(batch.weights.iter().all(|&w| w > 0.0 && w <= 1.0 + 1e-6));
        assert!(batch.weights.iter().any(|&w| (w - 1.0).abs() < 1e-6));
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let mut b = PrioritizedReplay::new(4, 0.0);
        for i in 0..4 {
            b.push(t(i as f32));
        }
        b.update_priorities(&[0, 1, 2, 3], &[0.001, 1000.0, 0.001, 0.001]);
        let mut rng = StdRng::seed_from_u64(3);
        let batch = b.sample(4000, 1.0, &mut rng);
        let hits = batch.indices.iter().filter(|&&i| i == 1).count();
        assert!(
            (800..1200).contains(&hits),
            "alpha=0 must sample uniformly, got {hits}/4000"
        );
    }

    #[test]
    fn eviction_reuses_slots() {
        let mut b = PrioritizedReplay::new(2, 0.6);
        for i in 0..5 {
            b.push(t(i as f32));
        }
        assert_eq!(b.len(), 2);
        let rewards: Vec<f32> = (0..2).map(|i| b.get(i).reward).collect();
        assert!(rewards.contains(&4.0));
    }
}
