//! Utility: quick wall-clock sanity check of simulator speed.

use noc_sim::*;
fn main() {
    let cfg = SimConfig::default().with_traffic(TrafficPattern::Uniform, 0.2);
    let mut sim = Simulator::new(cfg).unwrap();
    let t0 = std::time::Instant::now();
    sim.run(20_000);
    let dt = t0.elapsed();
    println!(
        "8x8 mesh @0.2: 20k cycles in {:?} ({:.1} kcycles/s), ejected {}",
        dt,
        20_000.0 / dt.as_secs_f64() / 1000.0,
        sim.stats().ejected_packets
    );
}
