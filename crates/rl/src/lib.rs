//! # rl — a from-scratch reinforcement-learning stack
//!
//! The learning machinery of the *Self-Configurable NoC* reproduction:
//! DQN and Double-DQN with uniform or prioritized replay and hard/soft
//! target-network synchronization, a tabular Q-learning baseline, ε
//! schedules, and episode-driven training/evaluation loops. Built entirely
//! on the sibling [`neural`] crate.
//!
//! ```
//! use rl::{ChainEnv, DqnAgent, DqnConfig, Schedule, TrainConfig};
//!
//! let mut env = ChainEnv::new(4, 0.01, 20);
//! let mut agent = DqnAgent::new(
//!     DqnConfig { hidden: vec![16], min_replay: 32, ..DqnConfig::default().with_dims(4, 2) },
//! );
//! let stats = rl::train(
//!     &mut env,
//!     &mut agent,
//!     &TrainConfig { episodes: 5, max_steps: 20, ..TrainConfig::default() },
//! );
//! assert_eq!(stats.len(), 5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dqn;
pub mod env;
pub mod prioritized;
pub mod replay;
pub mod schedule;
pub mod tabular;
pub mod trainer;

pub use dqn::{argmax, DqnAgent, DqnConfig, TargetSync};
pub use env::{ChainEnv, Environment, LearningAgent, Step};
pub use prioritized::{PrioritizedBatch, PrioritizedReplay, SumTree};
pub use replay::{ReplayBuffer, Transition};
pub use schedule::Schedule;
pub use tabular::{TabularConfig, TabularQ};
pub use trainer::{evaluate, train, EpisodeStats, TrainConfig};
