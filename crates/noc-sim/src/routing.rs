//! Routing algorithms.
//!
//! Deterministic dimension-ordered routing (XY, YX), three turn-model
//! algorithms (West-First, North-Last, Negative-First), the Odd-Even
//! adaptive turn model (Chiu, 2000), and two wrap-aware torus algorithms:
//! dimension-ordered (`TorusDor`) and minimal-adaptive (`TorusMinAdaptive`),
//! both layered on the dateline VC partition.
//!
//! Conventions: `x` grows east, `y` grows south, so `North` decreases `y`.
//! All algorithms here are *minimal*: every candidate port reduces the
//! distance to the destination, which also bounds worst-case hop count.

use crate::fault::LinkState;
use crate::topology::{Coord, NodeId, Port, Topology, TopologyKind};
use serde::{Deserialize, Serialize};

/// Selectable routing algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingAlgorithm {
    /// Dimension-ordered: route fully in X, then in Y. Deadlock-free on mesh.
    Xy,
    /// Dimension-ordered: route fully in Y, then in X. Deadlock-free on mesh.
    Yx,
    /// Turn model: all westward hops are taken first; afterwards the packet
    /// routes adaptively among the remaining minimal directions.
    WestFirst,
    /// Turn model: northward hops may only be taken last.
    NorthLast,
    /// Turn model: hops in negative directions (west, north) are taken first.
    NegativeFirst,
    /// Odd-Even adaptive turn model (Chiu, 2000). Restricts where east-north /
    /// east-south and north-west / south-west turns may occur based on column
    /// parity, giving deadlock freedom without virtual-channel partitioning.
    OddEven,
    /// Wrap-aware dimension-ordered routing for tori. Requires a dateline
    /// virtual-channel partition for deadlock freedom (handled by the
    /// router's VC allocator).
    TorusDor,
    /// Minimal-adaptive routing for tori: at every hop the packet may
    /// advance in either dimension (each dimension's direction is the
    /// wrap-aware minimal one, ties going east/south like [`TorusDor`]),
    /// layered on the same dateline VC classes. The adaptivity is what makes
    /// torus link faults survivable: [`route_live`] has an alternative
    /// minimal port to fall back on. See DESIGN.md §10 for the
    /// deadlock-freedom discussion.
    TorusMinAdaptive,
    /// Table-driven k-shortest-path routing (mesh *and* torus): up to
    /// [`RoutingTables::K_DEFAULT`] minimal paths are precomputed per
    /// (src, dst) pair over the currently-live links, a packet's path is
    /// selected deterministically from its pair, and the network rebuilds
    /// the tables whenever the live-link set changes. On the mesh the
    /// enumerated paths obey the West-First turn rule; on the torus they
    /// stay inside the wrap-aware minimal DAG, deadlock-guarded by the
    /// dateline VC classes. See DESIGN.md §13.
    Table,
}

impl RoutingAlgorithm {
    /// Every algorithm paired with its canonical short name — the single
    /// table behind [`RoutingAlgorithm::name`] and
    /// [`RoutingAlgorithm::from_name`].
    pub const NAMED: [(&'static str, RoutingAlgorithm); 9] = [
        ("xy", RoutingAlgorithm::Xy),
        ("yx", RoutingAlgorithm::Yx),
        ("westfirst", RoutingAlgorithm::WestFirst),
        ("northlast", RoutingAlgorithm::NorthLast),
        ("negfirst", RoutingAlgorithm::NegativeFirst),
        ("oddeven", RoutingAlgorithm::OddEven),
        ("torusdor", RoutingAlgorithm::TorusDor),
        ("torusmin", RoutingAlgorithm::TorusMinAdaptive),
        ("table", RoutingAlgorithm::Table),
    ];

    /// The algorithm's canonical short name.
    pub fn name(self) -> &'static str {
        Self::NAMED
            .iter()
            .find(|(_, a)| *a == self)
            .map(|(n, _)| *n)
            .expect("every algorithm is in NAMED")
    }

    /// Look up an algorithm by its canonical short name.
    pub fn from_name(name: &str) -> Option<RoutingAlgorithm> {
        Self::NAMED
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, a)| *a)
    }

    /// Whether the algorithm may return more than one candidate port
    /// (adaptive) or always exactly one (deterministic/oblivious).
    pub fn is_adaptive(self) -> bool {
        matches!(
            self,
            RoutingAlgorithm::WestFirst
                | RoutingAlgorithm::NorthLast
                | RoutingAlgorithm::NegativeFirst
                | RoutingAlgorithm::OddEven
                | RoutingAlgorithm::TorusMinAdaptive
        )
    }

    /// Whether this algorithm is valid on the given topology.
    pub fn supports(self, kind: TopologyKind) -> bool {
        match self {
            RoutingAlgorithm::TorusDor | RoutingAlgorithm::TorusMinAdaptive => {
                kind == TopologyKind::Torus
            }
            RoutingAlgorithm::Table => true,
            _ => kind == TopologyKind::Mesh,
        }
    }

    /// The closest equivalent of this algorithm on the given topology:
    /// identity when the algorithm already supports it, otherwise the
    /// same-family counterpart (deterministic dimension-ordered algorithms
    /// map to [`RoutingAlgorithm::TorusDor`] / [`RoutingAlgorithm::Xy`],
    /// adaptive ones to [`RoutingAlgorithm::TorusMinAdaptive`] /
    /// [`RoutingAlgorithm::OddEven`]). This is how the sweep engine and the
    /// CLI make one `routings` axis meaningful across a mixed
    /// mesh-and-torus topology axis.
    pub fn for_topology(self, kind: TopologyKind) -> RoutingAlgorithm {
        if self.supports(kind) {
            return self;
        }
        match kind {
            TopologyKind::Torus => {
                if self.is_adaptive() {
                    RoutingAlgorithm::TorusMinAdaptive
                } else {
                    RoutingAlgorithm::TorusDor
                }
            }
            TopologyKind::Mesh => {
                if self.is_adaptive() {
                    RoutingAlgorithm::OddEven
                } else {
                    RoutingAlgorithm::Xy
                }
            }
        }
    }
}

/// Signed offsets toward the destination: `(ex, ey)` where positive `ex`
/// means the destination lies east and positive `ey` means south.
fn offsets(cur: Coord, dst: Coord) -> (isize, isize) {
    (
        dst.x as isize - cur.x as isize,
        dst.y as isize - cur.y as isize,
    )
}

/// Stack-allocated candidate list returned by [`route`] and [`route_live`].
///
/// Minimal 2-D routing offers at most one productive direction per
/// dimension, so two slots always suffice (the `cur == dst` case is the
/// `Local` singleton). Dereferences to `&[Port]`, so it reads like the
/// `Vec<Port>` it replaces — without the per-call heap allocation that
/// made route computation the hottest allocator site in the cycle core.
#[derive(Debug, Clone, Copy, Eq)]
pub struct Candidates {
    ports: [Port; 2],
    len: u8,
}

impl Candidates {
    const fn new() -> Self {
        Candidates {
            ports: [Port::Local; 2],
            len: 0,
        }
    }

    const fn one(p: Port) -> Self {
        Candidates {
            ports: [p, Port::Local],
            len: 1,
        }
    }

    fn push(&mut self, p: Port) {
        self.ports[self.len as usize] = p;
        self.len += 1;
    }

    fn retain(&mut self, keep: impl Fn(Port) -> bool) {
        let mut kept = Candidates::new();
        for &p in self.iter() {
            if keep(p) {
                kept.push(p);
            }
        }
        *self = kept;
    }
}

impl std::ops::Deref for Candidates {
    type Target = [Port];
    fn deref(&self) -> &[Port] {
        &self.ports[..self.len as usize]
    }
}

impl IntoIterator for Candidates {
    type Item = Port;
    type IntoIter = std::iter::Take<std::array::IntoIter<Port, 2>>;
    fn into_iter(self) -> Self::IntoIter {
        self.ports.into_iter().take(self.len as usize)
    }
}

impl PartialEq for Candidates {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl PartialEq<Vec<Port>> for Candidates {
    fn eq(&self, other: &Vec<Port>) -> bool {
        **self == other[..]
    }
}

/// Compute the set of candidate output ports for a flit currently at `cur`,
/// heading to `dst`, having entered the network at `src`.
///
/// Returns the `Local` singleton when `cur == dst`. Otherwise, every returned
/// port is a productive (distance-reducing) direction permitted by the
/// algorithm; the list is never empty.
///
/// # Panics
/// Panics if the algorithm does not support the topology kind (e.g. `TorusDor`
/// on a mesh), or if any node id is out of range.
pub fn route(
    alg: RoutingAlgorithm,
    topo: &Topology,
    cur: NodeId,
    src: NodeId,
    dst: NodeId,
) -> Candidates {
    assert!(
        alg.supports(topo.kind()),
        "routing algorithm {alg:?} does not support topology {:?}",
        topo.kind()
    );
    if cur == dst {
        return Candidates::one(Port::Local);
    }
    let c = topo.coord(cur);
    let d = topo.coord(dst);
    let s = topo.coord(src);
    match alg {
        RoutingAlgorithm::Xy => route_xy(c, d),
        RoutingAlgorithm::Yx => route_yx(c, d),
        RoutingAlgorithm::WestFirst => route_west_first(c, d),
        RoutingAlgorithm::NorthLast => route_north_last(c, d),
        RoutingAlgorithm::NegativeFirst => route_negative_first(c, d),
        RoutingAlgorithm::OddEven => route_odd_even(c, s, d),
        RoutingAlgorithm::TorusDor => route_torus_dor(topo, c, d),
        RoutingAlgorithm::TorusMinAdaptive => route_torus_min_adaptive(topo, c, d),
        RoutingAlgorithm::Table => {
            panic!("table routing resolves through RoutingTables::next_hop, not route()")
        }
    }
}

fn x_port(ex: isize) -> Port {
    if ex > 0 {
        Port::East
    } else {
        Port::West
    }
}

fn y_port(ey: isize) -> Port {
    if ey > 0 {
        Port::South
    } else {
        Port::North
    }
}

fn route_xy(c: Coord, d: Coord) -> Candidates {
    let (ex, ey) = offsets(c, d);
    if ex != 0 {
        Candidates::one(x_port(ex))
    } else {
        Candidates::one(y_port(ey))
    }
}

fn route_yx(c: Coord, d: Coord) -> Candidates {
    let (ex, ey) = offsets(c, d);
    if ey != 0 {
        Candidates::one(y_port(ey))
    } else {
        Candidates::one(x_port(ex))
    }
}

/// West-First: a packet whose destination lies to the west must take all its
/// west hops first (no turning into west later). Once no west hops remain,
/// route adaptively among the minimal productive directions.
fn route_west_first(c: Coord, d: Coord) -> Candidates {
    let (ex, ey) = offsets(c, d);
    if ex < 0 {
        return Candidates::one(Port::West);
    }
    let mut out = Candidates::new();
    if ex > 0 {
        out.push(Port::East);
    }
    if ey != 0 {
        out.push(y_port(ey));
    }
    out
}

/// North-Last: northward hops (decreasing `y`) may only be taken once no
/// other productive direction remains, because no turn out of north is
/// permitted.
fn route_north_last(c: Coord, d: Coord) -> Candidates {
    let (ex, ey) = offsets(c, d);
    let mut out = Candidates::new();
    if ex != 0 {
        out.push(x_port(ex));
    }
    if ey > 0 {
        out.push(Port::South);
    }
    if out.is_empty() {
        // Only north remains.
        out.push(Port::North);
    }
    out
}

/// Negative-First: hops in negative directions (west = -x, north = -y) must
/// all be taken before any positive hop, because turns from positive into
/// negative directions are prohibited.
fn route_negative_first(c: Coord, d: Coord) -> Candidates {
    let (ex, ey) = offsets(c, d);
    let mut neg = Candidates::new();
    if ex < 0 {
        neg.push(Port::West);
    }
    if ey < 0 {
        neg.push(Port::North);
    }
    if !neg.is_empty() {
        return neg;
    }
    let mut pos = Candidates::new();
    if ex > 0 {
        pos.push(Port::East);
    }
    if ey > 0 {
        pos.push(Port::South);
    }
    pos
}

/// Odd-Even minimal adaptive routing (the `ROUTE` function of Chiu, 2000).
///
/// Column parity is taken on `x`. Restrictions:
/// * EN/ES turns are forbidden in even columns — an eastbound packet may only
///   turn north/south in odd columns (or in its source column);
/// * NW/SW turns are forbidden in odd columns — a westbound packet may only
///   turn west from north/south in even columns, which manifests here as
///   "north/south moves while heading west are only offered in even columns".
fn route_odd_even(c: Coord, s: Coord, d: Coord) -> Candidates {
    let (ex, ey) = offsets(c, d);
    let mut out = Candidates::new();
    if ex == 0 {
        // Same column: straight north/south.
        out.push(y_port(ey));
        return out;
    }
    if ex > 0 {
        // Eastbound.
        if ey == 0 {
            out.push(Port::East);
        } else {
            // Turning off the east direction is an EN/ES turn, allowed only
            // in odd columns or the source column.
            if c.x % 2 == 1 || c.x == s.x {
                out.push(y_port(ey));
            }
            // Continuing east is allowed unless the destination column is
            // even and exactly one hop away (the final EN/ES turn would then
            // land in an even column where it is forbidden).
            if d.x % 2 == 1 || ex != 1 {
                out.push(Port::East);
            }
            if out.is_empty() {
                // Fallback that cannot occur for valid meshes, but keep the
                // function total: take the vertical move.
                out.push(y_port(ey));
            }
        }
    } else {
        // Westbound: west is always permitted.
        out.push(Port::West);
        // NW/SW turns later are only legal from even columns, so offer the
        // vertical move only in even columns.
        if ey != 0 && c.x.is_multiple_of(2) {
            out.push(y_port(ey));
        }
    }
    out
}

/// Wrap-aware minimal direction along one ring dimension: `delta` is the
/// signed mesh offset, `extent` the ring length. `None` when the dimension is
/// already resolved; ties (an even ring with the destination exactly halfway)
/// go in the positive (east/south) direction.
fn ring_direction(delta: isize, extent: isize, pos: Port, neg: Port) -> Option<Port> {
    if delta == 0 {
        return None;
    }
    let fwd = delta.rem_euclid(extent);
    Some(if fwd <= extent - fwd { pos } else { neg })
}

/// Wrap-aware dimension-ordered routing for the torus: route X first, then Y,
/// choosing the direction with the fewer hops (ties go east/south).
fn route_torus_dor(topo: &Topology, c: Coord, d: Coord) -> Candidates {
    let (ex, ey) = offsets(c, d);
    match ring_direction(ex, topo.width() as isize, Port::East, Port::West) {
        Some(p) => Candidates::one(p),
        None => Candidates::one(
            ring_direction(ey, topo.height() as isize, Port::South, Port::North)
                .expect("cur != dst implies a remaining offset"),
        ),
    }
}

/// Minimal-adaptive torus routing: offer the wrap-aware minimal direction of
/// *every* unresolved dimension (each dimension's direction chosen exactly
/// like [`route_torus_dor`], ties east/south), so the router can pick by
/// downstream credit — and [`route_live`] can pick by liveness. Every
/// candidate reduces the wrap-aware distance by one, so paths stay minimal.
fn route_torus_min_adaptive(topo: &Topology, c: Coord, d: Coord) -> Candidates {
    let (ex, ey) = offsets(c, d);
    let mut out = Candidates::new();
    if let Some(p) = ring_direction(ex, topo.width() as isize, Port::East, Port::West) {
        out.push(p);
    }
    if let Some(p) = ring_direction(ey, topo.height() as isize, Port::South, Port::North) {
        out.push(p);
    }
    out
}

/// Fault-aware variant of [`route`]: compute the algorithm's candidate
/// ports, then exclude any whose output link is currently dead. Because the
/// surviving set is a subset of the turns the algorithm already permits, the
/// deadlock-freedom argument of each turn model carries over unchanged.
///
/// Unlike [`route`], the result **may be empty**: the packet is unroutable
/// under the current fault set (every minimal permitted direction is dead)
/// and the router must drop it rather than wedge. `Local` delivery at the
/// destination is never filtered.
///
/// # Panics
/// Panics if the algorithm does not support the topology kind.
pub fn route_live(
    alg: RoutingAlgorithm,
    topo: &Topology,
    faults: &LinkState,
    cur: NodeId,
    src: NodeId,
    dst: NodeId,
) -> Candidates {
    let mut cands = route(alg, topo, cur, src, dst);
    cands.retain(|p| p == Port::Local || faults.is_link_up(cur, p));
    cands
}

/// Precomputed k-shortest-path tables for [`RoutingAlgorithm::Table`].
///
/// For every (src, dst) pair, up to `k` *minimal* paths — stored as output
/// port sequences from src — are enumerated over the currently-live links.
/// On the mesh the enumeration is restricted to West-First-legal turn
/// orders (a westbound pair with vertical hops admits only the all-west-
/// first order), so the union of turns any table can use is a subset of the
/// West-First allowed set and the channel-dependence graph stays acyclic.
/// On the torus the paths are interleavings of the two wrap-aware minimal
/// directions (the same DAG [`RoutingAlgorithm::TorusMinAdaptive`] routes
/// in), with deadlock freedom supplied by the dateline VC classes.
///
/// A packet's path is selected deterministically by hashing its (src, dst)
/// pair, so the spreading is reproducible and byte-identical across
/// partitions and reruns. The network rebuilds the tables whenever the
/// live-link set changes (fault onset *and* heal); a packet caught mid-
/// flight off every new path becomes unroutable ([`RoutingTables::next_hop`]
/// returns `None`) and is drained by the router's drop machinery instead of
/// wedging.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingTables {
    k: usize,
    nodes: usize,
    /// `paths[src * nodes + dst]`: up to `k` port sequences, in the
    /// deterministic x-step-first enumeration order.
    paths: Vec<Vec<Vec<Port>>>,
}

impl RoutingTables {
    /// Default number of paths kept per (src, dst) pair.
    pub const K_DEFAULT: usize = 4;

    /// Build tables for `topo` over the links live under `faults`
    /// (`None` = pristine fabric), keeping at most `k` paths per pair.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn build(topo: &Topology, faults: Option<&LinkState>, k: usize) -> Self {
        assert!(k > 0, "table routing needs at least one path per pair");
        let nodes = topo.num_nodes();
        let mut paths = Vec::with_capacity(nodes * nodes);
        for src in topo.nodes() {
            for dst in topo.nodes() {
                if src == dst {
                    paths.push(Vec::new());
                } else {
                    paths.push(live_paths(topo, faults, src, dst, k));
                }
            }
        }
        RoutingTables { k, nodes, paths }
    }

    /// Paths kept per pair (the build-time `k`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The live minimal paths for (src, dst), as output-port sequences
    /// from `src`. Empty iff the pair is disconnected under the fault set
    /// the tables were built for (or `src == dst`).
    pub fn paths(&self, src: NodeId, dst: NodeId) -> &[Vec<Port>] {
        &self.paths[src.0 * self.nodes + dst.0]
    }

    /// The selected path for (src, dst), if any: a deterministic pair-hash
    /// pick among the live paths.
    pub fn selected_path(&self, src: NodeId, dst: NodeId) -> Option<&[Port]> {
        let list = self.paths(src, dst);
        if list.is_empty() {
            return None;
        }
        Some(&list[(src.0.wrapping_mul(31) ^ dst.0.wrapping_mul(17)) % list.len()])
    }

    /// The output port a packet (src → dst) takes at `cur`, or `None` if
    /// the packet is unroutable: its pair has no live path, or `cur` is off
    /// the selected path (possible after a mid-flight table recompute).
    /// Returns `Port::Local` at the destination.
    pub fn next_hop(&self, topo: &Topology, cur: NodeId, src: NodeId, dst: NodeId) -> Option<Port> {
        if cur == dst {
            return Some(Port::Local);
        }
        let path = self.selected_path(src, dst)?;
        let mut node = src;
        for &port in path {
            if node == cur {
                return Some(port);
            }
            node = topo.neighbor(node, port)?;
        }
        None
    }
}

/// Table lookup as a [`Candidates`] list: the single selected port, or the
/// empty set when the packet is unroutable (the router drains it).
pub fn route_table(
    tables: &RoutingTables,
    topo: &Topology,
    cur: NodeId,
    src: NodeId,
    dst: NodeId,
) -> Candidates {
    match tables.next_hop(topo, cur, src, dst) {
        Some(p) => Candidates::one(p),
        None => Candidates::new(),
    }
}

/// Per-dimension minimal direction and hop count for (src → dst): mesh
/// offsets directly, wrap-aware ring distances on the torus (ties going
/// east/south exactly like [`route_torus_dor`]).
fn dim_moves(topo: &Topology, src: NodeId, dst: NodeId) -> ((Port, usize), (Port, usize)) {
    let (s, d) = (topo.coord(src), topo.coord(dst));
    let (ex, ey) = offsets(s, d);
    match topo.kind() {
        TopologyKind::Mesh => (
            (x_port(ex), ex.unsigned_abs()),
            (y_port(ey), ey.unsigned_abs()),
        ),
        TopologyKind::Torus => {
            let ring = |delta: isize, extent: isize, pos, neg| {
                let fwd = delta.rem_euclid(extent);
                let hops = fwd.min(extent - fwd) as usize;
                // At fwd == 0 the direction is irrelevant (zero hops).
                let dir = if fwd <= extent - fwd { pos } else { neg };
                (dir, hops)
            };
            (
                ring(ex, topo.width() as isize, Port::East, Port::West),
                ring(ey, topo.height() as isize, Port::South, Port::North),
            )
        }
    }
}

/// Enumerate up to `k` live minimal paths src → dst in deterministic
/// x-step-first DFS order. A dead-state memo over the (remaining-x,
/// remaining-y) grid keeps the search linear in the grid area even when
/// faults close off most interleavings.
fn live_paths(
    topo: &Topology,
    faults: Option<&LinkState>,
    src: NodeId,
    dst: NodeId,
    k: usize,
) -> Vec<Vec<Port>> {
    let ((xdir, xn), (ydir, yn)) = dim_moves(topo, src, dst);
    // Mesh West-First legality: once a vertical hop is taken, no west hop
    // may follow (N→W / S→W turns are the ones West-First forbids), so a
    // westbound pair admits only the all-west-hops-first order.
    let west_block = topo.kind() == TopologyKind::Mesh && xdir == Port::West && yn > 0;
    let mut out = Vec::new();
    let mut dead = vec![false; (xn + 1) * (yn + 1)];
    let mut path = Vec::with_capacity(xn + yn);
    paths_dfs(
        topo,
        faults,
        src,
        (xdir, ydir),
        (xn, yn),
        yn,
        west_block,
        k,
        &mut path,
        &mut out,
        &mut dead,
    );
    out
}

/// DFS worker for [`live_paths`]: `rem` holds the remaining hops per
/// dimension; returns whether any live completion exists below this state.
#[allow(clippy::too_many_arguments)]
fn paths_dfs(
    topo: &Topology,
    faults: Option<&LinkState>,
    node: NodeId,
    dirs: (Port, Port),
    rem: (usize, usize),
    yn: usize,
    west_block: bool,
    k: usize,
    path: &mut Vec<Port>,
    out: &mut Vec<Vec<Port>>,
    dead: &mut [bool],
) -> bool {
    let (rx, ry) = rem;
    if rx == 0 && ry == 0 {
        out.push(path.clone());
        return true;
    }
    if dead[rx * (yn + 1) + ry] {
        return false;
    }
    let mut found = false;
    let try_dir = |dir: Port,
                   nrem: (usize, usize),
                   path: &mut Vec<Port>,
                   out: &mut Vec<Vec<Port>>,
                   dead: &mut [bool]|
     -> bool {
        if out.len() >= k {
            return false;
        }
        if faults.is_some_and(|ls| !ls.is_link_up(node, dir)) {
            return false;
        }
        let Some(next) = topo.neighbor(node, dir) else {
            return false;
        };
        path.push(dir);
        let ok = paths_dfs(
            topo, faults, next, dirs, nrem, yn, west_block, k, path, out, dead,
        );
        path.pop();
        ok
    };
    if rx > 0 {
        found |= try_dir(dirs.0, (rx - 1, ry), path, out, dead);
    }
    if ry > 0 && !(west_block && rx > 0) {
        found |= try_dir(dirs.1, (rx, ry - 1), path, out, dead);
    }
    // Only a fully-explored failure (not a k-cap cutoff) proves the state
    // dead for future visits.
    if !found && out.len() < k {
        dead[rx * (yn + 1) + ry] = true;
    }
    found
}

/// Walk a packet from `src` to `dst` by repeatedly applying the routing
/// function and picking the candidate selected by `choose` (index into the
/// candidate list). Returns the sequence of nodes visited, ending at `dst`.
///
/// This is a testing/analysis helper: it ignores contention and flow control.
///
/// # Panics
/// Panics if the walk exceeds `4 * (width + height)` hops, which indicates a
/// non-minimal or divergent routing function.
pub fn walk_route<F>(
    alg: RoutingAlgorithm,
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    mut choose: F,
) -> Vec<NodeId>
where
    F: FnMut(&[Port]) -> usize,
{
    let mut path = vec![src];
    let mut cur = src;
    let bound = 4 * (topo.width() + topo.height()) + 4;
    while cur != dst {
        let cands = route(alg, topo, cur, src, dst);
        assert!(!cands.is_empty(), "routing returned no candidates at {cur}");
        let port = cands[choose(&cands).min(cands.len() - 1)];
        assert_ne!(port, Port::Local, "local port before destination at {cur}");
        cur = topo
            .neighbor(cur, port)
            .unwrap_or_else(|| panic!("routing sent flit off the edge at {cur} via {port}"));
        path.push(cur);
        assert!(
            path.len() <= bound,
            "routing walk exceeded {bound} hops ({alg:?})"
        );
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    const MESH_ALGS: [RoutingAlgorithm; 6] = [
        RoutingAlgorithm::Xy,
        RoutingAlgorithm::Yx,
        RoutingAlgorithm::WestFirst,
        RoutingAlgorithm::NorthLast,
        RoutingAlgorithm::NegativeFirst,
        RoutingAlgorithm::OddEven,
    ];

    #[test]
    fn local_delivery_at_destination() {
        let t = Topology::mesh(4, 4);
        for alg in MESH_ALGS {
            assert_eq!(
                route(alg, &t, NodeId(5), NodeId(0), NodeId(5)),
                vec![Port::Local]
            );
        }
    }

    #[test]
    fn xy_routes_x_before_y() {
        let t = Topology::mesh(4, 4);
        // From (0,0) to (2,2): go east first.
        assert_eq!(
            route(RoutingAlgorithm::Xy, &t, NodeId(0), NodeId(0), NodeId(10)),
            vec![Port::East]
        );
        // Aligned in x: go south.
        assert_eq!(
            route(RoutingAlgorithm::Xy, &t, NodeId(2), NodeId(0), NodeId(10)),
            vec![Port::South]
        );
    }

    #[test]
    fn yx_routes_y_before_x() {
        let t = Topology::mesh(4, 4);
        assert_eq!(
            route(RoutingAlgorithm::Yx, &t, NodeId(0), NodeId(0), NodeId(10)),
            vec![Port::South]
        );
    }

    #[test]
    fn all_mesh_algorithms_reach_every_destination_minimally() {
        let t = Topology::mesh(5, 4);
        for alg in MESH_ALGS {
            for src in t.nodes() {
                for dst in t.nodes() {
                    // Greedy-first choice.
                    let path = walk_route(alg, &t, src, dst, |_| 0);
                    assert_eq!(path.len() - 1, t.distance(src, dst), "{alg:?} {src}->{dst}");
                    // Last-candidate choice (exercises the adaptive branch).
                    let path = walk_route(alg, &t, src, dst, |c| c.len() - 1);
                    assert_eq!(path.len() - 1, t.distance(src, dst), "{alg:?} {src}->{dst}");
                }
            }
        }
    }

    #[test]
    fn torus_dor_reaches_every_destination_minimally() {
        let t = Topology::torus(4, 4);
        for src in t.nodes() {
            for dst in t.nodes() {
                let path = walk_route(RoutingAlgorithm::TorusDor, &t, src, dst, |_| 0);
                assert_eq!(path.len() - 1, t.distance(src, dst), "{src}->{dst}");
            }
        }
    }

    #[test]
    fn torus_min_adaptive_reaches_every_destination_minimally() {
        // Square and rectangular tori, greedy-first and last-candidate
        // choices (the latter exercises the adaptive branch).
        for t in [Topology::torus(4, 4), Topology::torus(5, 3)] {
            for src in t.nodes() {
                for dst in t.nodes() {
                    for pick_last in [false, true] {
                        let path =
                            walk_route(RoutingAlgorithm::TorusMinAdaptive, &t, src, dst, |c| {
                                if pick_last {
                                    c.len() - 1
                                } else {
                                    0
                                }
                            });
                        assert_eq!(path.len() - 1, t.distance(src, dst), "{src}->{dst}");
                    }
                }
            }
        }
    }

    #[test]
    fn torus_min_adaptive_offers_both_dimensions() {
        let t = Topology::torus(4, 4);
        // (0,0) -> (2,2): X and Y both unresolved -> two candidates. The X
        // offset is a tie (2 hops either way), which goes east like DOR.
        let cands = route(
            RoutingAlgorithm::TorusMinAdaptive,
            &t,
            NodeId(0),
            NodeId(0),
            NodeId(10),
        );
        assert_eq!(cands, vec![Port::East, Port::South]);
        // (0,0) -> (3,3): both dimensions minimal via the wrap links.
        let cands = route(
            RoutingAlgorithm::TorusMinAdaptive,
            &t,
            NodeId(0),
            NodeId(0),
            NodeId(15),
        );
        assert_eq!(cands, vec![Port::West, Port::North]);
        // Resolved X: only the Y move remains, exactly like DOR.
        let cands = route(
            RoutingAlgorithm::TorusMinAdaptive,
            &t,
            NodeId(2),
            NodeId(0),
            NodeId(10),
        );
        assert_eq!(cands, vec![Port::South]);
    }

    #[test]
    fn torus_min_adaptive_candidates_are_productive() {
        let t = Topology::torus(5, 4);
        for src in t.nodes() {
            for dst in t.nodes() {
                if src == dst {
                    continue;
                }
                for p in route(RoutingAlgorithm::TorusMinAdaptive, &t, src, src, dst) {
                    let n = t.neighbor(src, p).expect("torus ports always wired");
                    assert_eq!(
                        t.distance(n, dst) + 1,
                        t.distance(src, dst),
                        "unproductive candidate {p} at {src} toward {dst}"
                    );
                }
            }
        }
    }

    #[test]
    fn torus_min_adaptive_routes_around_a_dead_wrap_link() {
        use crate::fault::{FaultEvent, FaultPlan, FaultTarget, LinkState};
        let t = Topology::torus(4, 4);
        // Kill the X wrap link out of (3,0) east to (0,0).
        let plan = FaultPlan::new(vec![FaultEvent {
            start: 0,
            duration: None,
            target: FaultTarget::Link {
                node: NodeId(3),
                port: Port::East,
            },
        }])
        .unwrap();
        let mut ls = LinkState::healthy(16);
        ls.recompute(&t, &plan, 0);
        // From (3,0) to (0,1): east (wrap) and south both minimal; only
        // south survives the fault.
        let cands = route_live(
            RoutingAlgorithm::TorusMinAdaptive,
            &t,
            &ls,
            NodeId(3),
            NodeId(3),
            NodeId(4),
        );
        assert_eq!(cands, vec![Port::South]);
        // DOR has no alternative at the same hop: unroutable.
        let cands = route_live(
            RoutingAlgorithm::TorusDor,
            &t,
            &ls,
            NodeId(3),
            NodeId(3),
            NodeId(4),
        );
        assert!(cands.is_empty(), "DOR cannot sidestep its dead X link");
    }

    #[test]
    fn for_topology_maps_each_family() {
        use crate::topology::TopologyKind::{Mesh, Torus};
        // Identity when already supported.
        for (_, alg) in RoutingAlgorithm::NAMED {
            for kind in [Mesh, Torus] {
                let eq = alg.for_topology(kind);
                assert!(eq.supports(kind), "{alg:?} -> {eq:?} must support {kind:?}");
                if alg.supports(kind) {
                    assert_eq!(eq, alg);
                }
                // The mapping preserves adaptivity.
                assert_eq!(eq.is_adaptive(), alg.is_adaptive(), "{alg:?} on {kind:?}");
            }
        }
        assert_eq!(
            RoutingAlgorithm::Xy.for_topology(Torus),
            RoutingAlgorithm::TorusDor
        );
        assert_eq!(
            RoutingAlgorithm::OddEven.for_topology(Torus),
            RoutingAlgorithm::TorusMinAdaptive
        );
        assert_eq!(
            RoutingAlgorithm::TorusDor.for_topology(Mesh),
            RoutingAlgorithm::Xy
        );
        assert_eq!(
            RoutingAlgorithm::TorusMinAdaptive.for_topology(Mesh),
            RoutingAlgorithm::OddEven
        );
    }

    #[test]
    fn west_first_takes_west_hops_first() {
        let t = Topology::mesh(4, 4);
        // From (3,0) to (0,2): must head west while any west hop remains.
        let cands = route(
            RoutingAlgorithm::WestFirst,
            &t,
            NodeId(3),
            NodeId(3),
            NodeId(8),
        );
        assert_eq!(cands, vec![Port::West]);
    }

    #[test]
    fn west_first_is_adaptive_when_no_west_hops() {
        let t = Topology::mesh(4, 4);
        // From (0,0) to (2,2): east and south both minimal and allowed.
        let cands = route(
            RoutingAlgorithm::WestFirst,
            &t,
            NodeId(0),
            NodeId(0),
            NodeId(10),
        );
        assert!(cands.contains(&Port::East) && cands.contains(&Port::South));
    }

    #[test]
    fn north_last_defers_north() {
        let t = Topology::mesh(4, 4);
        // From (0,2) to (2,0): north needed but east available -> east only.
        let cands = route(
            RoutingAlgorithm::NorthLast,
            &t,
            NodeId(8),
            NodeId(8),
            NodeId(2),
        );
        assert_eq!(cands, vec![Port::East]);
        // Aligned in x: now north is permitted.
        let cands = route(
            RoutingAlgorithm::NorthLast,
            &t,
            NodeId(10),
            NodeId(8),
            NodeId(2),
        );
        assert_eq!(cands, vec![Port::North]);
    }

    #[test]
    fn negative_first_takes_negative_hops_first() {
        let t = Topology::mesh(4, 4);
        // From (1,1) to (0,3): west (negative) before south (positive).
        let cands = route(
            RoutingAlgorithm::NegativeFirst,
            &t,
            NodeId(5),
            NodeId(5),
            NodeId(12),
        );
        assert_eq!(cands, vec![Port::West]);
        // From (0,1) to (2,3): only positive hops remain -> adaptive.
        let cands = route(
            RoutingAlgorithm::NegativeFirst,
            &t,
            NodeId(4),
            NodeId(4),
            NodeId(14),
        );
        assert!(cands.contains(&Port::East) && cands.contains(&Port::South));
    }

    /// Track the direction of travel along a walk and assert odd-even's turn
    /// restrictions are never violated.
    #[test]
    fn odd_even_never_takes_forbidden_turns() {
        let t = Topology::mesh(6, 6);
        for src in t.nodes() {
            for dst in t.nodes() {
                for pick_last in [false, true] {
                    let path = walk_route(RoutingAlgorithm::OddEven, &t, src, dst, |c| {
                        if pick_last {
                            c.len() - 1
                        } else {
                            0
                        }
                    });
                    let mut prev_dir: Option<Port> = None;
                    for win in path.windows(2) {
                        let (a, b) = (t.coord(win[0]), t.coord(win[1]));
                        let dir = if b.x > a.x {
                            Port::East
                        } else if b.x < a.x {
                            Port::West
                        } else if b.y < a.y {
                            Port::North
                        } else {
                            Port::South
                        };
                        if let Some(p) = prev_dir {
                            let col_even = a.x % 2 == 0;
                            let en_es =
                                p == Port::East && (dir == Port::North || dir == Port::South);
                            let nw_sw = (p == Port::North || p == Port::South) && dir == Port::West;
                            assert!(!en_es || !col_even, "EN/ES turn in even column at {a}");
                            assert!(!nw_sw || col_even, "NW/SW turn in odd column at {a}");
                        }
                        prev_dir = Some(dir);
                    }
                }
            }
        }
    }

    #[test]
    fn candidates_are_always_productive() {
        let t = Topology::mesh(5, 5);
        for alg in MESH_ALGS {
            for src in t.nodes() {
                for dst in t.nodes() {
                    if src == dst {
                        continue;
                    }
                    for p in route(alg, &t, src, src, dst) {
                        let n = t.neighbor(src, p).expect("candidate off edge");
                        assert_eq!(
                            t.distance(n, dst) + 1,
                            t.distance(src, dst),
                            "{alg:?}: unproductive candidate {p} at {src} toward {dst}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn torus_dor_on_mesh_panics() {
        let t = Topology::mesh(4, 4);
        let _ = route(
            RoutingAlgorithm::TorusDor,
            &t,
            NodeId(0),
            NodeId(0),
            NodeId(1),
        );
    }

    #[test]
    fn route_live_excludes_dead_ports_and_reports_unroutable() {
        use crate::fault::{FaultEvent, FaultPlan, FaultTarget, LinkState};
        let t = Topology::mesh(4, 4);
        // Kill the link east out of (0,0).
        let plan = FaultPlan::new(vec![FaultEvent {
            start: 0,
            duration: None,
            target: FaultTarget::Link {
                node: NodeId(0),
                port: Port::East,
            },
        }])
        .unwrap();
        let mut ls = LinkState::healthy(16);
        ls.recompute(&t, &plan, 0);
        // West-First from (0,0) to (2,2) offers east+south; east is dead, so
        // only south survives — a minimal alternative exists.
        let cands = route_live(
            RoutingAlgorithm::WestFirst,
            &t,
            &ls,
            NodeId(0),
            NodeId(0),
            NodeId(10),
        );
        assert_eq!(cands, vec![Port::South]);
        // XY from (0,0) to (1,0) has only the dead port: unroutable.
        let cands = route_live(
            RoutingAlgorithm::Xy,
            &t,
            &ls,
            NodeId(0),
            NodeId(0),
            NodeId(1),
        );
        assert!(
            cands.is_empty(),
            "dead-only candidate set must come back empty"
        );
        // Local delivery at the destination is never filtered.
        let cands = route_live(
            RoutingAlgorithm::Xy,
            &t,
            &ls,
            NodeId(0),
            NodeId(4),
            NodeId(0),
        );
        assert_eq!(cands, vec![Port::Local]);
    }

    #[test]
    fn adaptivity_flags() {
        assert!(!RoutingAlgorithm::Xy.is_adaptive());
        assert!(RoutingAlgorithm::OddEven.is_adaptive());
        assert!(RoutingAlgorithm::WestFirst.is_adaptive());
        assert!(!RoutingAlgorithm::TorusDor.is_adaptive());
        assert!(RoutingAlgorithm::TorusMinAdaptive.is_adaptive());
        assert!(!RoutingAlgorithm::Table.is_adaptive());
    }

    #[test]
    fn tables_walk_every_pair_minimally() {
        for topo in [Topology::mesh(4, 4), Topology::torus(4, 4)] {
            let tables = RoutingTables::build(&topo, None, RoutingTables::K_DEFAULT);
            for src in topo.nodes() {
                for dst in topo.nodes() {
                    if src == dst {
                        assert!(tables.paths(src, dst).is_empty());
                        continue;
                    }
                    let dist = topo.distance(src, dst);
                    let list = tables.paths(src, dst);
                    assert!(!list.is_empty(), "pristine fabric: {src}->{dst} has paths");
                    assert!(list.len() <= RoutingTables::K_DEFAULT);
                    for path in list {
                        assert_eq!(path.len(), dist, "{src}->{dst} path must be minimal");
                        let mut node = src;
                        for &port in path {
                            node = topo.neighbor(node, port).expect("path on the grid");
                        }
                        assert_eq!(node, dst, "{src}->{dst} path must end at dst");
                    }
                    // next_hop walks the selected path to the destination.
                    let mut cur = src;
                    for _ in 0..dist {
                        let p = tables.next_hop(&topo, cur, src, dst).expect("on-path hop");
                        assert_ne!(p, Port::Local);
                        cur = topo.neighbor(cur, p).unwrap();
                    }
                    assert_eq!(cur, dst);
                    assert_eq!(tables.next_hop(&topo, dst, src, dst), Some(Port::Local));
                }
            }
        }
    }

    #[test]
    fn mesh_tables_use_only_west_first_legal_turns() {
        let t = Topology::mesh(5, 5);
        let tables = RoutingTables::build(&t, None, 8);
        for src in t.nodes() {
            for dst in t.nodes() {
                for path in tables.paths(src, dst) {
                    // West-First forbids N->W and S->W turns: once any
                    // vertical hop is taken, no west hop may follow.
                    let first_vertical = path
                        .iter()
                        .position(|&p| p == Port::North || p == Port::South);
                    if let Some(i) = first_vertical {
                        assert!(
                            path[i..].iter().all(|&p| p != Port::West),
                            "{src}->{dst}: west hop after a vertical hop in {path:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tables_route_around_a_dead_link_and_report_disconnection() {
        use crate::fault::{FaultEvent, FaultPlan, FaultTarget, LinkState};
        let t = Topology::mesh(4, 4);
        let plan = FaultPlan::new(vec![FaultEvent {
            start: 0,
            duration: None,
            target: FaultTarget::Link {
                node: NodeId(0),
                port: Port::East,
            },
        }])
        .unwrap();
        let mut ls = LinkState::healthy(16);
        ls.recompute(&t, &plan, 0);
        let tables = RoutingTables::build(&t, Some(&ls), RoutingTables::K_DEFAULT);
        // (0,0)->(1,0) straight east is dead; the recomputed table has no
        // West-First-legal minimal detour (south-then-north is non-minimal),
        // so the pair reads disconnected and the packet drains.
        assert!(tables.paths(NodeId(0), NodeId(1)).is_empty());
        assert_eq!(tables.next_hop(&t, NodeId(0), NodeId(0), NodeId(1)), None);
        // (0,0)->(1,1) still has the south-then-east path.
        let sel = tables
            .selected_path(NodeId(0), NodeId(5))
            .expect("minimal detour survives");
        assert_eq!(sel, &[Port::South, Port::East]);
        // Pairs untouched by the fault keep their full path sets.
        assert!(!tables.paths(NodeId(5), NodeId(10)).is_empty());
    }

    #[test]
    fn table_path_selection_is_deterministic_and_spread() {
        let t = Topology::mesh(8, 8);
        let a = RoutingTables::build(&t, None, RoutingTables::K_DEFAULT);
        let b = RoutingTables::build(&t, None, RoutingTables::K_DEFAULT);
        assert_eq!(a, b, "table builds are deterministic");
        // The pair hash spreads selections across the path list: among all
        // pairs with >= 2 paths, more than one list index gets picked.
        let mut picked = std::collections::HashSet::new();
        for src in t.nodes() {
            for dst in t.nodes() {
                let list = a.paths(src, dst);
                if list.len() >= 2 {
                    let sel = a.selected_path(src, dst).unwrap();
                    picked.insert(list.iter().position(|p| p == sel).unwrap());
                }
            }
        }
        assert!(picked.len() > 1, "selection must not collapse to index 0");
    }

    #[test]
    #[should_panic(expected = "at least one path")]
    fn table_build_rejects_k_zero() {
        let t = Topology::mesh(2, 2);
        let _ = RoutingTables::build(&t, None, 0);
    }
}
