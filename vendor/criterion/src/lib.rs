//! # criterion (offline stand-in)
//!
//! A minimal wall-clock benchmarking harness exposing the criterion call
//! surface this workspace's benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`Throughput`],
//! [`BatchSize`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! No statistics, warm-up scheduling, or HTML reports — each benchmark is
//! timed over a fixed number of iterations and the mean per-iteration time
//! is printed. Honors `CRITERION_STUB_ITERS` (default 10) so CI smoke runs
//! can drop to a single iteration.

#![warn(missing_docs)]

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

fn iters() -> u64 {
    std::env::var("CRITERION_STUB_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
        .max(1)
}

fn fmt_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// How batched-setup inputs are sized (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Function + parameter form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    total_ns: f64,
    iters_run: u64,
}

impl Bencher {
    /// Time `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let n = iters();
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.total_ns += start.elapsed().as_nanos() as f64;
        self.iters_run += n;
    }

    /// Time `routine` with a fresh `setup` product per iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let n = iters();
        for _ in 0..n {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total_ns += start.elapsed().as_nanos() as f64;
        }
        self.iters_run += n;
    }

    fn report(&self, name: &str) {
        if self.iters_run > 0 {
            println!(
                "{name:<40} {:>12}/iter  ({} iters)",
                fmt_nanos(self.total_ns / self.iters_run as f64),
                self.iters_run
            );
        }
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Annotate group throughput (accepted, ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Override sample count (accepted, ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Finish the group (no-op).
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags; a bench binary
            // invoked with `--test` must not actually run the benchmarks.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
