//! # serde (offline stand-in)
//!
//! A minimal, dependency-free re-implementation of the slice of serde this
//! workspace uses, built around an owned JSON-like [`Value`] tree instead of
//! serde's zero-copy visitor machinery. The build container has no network
//! access, so the real crates.io `serde` cannot be fetched; this crate is a
//! drop-in local path dependency.
//!
//! Supported surface:
//!
//! * `#[derive(Serialize, Deserialize)]` on structs (named, tuple, unit) and
//!   enums (unit, newtype, tuple, and struct variants), via the sibling
//!   [`serde_derive`] stub.
//! * Field attributes `#[serde(skip)]`, `#[serde(default)]`,
//!   `#[serde(default = "path")]`, and `#[serde(with = "module")]`.
//! * Hand-written `with`-modules in the real serde style: generic over
//!   [`Serializer`] / [`Deserializer`] with `serialize_some`,
//!   `serialize_none`, and `T::deserialize(d)`.
//!
//! The data model is [`Value`]; `serde_json` (also vendored) renders it to
//! text. Map entries preserve insertion order so derived serialization is
//! deterministic — the sweep engine depends on byte-identical reports.

#![warn(missing_docs)]

use std::fmt;

pub mod de;
pub mod ser;
pub mod value;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
pub use value::{from_value, to_value, DeError, SerError, ValueDeserializer, ValueSerializer};

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every value serializes into.
///
/// A JSON-compatible tree; maps preserve insertion order (derive emits
/// fields in declaration order), which keeps rendered output deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrow as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow as a u64 (accepts any non-negative integer representation).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Borrow as an i64.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    /// Borrow as an f64 (any numeric representation widens).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// Borrow as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as an array.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow as an object (entry list in insertion order).
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::value::render(self, false))
    }
}
