//! Parallel scenario-sweep engine.
//!
//! The ROADMAP's scale goal needs one command that answers "how does the
//! NoC behave across *many* operating points?" — this module provides it.
//! A [`SweepGrid`] is the cartesian product of grid sizes, topology kinds
//! (mesh and torus — each routing is mapped to its counterpart on the
//! other family, so one `routings` axis covers both), traffic points,
//! routing algorithms, (optionally) pinned DVFS levels, and
//! link-fault counts (seeded-random permanent faults, so degraded-fabric
//! operation sweeps alongside everything else). Traffic points come from
//! two axes: the classic `patterns` × `rates` product (single-phase
//! Bernoulli workloads) and the `workloads` list of explicit
//! [`WorkloadSpec`]s (bursty, pulsed, phase-changing), labeled with the
//! canonical workload grammar so report keys parse back to their specs.
//! [`SweepGrid::run`] fans the scenarios out over a pool of
//! OS threads, runs each through the classic warmup/measure/drain
//! methodology, and folds every [`WindowMetrics`] into a single
//! [`SweepReport`].
//!
//! Determinism is a hard guarantee, not a best effort:
//!
//! * each scenario derives its own RNG seed from the grid's `base_seed`
//!   and the scenario's *index* via a SplitMix64 mix, so results do not
//!   depend on which thread picks up which scenario;
//! * results are written into their index slot, so report order is the
//!   grid order regardless of completion order;
//! * consequently `run` (any thread count) and [`SweepGrid::run_serial`]
//!   produce identical reports, and serializing a report twice yields
//!   byte-identical JSON. The sweep tests pin all three properties.
//!
//! ```no_run
//! use noc_selfconf::sweep::SweepGrid;
//!
//! # fn main() -> Result<(), noc_sim::SimError> {
//! let report = SweepGrid::default().run(4)?;
//! println!("{} scenarios, peak throughput {:.3} at {}",
//!     report.aggregate.num_scenarios,
//!     report.aggregate.peak_throughput,
//!     report.aggregate.peak_throughput_scenario);
//! # Ok(())
//! # }
//! ```

use crate::par::parallel_map;
use noc_sim::{
    FaultPlan, RoutingAlgorithm, RunSummary, SimConfig, SimError, SimResult, Simulator,
    TopologyKind, TrafficPattern, WindowMetrics, WorkloadSpec,
};
use serde::{Deserialize, Serialize};

/// A cartesian grid of simulation scenarios.
///
/// Every axis is a list; the grid is the product of all of them, in
/// row-major order with `sizes` slowest and `levels` fastest. The `base`
/// config supplies everything the axes do not override (VC shape, packet
/// length, power model, DVFS regions, …).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepGrid {
    /// Template configuration for every scenario.
    pub base: SimConfig,
    /// Grid dimensions to sweep, as `(width, height)`.
    pub sizes: Vec<(usize, usize)>,
    /// Topology kinds to sweep. Non-mesh scenarios carry a `/t:<kind>`
    /// label segment; every listed routing is mapped to its counterpart on
    /// each kind via [`RoutingAlgorithm::for_topology`] (deduplicated), so
    /// one `routings` axis stays meaningful across a mixed mesh-and-torus
    /// grid. Defaults to `[Mesh]` — the value old serialized grids
    /// deserialize to, leaving them byte-identical.
    #[serde(default = "default_topology_axis")]
    pub topologies: Vec<TopologyKind>,
    /// Traffic patterns to sweep.
    pub patterns: Vec<TrafficPattern>,
    /// Injection rates to sweep, in flits/node/cycle.
    pub rates: Vec<f64>,
    /// Routing algorithms to sweep.
    pub routings: Vec<RoutingAlgorithm>,
    /// Pinned uniform DVFS levels to sweep (`None` = leave the base
    /// config's levels untouched).
    pub levels: Vec<Option<usize>>,
    /// Fault axis: numbers of seeded-random permanent link faults to sweep
    /// (`0` = pristine fabric). Each faulted scenario draws its fault set
    /// deterministically from the scenario seed, so reports stay
    /// byte-identical across reruns and thread counts.
    #[serde(default = "default_fault_axis")]
    pub faults: Vec<usize>,
    /// Explicit workload specs swept alongside the `patterns` × `rates`
    /// points (which remain single-phase Bernoulli workloads). Each entry
    /// is one extra traffic point per size/routing/level/fault combination,
    /// labeled with its canonical [`WorkloadSpec::label`]. Empty (the
    /// default, and the value old serialized grids deserialize to) leaves
    /// the grid exactly as before.
    #[serde(default)]
    pub workloads: Vec<WorkloadSpec>,
    /// Partitions each scenario's `Network::step` runs with (intra-scenario
    /// parallelism). Not serialized: results are byte-identical for every
    /// partition count — it is purely a wall-clock knob, like `threads` on
    /// the report — and keeping it out preserves report byte-identity
    /// across `--partitions` values. Deserialized grids get the field's
    /// zero default, which [`SweepGrid::scenarios`] clamps up to serial.
    #[serde(skip)]
    pub partitions: usize,
    /// Warmup cycles before the measurement window.
    pub warmup: u64,
    /// Measurement-window cycles.
    pub measure: u64,
    /// Maximum drain cycles after the window.
    pub drain: u64,
    /// Root seed; each scenario's seed is mixed from this and its index.
    pub base_seed: u64,
}

impl Default for SweepGrid {
    /// A 2×2×2 grid (8 scenarios): 4×4 and 8×8 meshes, uniform and
    /// transpose traffic, two rates, XY routing — small enough to finish
    /// in seconds, broad enough to show latency/energy trends.
    fn default() -> Self {
        SweepGrid {
            base: SimConfig::default(),
            sizes: vec![(4, 4), (8, 8)],
            topologies: default_topology_axis(),
            patterns: vec![TrafficPattern::Uniform, TrafficPattern::Transpose],
            rates: vec![0.05, 0.10],
            routings: vec![RoutingAlgorithm::Xy],
            levels: vec![None],
            faults: default_fault_axis(),
            workloads: Vec::new(),
            partitions: 1,
            warmup: 500,
            measure: 2000,
            drain: 2000,
            base_seed: 1,
        }
    }
}

/// The default fault axis: a single pristine-fabric point.
fn default_fault_axis() -> Vec<usize> {
    vec![0]
}

/// The default topology axis: meshes only, as every pre-axis grid was.
fn default_topology_axis() -> Vec<TopologyKind> {
    vec![TopologyKind::Mesh]
}

/// One fully resolved point of the grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Position in grid order (also the seed-mix input).
    pub index: usize,
    /// Human-readable identity, e.g. `8x8/transpose/r0.1/xy`.
    pub label: String,
    /// Pinned uniform DVFS level, if any.
    pub level: Option<usize>,
    /// The resolved simulator configuration (seed already mixed).
    pub config: SimConfig,
}

/// Measured outcome of one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Grid position.
    pub index: usize,
    /// Scenario identity (same format as [`Scenario::label`]).
    pub label: String,
    /// Seed the scenario ran with.
    pub seed: u64,
    /// Whether the source queues kept growing through the window.
    pub saturated: bool,
    /// Latency samples that never finished within the drain budget.
    pub unfinished_packets: u64,
    /// The measurement-window metrics.
    pub metrics: WindowMetrics,
}

/// Cross-scenario summary statistics.
///
/// Latency figures skip saturated scenarios (their latency is unbounded
/// and would poison the mean); counts record how much was skipped so the
/// aggregate can't silently hide a saturated grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepAggregate {
    /// Total scenarios run.
    pub num_scenarios: usize,
    /// Scenarios that saturated.
    pub saturated_scenarios: usize,
    /// Mean of `avg_packet_latency` over non-saturated scenarios with
    /// latency samples.
    #[serde(with = "noc_sim::stats::serde_nan")]
    pub avg_packet_latency: f64,
    /// Lowest scenario latency (cycles).
    #[serde(with = "noc_sim::stats::serde_nan")]
    pub min_latency: f64,
    /// Scenario achieving `min_latency`.
    pub min_latency_scenario: String,
    /// Highest non-saturated scenario latency (cycles).
    #[serde(with = "noc_sim::stats::serde_nan")]
    pub max_latency: f64,
    /// Scenario achieving `max_latency`.
    pub max_latency_scenario: String,
    /// Highest accepted throughput (flits/node/cycle) over all scenarios.
    pub peak_throughput: f64,
    /// Scenario achieving `peak_throughput`.
    pub peak_throughput_scenario: String,
    /// Total energy over all measurement windows (pJ).
    pub total_energy_pj: f64,
    /// Lowest energy-delay product (`avg_packet_latency · energy_pj`)
    /// among non-saturated scenarios.
    #[serde(with = "noc_sim::stats::serde_nan")]
    pub best_edp: f64,
    /// Scenario achieving `best_edp`.
    pub best_edp_scenario: String,
}

/// The single serialized artifact a sweep produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// The grid that was run (full provenance for the results).
    pub grid: SweepGrid,
    /// Thread count the sweep ran with. Not serialized: results are
    /// independent of it, and keeping it out of the report preserves
    /// byte-identity between parallel and serial runs.
    #[serde(skip)]
    pub threads: usize,
    /// Per-scenario outcomes, in grid order.
    pub scenarios: Vec<ScenarioResult>,
    /// Cross-scenario summary.
    pub aggregate: SweepAggregate,
}

/// SplitMix64 finalizer: decorrelates per-scenario seeds drawn from
/// consecutive indices.
pub(crate) fn mix_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SweepGrid {
    /// The grid's traffic points, in axis order: the `patterns` × `rates`
    /// product (pattern-major, as single-phase Bernoulli workloads labeled
    /// `<pattern>/r<rate>`), then the explicit `workloads` (labeled with the
    /// canonical workload grammar).
    fn traffic_points(&self) -> Vec<(String, WorkloadSpec)> {
        let mut points =
            Vec::with_capacity(self.patterns.len() * self.rates.len() + self.workloads.len());
        for pattern in &self.patterns {
            for &rate in &self.rates {
                // Full-precision rate (f64 Display is the shortest
                // round-trip form), so close rates never collide into one
                // label.
                points.push((
                    format!("{}/r{rate}", pattern.name()),
                    WorkloadSpec::bernoulli(pattern.clone(), rate),
                ));
            }
        }
        for workload in &self.workloads {
            points.push((workload.label(), workload.clone()));
        }
        points
    }

    /// The routing algorithms the grid actually runs on `kind`: every entry
    /// of `routings` mapped through [`RoutingAlgorithm::for_topology`],
    /// deduplicated preserving first occurrence (two mesh algorithms may
    /// share one torus counterpart).
    fn routings_for(&self, kind: TopologyKind) -> Vec<RoutingAlgorithm> {
        let mut out = Vec::with_capacity(self.routings.len());
        for &r in &self.routings {
            let eff = r.for_topology(kind);
            if !out.contains(&eff) {
                out.push(eff);
            }
        }
        out
    }

    /// Number of scenarios the grid expands to.
    pub fn len(&self) -> usize {
        let routing_points: usize = self
            .topologies
            .iter()
            .map(|&t| self.routings_for(t).len())
            .sum();
        self.sizes.len()
            * (self.patterns.len() * self.rates.len() + self.workloads.len())
            * routing_points
            * self.levels.len()
            * self.faults.len()
    }

    /// Whether the grid is empty (no traffic point or another axis empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expand the grid into its scenario list, in grid order.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(self.len());
        let mut index = 0;
        let traffic_points = self.traffic_points();
        for &(w, h) in &self.sizes {
            for &kind in &self.topologies {
                let routings = self.routings_for(kind);
                for (traffic_label, workload) in &traffic_points {
                    for &routing in &routings {
                        for &level in &self.levels {
                            for &faults in &self.faults {
                                let seed = mix_seed(self.base_seed, index as u64);
                                let mut config = self
                                    .base
                                    .clone()
                                    .with_size(w, h)
                                    .with_topology(kind)
                                    .with_workload(workload.clone())
                                    .with_routing(routing)
                                    .with_partitions(self.partitions.max(1))
                                    .with_seed(seed);
                                if faults > 0 {
                                    // The fault draw is salted off the
                                    // scenario seed so it is decorrelated
                                    // from traffic yet fully reproducible.
                                    let plan = FaultPlan::random_links(
                                        &config.topology(),
                                        faults,
                                        mix_seed(seed, 0xFA),
                                        0,
                                        None,
                                    );
                                    config = config.with_faults(plan);
                                }
                                let mut label =
                                    format!("{w}x{h}/{traffic_label}/{}", routing.name());
                                if kind != TopologyKind::Mesh {
                                    label.push_str(&format!("/t:{}", kind.name()));
                                }
                                if let Some(l) = level {
                                    label.push_str(&format!("/L{l}"));
                                }
                                if faults > 0 {
                                    label.push_str(&format!("/f{faults}"));
                                }
                                out.push(Scenario {
                                    index,
                                    label,
                                    level,
                                    config,
                                });
                                index += 1;
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Check every scenario before any simulation runs, so a grid with an
    /// invalid point fails in microseconds instead of after the valid
    /// scenarios have burned their full simulation budgets.
    ///
    /// # Errors
    /// Returns the first (in grid order) invalid scenario, with its label.
    pub fn validate(&self) -> SimResult<()> {
        self.validate_scenarios(&self.scenarios())
    }

    pub(crate) fn validate_scenarios(&self, scenarios: &[Scenario]) -> SimResult<()> {
        let num_levels = self.base.vf_table.num_levels();
        for scenario in scenarios {
            scenario.config.validate().map_err(|e| {
                // `InvalidConfig` prefixes its own Display; strip the inner
                // copy so the wrapped message reads cleanly.
                let msg = e.to_string();
                let msg = msg.strip_prefix("invalid configuration: ").unwrap_or(&msg);
                SimError::InvalidConfig(format!("scenario {}: {msg}", scenario.label))
            })?;
            if let Some(level) = scenario.level {
                if level >= num_levels {
                    return Err(SimError::VfLevelOutOfRange {
                        level,
                        levels: num_levels,
                    });
                }
            }
        }
        Ok(())
    }

    /// Run one scenario to completion.
    ///
    /// Public so the serve layer can execute scenarios individually (each
    /// one behind its own cache-key lookup) while reusing the exact
    /// simulation path the batch runners take — the cached and uncached
    /// worlds stay byte-identical by construction.
    ///
    /// # Errors
    /// Returns the scenario's configuration error, if any.
    pub fn run_scenario(&self, scenario: &Scenario) -> SimResult<ScenarioResult> {
        let mut sim = Simulator::new(scenario.config.clone())?;
        if let Some(level) = scenario.level {
            sim.set_all_levels(level)?;
        }
        let RunSummary {
            window,
            unfinished_packets,
            saturated,
        } = sim.run_classic(self.warmup, self.measure, self.drain);
        Ok(ScenarioResult {
            index: scenario.index,
            label: scenario.label.clone(),
            seed: scenario.config.seed,
            saturated,
            unfinished_packets,
            metrics: window,
        })
    }

    /// Run the whole grid on `threads` OS threads.
    ///
    /// Results are identical for every `threads` value (including 1); see
    /// the module docs for why.
    ///
    /// # Errors
    /// Returns the first (in grid order) scenario configuration error.
    pub fn run(&self, threads: usize) -> SimResult<SweepReport> {
        let scenarios = self.scenarios();
        self.validate_scenarios(&scenarios)?;
        let results: SimResult<Vec<ScenarioResult>> = parallel_map(scenarios.len(), threads, |i| {
            self.run_scenario(&scenarios[i])
        })
        .into_iter()
        .collect();
        Ok(self.report(results?, threads.clamp(1, scenarios.len().max(1))))
    }

    /// Run the whole grid on the calling thread.
    ///
    /// # Errors
    /// Returns the first scenario configuration error.
    pub fn run_serial(&self) -> SimResult<SweepReport> {
        let scenarios = self.scenarios();
        self.validate_scenarios(&scenarios)?;
        let results: SimResult<Vec<ScenarioResult>> =
            scenarios.iter().map(|s| self.run_scenario(s)).collect();
        Ok(self.report(results?, 1))
    }

    /// Run the whole grid through `cache`, computing only the scenarios the
    /// cache cannot resolve, on `threads` OS threads.
    ///
    /// The report is byte-identical to [`SweepGrid::run`] on the same grid:
    /// cached results are the bytes a fresh run would have produced (the
    /// determinism contract), and the grid provenance embedded in the
    /// report is this grid's, not the one that populated the cache.
    ///
    /// # Errors
    /// Returns the first (in grid order) scenario configuration error.
    pub fn run_cached(
        &self,
        threads: usize,
        cache: &crate::serve::ResultCache,
    ) -> SimResult<SweepReport> {
        let scenarios = self.scenarios();
        self.validate_scenarios(&scenarios)?;
        let results: SimResult<Vec<ScenarioResult>> = parallel_map(scenarios.len(), threads, |i| {
            let scenario = &scenarios[i];
            let key =
                crate::serve::scenario_cache_key(scenario, self.warmup, self.measure, self.drain);
            cache
                .get_or_compute(&key, || self.run_scenario(scenario))
                .map(|(result, _)| result)
        })
        .into_iter()
        .collect();
        Ok(self.report(results?, threads.clamp(1, scenarios.len().max(1))))
    }

    /// Assemble a [`SweepReport`] from per-scenario results gathered
    /// elsewhere (the serve scheduler streams scenarios individually, then
    /// folds them through this to get the same report bytes a batch run
    /// emits). `scenarios` must be in grid order.
    pub fn report_from_results(
        &self,
        scenarios: Vec<ScenarioResult>,
        threads: usize,
    ) -> SweepReport {
        self.report(scenarios, threads)
    }

    fn report(&self, scenarios: Vec<ScenarioResult>, threads: usize) -> SweepReport {
        let aggregate = aggregate(&scenarios);
        SweepReport {
            grid: self.clone(),
            threads,
            scenarios,
            aggregate,
        }
    }
}

fn aggregate(results: &[ScenarioResult]) -> SweepAggregate {
    let mut agg = SweepAggregate {
        num_scenarios: results.len(),
        saturated_scenarios: results.iter().filter(|r| r.saturated).count(),
        avg_packet_latency: f64::NAN,
        min_latency: f64::NAN,
        min_latency_scenario: String::new(),
        max_latency: f64::NAN,
        max_latency_scenario: String::new(),
        peak_throughput: 0.0,
        peak_throughput_scenario: String::new(),
        total_energy_pj: results.iter().map(|r| r.metrics.energy_pj).sum(),
        best_edp: f64::NAN,
        best_edp_scenario: String::new(),
    };
    let mut latency_sum = 0.0;
    let mut latency_count = 0usize;
    for r in results {
        if r.metrics.throughput > agg.peak_throughput {
            agg.peak_throughput = r.metrics.throughput;
            agg.peak_throughput_scenario = r.label.clone();
        }
        let lat = r.metrics.avg_packet_latency;
        if r.saturated || !lat.is_finite() {
            continue;
        }
        latency_sum += lat;
        latency_count += 1;
        if agg.min_latency.is_nan() || lat < agg.min_latency {
            agg.min_latency = lat;
            agg.min_latency_scenario = r.label.clone();
        }
        if agg.max_latency.is_nan() || lat > agg.max_latency {
            agg.max_latency = lat;
            agg.max_latency_scenario = r.label.clone();
        }
        let edp = lat * r.metrics.energy_pj;
        if agg.best_edp.is_nan() || edp < agg.best_edp {
            agg.best_edp = edp;
            agg.best_edp_scenario = r.label.clone();
        }
    }
    if latency_count > 0 {
        agg.avg_packet_latency = latency_sum / latency_count as f64;
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_order_and_seed_mix_are_stable() {
        let grid = SweepGrid::default();
        let scenarios = grid.scenarios();
        assert_eq!(scenarios.len(), 8);
        assert_eq!(scenarios.len(), grid.len());
        // Labels are unique and in row-major order.
        assert_eq!(scenarios[0].label, "4x4/uniform/r0.05/xy");
        assert_eq!(scenarios[7].label, "8x8/transpose/r0.1/xy");
        // Seeds differ across scenarios but are reproducible.
        let again = grid.scenarios();
        for (a, b) in scenarios.iter().zip(&again) {
            assert_eq!(a.config.seed, b.config.seed);
        }
        let mut seeds: Vec<u64> = scenarios.iter().map(|s| s.config.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 8, "seed mix must not collide on small grids");
    }

    #[test]
    fn fault_axis_expands_and_labels_scenarios() {
        let grid = SweepGrid {
            sizes: vec![(4, 4)],
            patterns: vec![TrafficPattern::Uniform],
            rates: vec![0.05],
            routings: vec![RoutingAlgorithm::Xy],
            levels: vec![None],
            faults: vec![0, 2],
            ..SweepGrid::default()
        };
        let scenarios = grid.scenarios();
        assert_eq!(scenarios.len(), 2);
        assert_eq!(grid.len(), 2);
        assert_eq!(scenarios[0].label, "4x4/uniform/r0.05/xy");
        assert!(scenarios[0].config.fault_plan.is_empty());
        assert_eq!(scenarios[1].label, "4x4/uniform/r0.05/xy/f2");
        assert_eq!(scenarios[1].config.fault_plan.len(), 2);
        assert!(grid.validate().is_ok());
        // The fault draw is reproducible.
        assert_eq!(
            scenarios[1].config.fault_plan,
            grid.scenarios()[1].config.fault_plan
        );
    }

    #[test]
    fn workload_axis_expands_and_labels_scenarios() {
        use noc_sim::InjectionProcess;
        let bursty = WorkloadSpec::stationary(
            TrafficPattern::Uniform,
            InjectionProcess::Bursty {
                rate_on: 0.2,
                switch: 0.02,
            },
        );
        let phased = WorkloadSpec::new(vec![
            noc_sim::WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.05, 400),
            noc_sim::WorkloadPhase::bernoulli(TrafficPattern::Transpose, 0.2, 400),
        ]);
        let grid = SweepGrid {
            sizes: vec![(4, 4)],
            patterns: vec![TrafficPattern::Uniform],
            rates: vec![0.05],
            routings: vec![RoutingAlgorithm::Xy],
            levels: vec![None],
            faults: vec![0],
            workloads: vec![bursty.clone(), phased],
            ..SweepGrid::default()
        };
        assert_eq!(grid.len(), 3);
        let scenarios = grid.scenarios();
        assert_eq!(scenarios.len(), 3);
        // Pattern × rate points keep their pre-workload labels and order.
        assert_eq!(scenarios[0].label, "4x4/uniform/r0.05/xy");
        assert_eq!(scenarios[1].label, "4x4/ph[uniform:burst0.2x0.02]/xy");
        assert_eq!(
            scenarios[2].label,
            "4x4/ph[uniform:bern0.05@400|transpose:bern0.2@400]/xy"
        );
        // Report keys parse back to the specs that produced them — the
        // no-drift guarantee.
        let spec_of = |label: &str| {
            WorkloadSpec::parse(label.split('/').nth(1).unwrap()).expect("label parses")
        };
        assert_eq!(spec_of(&scenarios[1].label), bursty);
        assert_eq!(
            scenarios[1].config.traffic,
            noc_sim::TrafficSpec::Workload(bursty)
        );
        assert!(grid.validate().is_ok());
    }

    #[test]
    fn topology_axis_expands_and_labels_scenarios() {
        let grid = SweepGrid {
            sizes: vec![(4, 4)],
            topologies: vec![TopologyKind::Mesh, TopologyKind::Torus],
            patterns: vec![TrafficPattern::Uniform],
            rates: vec![0.05],
            routings: vec![RoutingAlgorithm::Xy, RoutingAlgorithm::OddEven],
            levels: vec![None],
            faults: vec![0, 2],
            ..SweepGrid::default()
        };
        assert_eq!(grid.len(), 8, "2 topologies x 2 routings x 2 fault points");
        let scenarios = grid.scenarios();
        assert_eq!(scenarios.len(), grid.len());
        // Mesh points keep their pre-axis labels; torus points carry the
        // /t:torus segment and the mapped routing names.
        assert_eq!(scenarios[0].label, "4x4/uniform/r0.05/xy");
        assert_eq!(scenarios[2].label, "4x4/uniform/r0.05/oddeven");
        assert_eq!(scenarios[4].label, "4x4/uniform/r0.05/torusdor/t:torus");
        assert_eq!(scenarios[5].label, "4x4/uniform/r0.05/torusdor/t:torus/f2");
        assert_eq!(scenarios[6].label, "4x4/uniform/r0.05/torusmin/t:torus");
        for s in &scenarios[4..] {
            assert_eq!(s.config.kind, TopologyKind::Torus);
        }
        // Torus fault plans draw from the wrap-around link pool and
        // validate against the torus.
        assert_eq!(scenarios[5].config.fault_plan.len(), 2);
        assert!(grid.validate().is_ok());

        // Two deterministic mesh routings collapse onto one torus
        // counterpart — the torus side dedups instead of duplicating labels.
        let grid = SweepGrid {
            routings: vec![RoutingAlgorithm::Xy, RoutingAlgorithm::Yx],
            faults: vec![0],
            ..grid
        };
        assert_eq!(grid.len(), 3, "xy + yx on mesh, torusdor once on torus");
        let labels: Vec<_> = grid.scenarios().into_iter().map(|s| s.label).collect();
        assert_eq!(
            labels,
            vec![
                "4x4/uniform/r0.05/xy",
                "4x4/uniform/r0.05/yx",
                "4x4/uniform/r0.05/torusdor/t:torus",
            ]
        );
    }

    #[test]
    fn table_routing_spans_both_topology_families() {
        // Table routing supports mesh and torus alike, so one `table` entry
        // on a mixed-topology grid yields one scenario per kind — no
        // for_topology remapping, no dedup collapse — and the label segment
        // round-trips through the routing name registry.
        let grid = SweepGrid {
            sizes: vec![(4, 4)],
            topologies: vec![TopologyKind::Mesh, TopologyKind::Torus],
            patterns: vec![TrafficPattern::Uniform],
            rates: vec![0.05],
            routings: vec![RoutingAlgorithm::Table],
            levels: vec![None],
            faults: vec![0],
            ..SweepGrid::default()
        };
        assert_eq!(grid.len(), 2);
        let scenarios = grid.scenarios();
        assert_eq!(scenarios[0].label, "4x4/uniform/r0.05/table");
        assert_eq!(scenarios[1].label, "4x4/uniform/r0.05/table/t:torus");
        for s in &scenarios {
            assert_eq!(s.config.routing, RoutingAlgorithm::Table);
            let name = s.label.split('/').nth(3).unwrap();
            assert_eq!(
                RoutingAlgorithm::from_name(name),
                Some(RoutingAlgorithm::Table),
                "label segment `{name}` must parse back"
            );
        }
        assert!(grid.validate().is_ok());
    }

    #[test]
    fn legacy_grid_json_defaults_to_the_mesh_axis() {
        // A serialized pre-axis grid (no `topologies` field) must
        // deserialize to the mesh-only axis and expand identically.
        let grid = SweepGrid::default();
        let json = serde_json::to_string(&grid).unwrap();
        let stripped = json.replace("\"topologies\":[\"Mesh\"],", "");
        assert_ne!(json, stripped, "the field must have been present");
        let mut back: SweepGrid = serde_json::from_str(&stripped).unwrap();
        // `partitions` is never serialized (wall-clock knob); deserialized
        // grids carry the zero placeholder that `scenarios()` clamps to
        // serial. Normalize it before comparing the semantic fields.
        assert_eq!(back.partitions, 0);
        back.partitions = grid.partitions;
        assert_eq!(back, grid);
        assert_eq!(back.topologies, vec![TopologyKind::Mesh]);
    }

    #[test]
    fn empty_axis_means_empty_grid() {
        let grid = SweepGrid {
            rates: vec![],
            ..SweepGrid::default()
        };
        assert!(grid.is_empty());
        assert_eq!(grid.scenarios().len(), 0);
        // A workloads-only grid (no pattern × rate points) is not empty.
        let grid = SweepGrid {
            patterns: vec![],
            rates: vec![],
            workloads: vec![WorkloadSpec::bernoulli(TrafficPattern::Uniform, 0.05)],
            ..SweepGrid::default()
        };
        assert!(!grid.is_empty());
        assert_eq!(grid.len(), 2, "two sizes x one workload");
    }
}
