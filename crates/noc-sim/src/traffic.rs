//! Synthetic traffic generation.
//!
//! Classic NoC patterns (uniform random, transpose, bit-complement,
//! bit-reverse, shuffle, tornado, neighbor, hotspot) with Bernoulli packet
//! injection, plus phase-changing traces that emulate application behavior
//! (DESIGN.md substitution 1).

use crate::error::{SimError, SimResult};
use crate::flit::{Packet, PacketId};
use crate::topology::{Coord, NodeId, Topology};
use crate::trace::PacketTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A destination-selection pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Destination drawn uniformly among all other nodes.
    Uniform,
    /// `(x, y) → (y, x)`. Requires a square grid.
    Transpose,
    /// `(x, y) → (W-1-x, H-1-y)`.
    BitComplement,
    /// Node index bit-reversed. Requires a power-of-two node count.
    BitReverse,
    /// Node index rotated left by one bit. Requires a power-of-two node count.
    Shuffle,
    /// `x → (x + ⌈W/2⌉ - 1) mod W`, same row.
    Tornado,
    /// `(x, y) → ((x+1) mod W, y)`.
    Neighbor,
    /// With probability `fraction`, send to a uniformly chosen hotspot node;
    /// otherwise uniform.
    Hotspot {
        /// The hotspot destinations.
        hotspots: Vec<NodeId>,
        /// Probability a packet targets a hotspot.
        fraction: f64,
    },
}

impl TrafficPattern {
    /// The dataless patterns paired with their canonical short names — the
    /// single table behind [`TrafficPattern::name`] and
    /// [`TrafficPattern::from_name`], so parsers and label printers cannot
    /// drift apart.
    pub const NAMED: [(&'static str, TrafficPattern); 7] = [
        ("uniform", TrafficPattern::Uniform),
        ("transpose", TrafficPattern::Transpose),
        ("bitcomp", TrafficPattern::BitComplement),
        ("bitrev", TrafficPattern::BitReverse),
        ("shuffle", TrafficPattern::Shuffle),
        ("tornado", TrafficPattern::Tornado),
        ("neighbor", TrafficPattern::Neighbor),
    ];

    /// The pattern's canonical short name (hotspot patterns carry their
    /// parameters, e.g. `hotspot2f0.30`, and are not parseable back).
    pub fn name(&self) -> String {
        match self {
            TrafficPattern::Hotspot { hotspots, fraction } => {
                // Node ids are part of the name: two hotspot patterns with
                // different targets must never share a label.
                let ids: Vec<String> = hotspots.iter().map(|n| n.0.to_string()).collect();
                format!("hotspot{}f{fraction:.2}", ids.join("-"))
            }
            dataless => Self::NAMED
                .iter()
                .find(|(_, p)| p == dataless)
                .map(|(n, _)| (*n).to_string())
                .expect("every dataless pattern is in NAMED"),
        }
    }

    /// Look up a dataless pattern by its canonical short name.
    pub fn from_name(name: &str) -> Option<TrafficPattern> {
        Self::NAMED
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, p)| p.clone())
    }

    /// Check the pattern is usable on the given topology.
    ///
    /// # Errors
    /// Returns an error for patterns whose structural requirements the
    /// topology does not meet.
    pub fn validate(&self, topo: &Topology) -> SimResult<()> {
        match self {
            TrafficPattern::Transpose if topo.width() != topo.height() => Err(
                SimError::InvalidConfig("transpose traffic requires a square grid".into()),
            ),
            TrafficPattern::BitReverse | TrafficPattern::Shuffle
                if !topo.num_nodes().is_power_of_two() =>
            {
                Err(SimError::InvalidConfig(
                    "bit-reverse/shuffle traffic requires a power-of-two node count".into(),
                ))
            }
            TrafficPattern::Hotspot { hotspots, fraction } => {
                if hotspots.is_empty() {
                    return Err(SimError::InvalidConfig(
                        "hotspot list must not be empty".into(),
                    ));
                }
                if !(0.0..=1.0).contains(fraction) {
                    return Err(SimError::InvalidConfig(format!(
                        "hotspot fraction {fraction} outside [0, 1]"
                    )));
                }
                for h in hotspots {
                    if h.0 >= topo.num_nodes() {
                        return Err(SimError::NodeOutOfRange {
                            node: h.0,
                            nodes: topo.num_nodes(),
                        });
                    }
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Pick a destination for a packet injected at `src`. May return `src`
    /// itself for self-addressed patterns (e.g. transpose on the diagonal);
    /// callers typically skip such packets.
    pub fn destination(&self, topo: &Topology, src: NodeId, rng: &mut StdRng) -> NodeId {
        let n = topo.num_nodes();
        let c = topo.coord(src);
        let (w, h) = (topo.width(), topo.height());
        match self {
            TrafficPattern::Uniform => {
                if n == 1 {
                    return src; // degenerate topology: caller skips self-sends
                }
                // Uniform over the other n-1 nodes.
                let mut d = rng.gen_range(0..n - 1);
                if d >= src.0 {
                    d += 1;
                }
                NodeId(d)
            }
            TrafficPattern::Transpose => topo.node_at(Coord { x: c.y, y: c.x }),
            TrafficPattern::BitComplement => topo.node_at(Coord {
                x: w - 1 - c.x,
                y: h - 1 - c.y,
            }),
            TrafficPattern::BitReverse => {
                let bits = n.trailing_zeros();
                NodeId((src.0.reverse_bits() >> (usize::BITS - bits)) & (n - 1))
            }
            TrafficPattern::Shuffle => {
                let bits = n.trailing_zeros();
                let rotated = ((src.0 << 1) | (src.0 >> (bits - 1))) & (n - 1);
                NodeId(rotated)
            }
            TrafficPattern::Tornado => {
                let shift = w.div_ceil(2) - 1;
                topo.node_at(Coord {
                    x: (c.x + shift) % w,
                    y: c.y,
                })
            }
            TrafficPattern::Neighbor => topo.node_at(Coord {
                x: (c.x + 1) % w,
                y: c.y,
            }),
            TrafficPattern::Hotspot { hotspots, fraction } => {
                if rng.gen::<f64>() < *fraction {
                    hotspots[rng.gen_range(0..hotspots.len())]
                } else {
                    TrafficPattern::Uniform.destination(topo, src, rng)
                }
            }
        }
    }
}

/// One phase of a phase-changing trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Pattern in force during the phase.
    pub pattern: TrafficPattern,
    /// Injection rate in flits per node per cycle.
    pub rate: f64,
    /// Phase duration in cycles.
    pub cycles: u64,
}

/// Traffic specification: either a stationary pattern at a fixed injection
/// rate, or a cyclic schedule of phases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficSpec {
    /// A single stationary pattern.
    Stationary {
        /// Destination-selection pattern.
        pattern: TrafficPattern,
        /// Injection rate in flits per node per cycle.
        rate: f64,
    },
    /// A repeating schedule of phases.
    PhaseTrace {
        /// The schedule, cycled indefinitely.
        phases: Vec<Phase>,
    },
    /// An explicit packet schedule (trace-driven traffic). Packet lengths
    /// come from the trace, not the generator's `packet_len`.
    Trace(PacketTrace),
}

impl TrafficSpec {
    /// Validate the spec against a topology.
    ///
    /// # Errors
    /// Returns an error if rates are out of range, phases are empty or have
    /// zero duration, or a contained pattern is invalid for the topology.
    pub fn validate(&self, topo: &Topology) -> SimResult<()> {
        let check_rate = |rate: f64| {
            if !(0.0..=1.0).contains(&rate) {
                Err(SimError::InvalidConfig(format!(
                    "injection rate {rate} outside [0, 1] flits/node/cycle"
                )))
            } else {
                Ok(())
            }
        };
        match self {
            TrafficSpec::Stationary { pattern, rate } => {
                check_rate(*rate)?;
                pattern.validate(topo)
            }
            TrafficSpec::PhaseTrace { phases } => {
                if phases.is_empty() {
                    return Err(SimError::InvalidTrace("phase trace has no phases".into()));
                }
                for p in phases {
                    if p.cycles == 0 {
                        return Err(SimError::InvalidTrace("phase with zero duration".into()));
                    }
                    check_rate(p.rate)?;
                    p.pattern.validate(topo)?;
                }
                Ok(())
            }
            TrafficSpec::Trace(trace) => trace.validate(topo),
        }
    }

    /// The `(pattern, rate)` in force at absolute cycle `t` for rate-based
    /// specs (phase traces repeat). Returns `None` for [`TrafficSpec::Trace`],
    /// which schedules explicit packets instead of sampling a rate.
    pub fn at(&self, t: u64) -> Option<(&TrafficPattern, f64)> {
        match self {
            TrafficSpec::Stationary { pattern, rate } => Some((pattern, *rate)),
            TrafficSpec::PhaseTrace { phases } => {
                let total: u64 = phases.iter().map(|p| p.cycles).sum();
                let mut pos = t % total;
                for p in phases {
                    if pos < p.cycles {
                        return Some((&p.pattern, p.rate));
                    }
                    pos -= p.cycles;
                }
                unreachable!("phase lookup within total duration")
            }
            TrafficSpec::Trace(_) => None,
        }
    }
}

/// Generates packets cycle by cycle under a [`TrafficSpec`].
///
/// ```
/// use noc_sim::{Topology, TrafficGenerator, TrafficPattern, TrafficSpec};
///
/// let topo = Topology::mesh(4, 4);
/// let spec = TrafficSpec::Stationary { pattern: TrafficPattern::Transpose, rate: 0.5 };
/// let mut gen = TrafficGenerator::new(&topo, spec, 4, 42)?;
/// let packets = gen.tick(&topo, 0);
/// for p in &packets {
///     assert_ne!(p.src, p.dst);
/// }
/// # Ok::<(), noc_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct TrafficGenerator {
    spec: TrafficSpec,
    packet_len: u32,
    rng: StdRng,
    next_id: u64,
    generated: u64,
}

impl TrafficGenerator {
    /// Build a generator.
    ///
    /// # Errors
    /// Returns an error if the spec is invalid for the topology or
    /// `packet_len == 0`.
    pub fn new(topo: &Topology, spec: TrafficSpec, packet_len: u32, seed: u64) -> SimResult<Self> {
        if packet_len == 0 {
            return Err(SimError::InvalidConfig(
                "packet length must be positive".into(),
            ));
        }
        spec.validate(topo)?;
        Ok(TrafficGenerator {
            spec,
            packet_len,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
            generated: 0,
        })
    }

    /// Packet length in flits.
    pub fn packet_len(&self) -> u32 {
        self.packet_len
    }

    /// Total packets generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Replace the traffic spec at runtime (used by phase-less experiments
    /// that steer traffic externally).
    ///
    /// # Errors
    /// Returns an error if the new spec is invalid for the topology.
    pub fn set_spec(&mut self, topo: &Topology, spec: TrafficSpec) -> SimResult<()> {
        spec.validate(topo)?;
        self.spec = spec;
        Ok(())
    }

    /// Generate the packets created at cycle `t`. For rate-based specs,
    /// each node flips a Bernoulli coin with probability `rate / packet_len`
    /// so the *flit* injection rate matches the spec (self-addressed packets
    /// are skipped). For trace-driven specs, the scheduled events are
    /// emitted verbatim.
    pub fn tick(&mut self, topo: &Topology, t: u64) -> Vec<Packet> {
        if let TrafficSpec::Trace(trace) = &self.spec {
            let mut out = Vec::new();
            for e in trace.events_at(t) {
                out.push(Packet {
                    id: PacketId(self.next_id),
                    src: e.src,
                    dst: e.dst,
                    len_flits: e.len_flits,
                    created_at: t,
                });
                self.next_id += 1;
                self.generated += 1;
            }
            return out;
        }
        let (pattern, rate) = {
            let (p, r) = self.spec.at(t).expect("rate-based spec");
            (p.clone(), r)
        };
        let p_packet = rate / self.packet_len as f64;
        let mut out = Vec::new();
        for src in topo.nodes() {
            if self.rng.gen::<f64>() >= p_packet {
                continue;
            }
            let dst = pattern.destination(topo, src, &mut self.rng);
            if dst == src {
                continue;
            }
            out.push(Packet {
                id: PacketId(self.next_id),
                src,
                dst,
                len_flits: self.packet_len,
                created_at: t,
            });
            self.next_id += 1;
            self.generated += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn uniform_on_single_node_returns_src() {
        let t = Topology::mesh(1, 1);
        let mut r = rng();
        assert_eq!(
            TrafficPattern::Uniform.destination(&t, NodeId(0), &mut r),
            NodeId(0)
        );
        // And the generator therefore produces no packets.
        let spec = TrafficSpec::Stationary {
            pattern: TrafficPattern::Uniform,
            rate: 0.9,
        };
        let mut g = TrafficGenerator::new(&t, spec, 1, 0).unwrap();
        for c in 0..100 {
            assert!(g.tick(&t, c).is_empty());
        }
    }

    #[test]
    fn uniform_never_targets_self() {
        let t = Topology::mesh(4, 4);
        let mut r = rng();
        for _ in 0..500 {
            let d = TrafficPattern::Uniform.destination(&t, NodeId(5), &mut r);
            assert_ne!(d, NodeId(5));
            assert!(d.0 < 16);
        }
    }

    #[test]
    fn uniform_covers_all_destinations() {
        let t = Topology::mesh(4, 4);
        let mut r = rng();
        let mut seen = [false; 16];
        for _ in 0..2000 {
            seen[TrafficPattern::Uniform.destination(&t, NodeId(0), &mut r).0] = true;
        }
        assert!(
            seen.iter().skip(1).all(|&s| s),
            "all non-self nodes should be hit"
        );
        assert!(!seen[0]);
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let t = Topology::mesh(4, 4);
        let mut r = rng();
        // (1,2) = node 9 -> (2,1) = node 6.
        assert_eq!(
            TrafficPattern::Transpose.destination(&t, NodeId(9), &mut r),
            NodeId(6)
        );
    }

    #[test]
    fn bit_complement_mirrors_grid() {
        let t = Topology::mesh(4, 4);
        let mut r = rng();
        assert_eq!(
            TrafficPattern::BitComplement.destination(&t, NodeId(0), &mut r),
            NodeId(15)
        );
        assert_eq!(
            TrafficPattern::BitComplement.destination(&t, NodeId(5), &mut r),
            NodeId(10)
        );
    }

    #[test]
    fn bit_reverse_reverses_index_bits() {
        let t = Topology::mesh(4, 4);
        let mut r = rng();
        // 16 nodes -> 4 bits; 0b0001 -> 0b1000 = 8.
        assert_eq!(
            TrafficPattern::BitReverse.destination(&t, NodeId(1), &mut r),
            NodeId(8)
        );
        assert_eq!(
            TrafficPattern::BitReverse.destination(&t, NodeId(6), &mut r),
            NodeId(6)
        );
    }

    #[test]
    fn shuffle_rotates_index_bits() {
        let t = Topology::mesh(4, 4);
        let mut r = rng();
        // 0b1000 -> 0b0001.
        assert_eq!(
            TrafficPattern::Shuffle.destination(&t, NodeId(8), &mut r),
            NodeId(1)
        );
        // 0b0101 -> 0b1010.
        assert_eq!(
            TrafficPattern::Shuffle.destination(&t, NodeId(5), &mut r),
            NodeId(10)
        );
    }

    #[test]
    fn tornado_shifts_half_row() {
        let t = Topology::mesh(8, 8);
        let mut r = rng();
        // shift = ceil(8/2)-1 = 3: x=0 -> x=3, same row.
        assert_eq!(
            TrafficPattern::Tornado.destination(&t, NodeId(0), &mut r),
            NodeId(3)
        );
    }

    #[test]
    fn neighbor_wraps_row() {
        let t = Topology::mesh(4, 4);
        let mut r = rng();
        assert_eq!(
            TrafficPattern::Neighbor.destination(&t, NodeId(3), &mut r),
            NodeId(0)
        );
        assert_eq!(
            TrafficPattern::Neighbor.destination(&t, NodeId(0), &mut r),
            NodeId(1)
        );
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let t = Topology::mesh(4, 4);
        let mut r = rng();
        let p = TrafficPattern::Hotspot {
            hotspots: vec![NodeId(10)],
            fraction: 0.5,
        };
        let hits = (0..2000)
            .filter(|_| p.destination(&t, NodeId(0), &mut r) == NodeId(10))
            .count();
        // ~50% + small uniform contribution.
        assert!(
            (800..1300).contains(&hits),
            "hotspot hits {hits} outside expectation"
        );
    }

    #[test]
    fn pattern_validation_catches_mismatches() {
        let rect = Topology::mesh(4, 3);
        assert!(TrafficPattern::Transpose.validate(&rect).is_err());
        assert!(TrafficPattern::BitReverse.validate(&rect).is_err());
        assert!(TrafficPattern::Uniform.validate(&rect).is_ok());
        let square = Topology::mesh(4, 4);
        assert!(TrafficPattern::Transpose.validate(&square).is_ok());
        assert!(TrafficPattern::Hotspot {
            hotspots: vec![],
            fraction: 0.5
        }
        .validate(&square)
        .is_err());
        assert!(TrafficPattern::Hotspot {
            hotspots: vec![NodeId(99)],
            fraction: 0.5
        }
        .validate(&square)
        .is_err());
        assert!(TrafficPattern::Hotspot {
            hotspots: vec![NodeId(0)],
            fraction: 1.5
        }
        .validate(&square)
        .is_err());
    }

    #[test]
    fn generator_matches_requested_rate() {
        let t = Topology::mesh(4, 4);
        let spec = TrafficSpec::Stationary {
            pattern: TrafficPattern::Uniform,
            rate: 0.2,
        };
        let mut g = TrafficGenerator::new(&t, spec, 4, 7).unwrap();
        let cycles = 20_000u64;
        let mut flits = 0u64;
        for c in 0..cycles {
            flits += g
                .tick(&t, c)
                .iter()
                .map(|p| p.len_flits as u64)
                .sum::<u64>();
        }
        let rate = flits as f64 / (cycles as f64 * 16.0);
        assert!(
            (rate - 0.2).abs() < 0.01,
            "measured flit rate {rate}, wanted 0.2"
        );
    }

    #[test]
    fn phase_trace_switches_patterns() {
        let t = Topology::mesh(4, 4);
        let spec = TrafficSpec::PhaseTrace {
            phases: vec![
                Phase {
                    pattern: TrafficPattern::Uniform,
                    rate: 0.1,
                    cycles: 100,
                },
                Phase {
                    pattern: TrafficPattern::Transpose,
                    rate: 0.4,
                    cycles: 50,
                },
            ],
        };
        assert!(spec.validate(&t).is_ok());
        assert_eq!(spec.at(0).unwrap().1, 0.1);
        assert_eq!(spec.at(99).unwrap().1, 0.1);
        assert_eq!(spec.at(100).unwrap().1, 0.4);
        assert_eq!(spec.at(149).unwrap().1, 0.4);
        // Wraps around.
        assert_eq!(spec.at(150).unwrap().1, 0.1);
    }

    #[test]
    fn invalid_specs_rejected() {
        let t = Topology::mesh(4, 4);
        assert!(TrafficSpec::Stationary {
            pattern: TrafficPattern::Uniform,
            rate: 1.5
        }
        .validate(&t)
        .is_err());
        assert!(TrafficSpec::PhaseTrace { phases: vec![] }
            .validate(&t)
            .is_err());
        assert!(TrafficSpec::PhaseTrace {
            phases: vec![Phase {
                pattern: TrafficPattern::Uniform,
                rate: 0.1,
                cycles: 0
            }]
        }
        .validate(&t)
        .is_err());
        assert!(TrafficGenerator::new(
            &t,
            TrafficSpec::Stationary {
                pattern: TrafficPattern::Uniform,
                rate: 0.1
            },
            0,
            1
        )
        .is_err());
    }

    #[test]
    fn trace_spec_emits_scheduled_packets() {
        use crate::trace::{PacketTrace, TraceEvent};
        let t = Topology::mesh(4, 4);
        let trace = PacketTrace::new(
            vec![
                TraceEvent {
                    cycle: 1,
                    src: NodeId(0),
                    dst: NodeId(5),
                    len_flits: 3,
                },
                TraceEvent {
                    cycle: 1,
                    src: NodeId(2),
                    dst: NodeId(9),
                    len_flits: 1,
                },
                TraceEvent {
                    cycle: 4,
                    src: NodeId(7),
                    dst: NodeId(0),
                    len_flits: 2,
                },
            ],
            Some(10),
        )
        .unwrap();
        let mut g = TrafficGenerator::new(&t, TrafficSpec::Trace(trace), 5, 0).unwrap();
        assert!(g.tick(&t, 0).is_empty());
        let at1 = g.tick(&t, 1);
        assert_eq!(at1.len(), 2);
        assert_eq!(at1[0].len_flits, 3, "trace length overrides packet_len");
        assert_eq!(g.tick(&t, 4).len(), 1);
        // Repeats at cycle 11.
        assert_eq!(g.tick(&t, 11).len(), 2);
        assert_eq!(g.generated(), 5);
    }

    #[test]
    fn trace_spec_validates_topology() {
        use crate::trace::{PacketTrace, TraceEvent};
        let t = Topology::mesh(2, 2);
        let trace = PacketTrace::new(
            vec![TraceEvent {
                cycle: 0,
                src: NodeId(0),
                dst: NodeId(99),
                len_flits: 1,
            }],
            None,
        )
        .unwrap();
        assert!(TrafficSpec::Trace(trace).validate(&t).is_err());
    }

    #[test]
    fn packet_ids_are_unique_and_monotone() {
        let t = Topology::mesh(4, 4);
        let spec = TrafficSpec::Stationary {
            pattern: TrafficPattern::Uniform,
            rate: 0.5,
        };
        let mut g = TrafficGenerator::new(&t, spec, 1, 3).unwrap();
        let mut last = None;
        for c in 0..100 {
            for p in g.tick(&t, c) {
                if let Some(l) = last {
                    assert!(p.id.0 > l);
                }
                last = Some(p.id.0);
            }
        }
        assert!(g.generated() > 0);
    }
}
