//! Exploration and annealing schedules.

use serde::{Deserialize, Serialize};

/// A scalar schedule over training steps.
///
/// ```
/// use rl::Schedule;
///
/// let eps = Schedule::Linear { start: 1.0, end: 0.1, steps: 100 };
/// assert_eq!(eps.value(0), 1.0);
/// assert!((eps.value(50) - 0.55).abs() < 1e-12);
/// assert_eq!(eps.value(1000), 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Schedule {
    /// Constant value.
    Constant(f64),
    /// Linear interpolation from `start` to `end` over `steps`, then flat.
    Linear {
        /// Initial value.
        start: f64,
        /// Final value.
        end: f64,
        /// Steps over which to interpolate.
        steps: u64,
    },
    /// Exponential decay `end + (start-end)·rateᵗ`.
    Exponential {
        /// Initial value.
        start: f64,
        /// Asymptotic value.
        end: f64,
        /// Per-step decay factor in `(0, 1)`.
        rate: f64,
    },
}

impl Schedule {
    /// The schedule value at training step `t`.
    pub fn value(&self, t: u64) -> f64 {
        match *self {
            Schedule::Constant(v) => v,
            Schedule::Linear { start, end, steps } => {
                if steps == 0 || t >= steps {
                    end
                } else {
                    start + (end - start) * (t as f64 / steps as f64)
                }
            }
            Schedule::Exponential { start, end, rate } => end + (start - end) * rate.powf(t as f64),
        }
    }

    /// The paper-style exploration schedule: ε from 1.0 to 0.05 linearly
    /// over `steps`.
    pub fn epsilon_default(steps: u64) -> Self {
        Schedule::Linear {
            start: 1.0,
            end: 0.05,
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_changes() {
        let s = Schedule::Constant(0.3);
        assert_eq!(s.value(0), 0.3);
        assert_eq!(s.value(1_000_000), 0.3);
    }

    #[test]
    fn linear_interpolates_then_clamps() {
        let s = Schedule::Linear {
            start: 1.0,
            end: 0.0,
            steps: 10,
        };
        assert_eq!(s.value(0), 1.0);
        assert!((s.value(5) - 0.5).abs() < 1e-12);
        assert_eq!(s.value(10), 0.0);
        assert_eq!(s.value(100), 0.0);
    }

    #[test]
    fn exponential_decays_toward_end() {
        let s = Schedule::Exponential {
            start: 1.0,
            end: 0.1,
            rate: 0.9,
        };
        assert_eq!(s.value(0), 1.0);
        assert!(s.value(10) < s.value(5));
        assert!((s.value(10_000) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn default_epsilon_matches_paper_style() {
        let s = Schedule::epsilon_default(1000);
        assert_eq!(s.value(0), 1.0);
        assert!((s.value(2000) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn zero_step_linear_is_end() {
        let s = Schedule::Linear {
            start: 1.0,
            end: 0.2,
            steps: 0,
        };
        assert_eq!(s.value(0), 0.2);
    }
}
