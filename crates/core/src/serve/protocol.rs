//! The line-delimited JSON wire protocol of `noc-cli serve`.
//!
//! The container is offline, so there is no HTTP stack to lean on; like the
//! vendored `serde_json` renderer, the protocol is hand-rolled on `std`:
//! one JSON object per `\n`-terminated line in each direction over a plain
//! TCP stream. Requests carry a `cmd` discriminator, replies an `event`
//! discriminator. Responses to a `submit` are *streamed*: an `accepted`
//! line, then one `result` line per scenario as it completes (cache hits
//! resolve immediately), then a terminal `done` / `canceled` / `failed`
//! line carrying the job's outcome.
//!
//! Two deliberate shape choices:
//!
//! * **Job ids are connection-scoped** (each connection's first job is 1).
//!   Two clients submitting the same grid therefore receive *byte-identical*
//!   response streams — the property the `serve-smoke` CI job pins — and no
//!   client can guess another's job ids.
//! * **Result lines never mention cache state.** Whether a scenario was
//!   computed or served warm is observable through the side-channel `stats`
//!   command, not in the data path, so response bytes stay a pure function
//!   of the submitted grid.
//!
//! Parsing is hand-written over the [`serde_json::Value`] tree (not derived)
//! so malformed requests produce precise, structured [`Event::Error`]
//! replies instead of panics or connection drops.

use crate::serve::cache::CacheStats;
use crate::sweep::{ScenarioResult, SweepGrid, SweepReport};
use serde::{Deserialize, Serialize};
use serde_json::Value;

/// Machine-readable error codes carried by [`Event::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The request line was not valid JSON or not a known command shape.
    BadRequest,
    /// The submitted grid failed validation.
    InvalidGrid,
    /// Admission control: the daemon's global scenario queue is full.
    QueueFull,
    /// Admission control: this client's outstanding-scenario quota is full.
    ClientQuota,
    /// The referenced job id is unknown on this connection.
    UnknownJob,
    /// The daemon is shutting down and accepts no new work.
    ShuttingDown,
    /// A scenario failed to simulate (configuration error past validation).
    SimFailed,
}

impl ErrorCode {
    /// Canonical wire name (`bad_request`, `queue_full`, ...).
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::InvalidGrid => "invalid_grid",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::ClientQuota => "client_quota",
            ErrorCode::UnknownJob => "unknown_job",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::SimFailed => "sim_failed",
        }
    }

    /// Parse a wire name back (inverse of [`ErrorCode::name`]).
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "bad_request" => ErrorCode::BadRequest,
            "invalid_grid" => ErrorCode::InvalidGrid,
            "queue_full" => ErrorCode::QueueFull,
            "client_quota" => ErrorCode::ClientQuota,
            "unknown_job" => ErrorCode::UnknownJob,
            "shutting_down" => ErrorCode::ShuttingDown,
            "sim_failed" => ErrorCode::SimFailed,
            _ => return None,
        })
    }
}

/// One client request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a sweep grid; results stream back on this connection.
    Submit {
        /// Client identity for fair-share scheduling and quotas (defaults
        /// to `anon` when omitted on the wire).
        client: String,
        /// The grid to run (boxed: a `SweepGrid` dwarfs the other variants).
        grid: Box<SweepGrid>,
    },
    /// Query a job's progress (connection-scoped id).
    Status {
        /// The job to query.
        job: u64,
    },
    /// Cancel a job (connection-scoped id): undispatched scenarios are
    /// dropped and the reservation is freed.
    Cancel {
        /// The job to cancel.
        job: u64,
    },
    /// Query daemon-wide cache and scheduler counters.
    Stats,
    /// Liveness probe.
    Ping,
    /// Stop accepting work, drain, and exit cleanly.
    Shutdown,
}

impl Request {
    /// Parse one request line.
    ///
    /// # Errors
    /// Returns a human-readable description of what was malformed (the
    /// daemon wraps it in an [`Event::Error`] with
    /// [`ErrorCode::BadRequest`]).
    pub fn parse(line: &str) -> Result<Request, String> {
        let value = serde_json::parse(line).map_err(|e| format!("not valid JSON: {e}"))?;
        value
            .as_map()
            .ok_or_else(|| "request must be a JSON object".to_string())?;
        let cmd = value
            .get("cmd")
            .and_then(Value::as_str)
            .ok_or_else(|| "missing string field `cmd`".to_string())?;
        let job_id = |what: &str| {
            value
                .get("job")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("`{what}` needs an unsigned integer field `job`"))
        };
        match cmd {
            "submit" => {
                let grid_value = value
                    .get("grid")
                    .ok_or_else(|| "`submit` needs a `grid` object".to_string())?;
                let grid: Box<SweepGrid> = Box::new(
                    serde::from_value(grid_value).map_err(|e| format!("malformed grid: {e}"))?,
                );
                let client = value
                    .get("client")
                    .and_then(Value::as_str)
                    .unwrap_or("anon")
                    .to_string();
                Ok(Request::Submit { client, grid })
            }
            "status" => Ok(Request::Status {
                job: job_id("status")?,
            }),
            "cancel" => Ok(Request::Cancel {
                job: job_id("cancel")?,
            }),
            "stats" => Ok(Request::Stats),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown cmd `{other}`")),
        }
    }

    /// Render this request as one wire line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Request::Submit { client, grid } => format!(
                "{{\"cmd\":\"submit\",\"client\":{},\"grid\":{}}}",
                json_str(client),
                serde_json::to_string(grid.as_ref()).expect("grid serializes")
            ),
            Request::Status { job } => format!("{{\"cmd\":\"status\",\"job\":{job}}}"),
            Request::Cancel { job } => format!("{{\"cmd\":\"cancel\",\"job\":{job}}}"),
            Request::Stats => "{\"cmd\":\"stats\"}".to_string(),
            Request::Ping => "{\"cmd\":\"ping\"}".to_string(),
            Request::Shutdown => "{\"cmd\":\"shutdown\"}".to_string(),
        }
    }
}

/// Scheduler-side counters carried by [`Event::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SchedulerStats {
    /// Scenarios submitted and not yet finished (queued + running).
    pub outstanding_scenarios: u64,
    /// Jobs currently queued or running.
    pub active_jobs: u64,
    /// Jobs that reached a terminal state (done, canceled, or failed).
    pub finished_jobs: u64,
    /// Simulations actually executed (the single-flight proof: with N
    /// unique scenarios this stays N no matter how many clients submit).
    pub sim_runs: u64,
}

/// One daemon reply line.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A submit was admitted; results for `scenarios` scenarios follow.
    Accepted {
        /// Connection-scoped job id.
        job: u64,
        /// Number of scenarios the grid expands to.
        scenarios: u64,
    },
    /// One finished scenario of a streaming job.
    Result {
        /// Connection-scoped job id.
        job: u64,
        /// The scenario's grid index.
        index: u64,
        /// The measured outcome (boxed: it dwarfs the other variants).
        result: Box<ScenarioResult>,
    },
    /// Terminal: every scenario finished; the assembled report.
    Done {
        /// Connection-scoped job id.
        job: u64,
        /// The full sweep report (byte-identical to a local run).
        report: Box<SweepReport>,
    },
    /// Terminal: the job was canceled (by request or by disconnect).
    Canceled {
        /// Connection-scoped job id.
        job: u64,
        /// Scenarios that had already completed when the cancel landed.
        completed: u64,
    },
    /// Terminal: a scenario failed to simulate.
    Failed {
        /// Connection-scoped job id.
        job: u64,
        /// The simulator error, rendered.
        message: String,
    },
    /// Reply to `status`.
    Status {
        /// Connection-scoped job id.
        job: u64,
        /// `queued`, `running`, or `canceling`.
        state: String,
        /// Scenarios finished so far.
        completed: u64,
        /// Total scenarios in the job.
        total: u64,
    },
    /// Reply to `stats`.
    Stats {
        /// Cache counters.
        cache: CacheStats,
        /// Scheduler counters.
        scheduler: SchedulerStats,
    },
    /// Reply to `ping`.
    Pong,
    /// Reply to `shutdown` (sent before the daemon exits).
    ShuttingDown,
    /// A structured error (the connection stays usable).
    Error {
        /// Machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Event {
    /// Render this event as one wire line (no trailing newline).
    ///
    /// Rendering is deterministic: field order is fixed and nested payloads
    /// go through the canonical `serde_json` renderer, so identical jobs
    /// produce identical bytes — the property the CI byte-compare pins.
    pub fn render(&self) -> String {
        match self {
            Event::Accepted { job, scenarios } => {
                format!("{{\"event\":\"accepted\",\"job\":{job},\"scenarios\":{scenarios}}}")
            }
            Event::Result { job, index, result } => format!(
                "{{\"event\":\"result\",\"job\":{job},\"index\":{index},\"result\":{}}}",
                serde_json::to_string(result.as_ref()).expect("result serializes")
            ),
            Event::Done { job, report } => format!(
                "{{\"event\":\"done\",\"job\":{job},\"report\":{}}}",
                serde_json::to_string(report.as_ref()).expect("report serializes")
            ),
            Event::Canceled { job, completed } => {
                format!("{{\"event\":\"canceled\",\"job\":{job},\"completed\":{completed}}}")
            }
            Event::Failed { job, message } => format!(
                "{{\"event\":\"failed\",\"job\":{job},\"message\":{}}}",
                json_str(message)
            ),
            Event::Status {
                job,
                state,
                completed,
                total,
            } => format!(
                "{{\"event\":\"status\",\"job\":{job},\"state\":{},\"completed\":{completed},\
                 \"total\":{total}}}",
                json_str(state)
            ),
            Event::Stats { cache, scheduler } => format!(
                "{{\"event\":\"stats\",\"cache\":{},\"scheduler\":{}}}",
                serde_json::to_string(cache).expect("stats serialize"),
                serde_json::to_string(scheduler).expect("stats serialize")
            ),
            Event::Pong => "{\"event\":\"pong\"}".to_string(),
            Event::ShuttingDown => "{\"event\":\"shutting_down\"}".to_string(),
            Event::Error { code, message } => format!(
                "{{\"event\":\"error\",\"code\":\"{}\",\"message\":{}}}",
                code.name(),
                json_str(message)
            ),
        }
    }

    /// Parse one reply line (the client side of [`Event::render`]).
    ///
    /// # Errors
    /// Returns a description of what was malformed.
    pub fn parse(line: &str) -> Result<Event, String> {
        let value = serde_json::parse(line).map_err(|e| format!("not valid JSON: {e}"))?;
        let event = value
            .get("event")
            .and_then(Value::as_str)
            .ok_or_else(|| "missing string field `event`".to_string())?;
        let u64_field = |name: &str| {
            value
                .get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("`{event}` missing unsigned field `{name}`"))
        };
        let str_field = |name: &str| {
            value
                .get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("`{event}` missing string field `{name}`"))
        };
        match event {
            "accepted" => Ok(Event::Accepted {
                job: u64_field("job")?,
                scenarios: u64_field("scenarios")?,
            }),
            "result" => Ok(Event::Result {
                job: u64_field("job")?,
                index: u64_field("index")?,
                result: Box::new(
                    serde::from_value(
                        value
                            .get("result")
                            .ok_or_else(|| "`result` missing `result`".to_string())?,
                    )
                    .map_err(|e| format!("malformed result payload: {e}"))?,
                ),
            }),
            "done" => Ok(Event::Done {
                job: u64_field("job")?,
                report: Box::new(
                    serde::from_value(
                        value
                            .get("report")
                            .ok_or_else(|| "`done` missing `report`".to_string())?,
                    )
                    .map_err(|e| format!("malformed report payload: {e}"))?,
                ),
            }),
            "canceled" => Ok(Event::Canceled {
                job: u64_field("job")?,
                completed: u64_field("completed")?,
            }),
            "failed" => Ok(Event::Failed {
                job: u64_field("job")?,
                message: str_field("message")?,
            }),
            "status" => Ok(Event::Status {
                job: u64_field("job")?,
                state: str_field("state")?,
                completed: u64_field("completed")?,
                total: u64_field("total")?,
            }),
            "stats" => Ok(Event::Stats {
                cache: serde::from_value(
                    value
                        .get("cache")
                        .ok_or_else(|| "`stats` missing `cache`".to_string())?,
                )
                .map_err(|e| format!("malformed cache stats: {e}"))?,
                scheduler: serde::from_value(
                    value
                        .get("scheduler")
                        .ok_or_else(|| "`stats` missing `scheduler`".to_string())?,
                )
                .map_err(|e| format!("malformed scheduler stats: {e}"))?,
            }),
            "pong" => Ok(Event::Pong),
            "shutting_down" => Ok(Event::ShuttingDown),
            "error" => Ok(Event::Error {
                code: str_field("code")
                    .ok()
                    .as_deref()
                    .and_then(ErrorCode::parse)
                    .ok_or_else(|| "`error` missing or unknown `code`".to_string())?,
                message: str_field("message")?,
            }),
            other => Err(format!("unknown event `{other}`")),
        }
    }
}

/// Render a string as a JSON string literal via the canonical renderer (so
/// escaping matches everything else on the wire).
fn json_str(s: &str) -> String {
    serde_json::to_string(&s.to_string()).expect("strings serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_the_wire_format() {
        // `partitions` is #[serde(skip)] and deserializes to its zero
        // placeholder; use that value so equality holds across the wire.
        let grid = SweepGrid {
            partitions: 0,
            ..SweepGrid::default()
        };
        let requests = [
            Request::Submit {
                client: "ci-\"quoted\"-client".into(),
                grid: Box::new(grid),
            },
            Request::Status { job: 7 },
            Request::Cancel { job: 1 },
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
        ];
        for req in requests {
            let line = req.render();
            assert_eq!(Request::parse(&line).unwrap(), req, "line: {line}");
        }
    }

    #[test]
    fn malformed_requests_are_diagnosed_not_panicked() {
        for bad in [
            "",
            "not json",
            "42",
            "{}",
            "{\"cmd\":\"frobnicate\"}",
            "{\"cmd\":\"submit\"}",
            "{\"cmd\":\"submit\",\"grid\":3}",
            "{\"cmd\":\"status\"}",
            "{\"cmd\":\"cancel\",\"job\":\"one\"}",
        ] {
            assert!(Request::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn events_round_trip_through_the_wire_format() {
        let grid = SweepGrid {
            sizes: vec![(2, 2)],
            patterns: vec![noc_sim::TrafficPattern::Uniform],
            rates: vec![0.05],
            warmup: 10,
            measure: 40,
            drain: 40,
            ..SweepGrid::default()
        };
        let mut report = grid.run_serial().expect("tiny grid runs");
        // Zero the #[serde(skip)] wall-clock knobs (`threads`, grid
        // `partitions`) so the parsed copy compares equal.
        report.threads = 0;
        report.grid.partitions = 0;
        let events = [
            Event::Accepted {
                job: 1,
                scenarios: 4,
            },
            Event::Result {
                job: 1,
                index: 0,
                result: Box::new(report.scenarios[0].clone()),
            },
            Event::Done {
                job: 1,
                report: Box::new(report.clone()),
            },
            Event::Canceled {
                job: 2,
                completed: 3,
            },
            Event::Failed {
                job: 3,
                message: "invalid configuration: \"quoted\"".into(),
            },
            Event::Status {
                job: 1,
                state: "running".into(),
                completed: 2,
                total: 4,
            },
            Event::Stats {
                cache: CacheStats {
                    memory_hits: 5,
                    disk_hits: 1,
                    coalesced: 2,
                    computed: 3,
                    write_errors: 0,
                    read_errors: 0,
                },
                scheduler: SchedulerStats {
                    outstanding_scenarios: 4,
                    active_jobs: 1,
                    finished_jobs: 9,
                    sim_runs: 3,
                },
            },
            Event::Pong,
            Event::ShuttingDown,
            Event::Error {
                code: ErrorCode::QueueFull,
                message: "queue full".into(),
            },
        ];
        for event in events {
            let line = event.render();
            assert_eq!(Event::parse(&line).unwrap(), event, "line: {line}");
        }
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::InvalidGrid,
            ErrorCode::QueueFull,
            ErrorCode::ClientQuota,
            ErrorCode::UnknownJob,
            ErrorCode::ShuttingDown,
            ErrorCode::SimFailed,
        ] {
            assert_eq!(ErrorCode::parse(code.name()), Some(code));
        }
        assert_eq!(ErrorCode::parse("teapot"), None);
    }
}
