//! Fig 3 — DRL training convergence: episode return and ε over training,
//! for the DQN agent and the tabular baseline.
//!
//! Expected shape: the return rises from the random-policy level and
//! plateaus; the plateau beats the tabular baseline's.

use noc_bench::{
    configs, fmt, print_table, save_csv, save_markdown, train_or_load, train_or_load_tabular, Scale,
};

fn main() {
    let scale = Scale::from_env();
    let sim = configs::mesh8();
    let drl = train_or_load(
        "mesh8_drl",
        configs::train_env(sim.clone(), 7),
        configs::dqn_default(7),
        configs::train_budget(scale, 7),
    );
    let tab = train_or_load_tabular(
        "mesh8_tabular",
        configs::train_env(sim, 8),
        configs::tabular_default(),
        configs::train_budget(scale, 8),
    );

    // Smooth with a window for readability.
    let win = scale.pick(10usize, 1);
    let smooth = |curve: &[rl::EpisodeStats], i: usize| -> f64 {
        let lo = i.saturating_sub(win - 1);
        let s: f64 = curve[lo..=i].iter().map(|e| e.total_reward).sum();
        s / (i - lo + 1) as f64
    };

    let mut rows = Vec::new();
    let stride = (drl.curve.len() / 30).max(1);
    for i in (0..drl.curve.len()).step_by(stride) {
        let d = &drl.curve[i];
        let t = tab.curve.get(i);
        rows.push(vec![
            d.episode.to_string(),
            fmt(d.total_reward),
            fmt(smooth(&drl.curve, i)),
            fmt(d.epsilon),
            t.map(|t| fmt(t.total_reward)).unwrap_or_else(|| "—".into()),
            t.map(|_| fmt(smooth(&tab.curve, i)))
                .unwrap_or_else(|| "—".into()),
        ]);
    }
    let headers = [
        "episode",
        "dqn return",
        "dqn return (smoothed)",
        "epsilon",
        "tabular return",
        "tabular (smoothed)",
    ];
    let md = print_table("Fig 3 — training convergence", &headers, &rows);
    save_csv("fig3_training", &headers, &rows);
    save_markdown("fig3_training", &md);

    // Convergence summary.
    let quarter = (drl.curve.len() / 4).max(1);
    let early: f64 = drl.curve[..quarter]
        .iter()
        .map(|e| e.total_reward)
        .sum::<f64>()
        / quarter as f64;
    let late: f64 = drl.curve[drl.curve.len() - quarter..]
        .iter()
        .map(|e| e.total_reward)
        .sum::<f64>()
        / quarter as f64;
    let tab_late: f64 = tab.curve[tab.curve.len() - quarter.min(tab.curve.len())..]
        .iter()
        .map(|e| e.total_reward)
        .sum::<f64>()
        / quarter.min(tab.curve.len()) as f64;
    print_table(
        "Fig 3b — convergence summary",
        &["metric", "value"],
        &[
            vec!["dqn first-quarter mean return".into(), fmt(early)],
            vec!["dqn last-quarter mean return".into(), fmt(late)],
            vec!["tabular last-quarter mean return".into(), fmt(tab_late)],
            vec!["dqn improvement".into(), fmt(late - early)],
        ],
    );
}
