//! Property-based invariants across the workspace, checked with proptest.

use noc_sim::routing::walk_route;
use noc_sim::{RoutingAlgorithm, SimConfig, Simulator, Topology, TrafficPattern, TrafficSpec};
use proptest::prelude::*;

fn mesh_algorithms() -> impl Strategy<Value = RoutingAlgorithm> {
    prop_oneof![
        Just(RoutingAlgorithm::Xy),
        Just(RoutingAlgorithm::Yx),
        Just(RoutingAlgorithm::WestFirst),
        Just(RoutingAlgorithm::NorthLast),
        Just(RoutingAlgorithm::NegativeFirst),
        Just(RoutingAlgorithm::OddEven),
    ]
}

fn patterns() -> impl Strategy<Value = TrafficPattern> {
    prop_oneof![
        Just(TrafficPattern::Uniform),
        Just(TrafficPattern::Transpose),
        Just(TrafficPattern::BitComplement),
        Just(TrafficPattern::Tornado),
        Just(TrafficPattern::Neighbor),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every mesh routing algorithm reaches every destination along a
    /// minimal path, whatever the (square-ish) mesh size and the adaptive
    /// choice policy.
    #[test]
    fn routing_is_minimal_and_complete(
        alg in mesh_algorithms(),
        w in 2usize..7,
        h in 2usize..7,
        src in 0usize..36,
        dst in 0usize..36,
        pick_last in any::<bool>(),
    ) {
        let topo = Topology::mesh(w, h);
        let n = topo.num_nodes();
        let (src, dst) = (noc_sim::NodeId(src % n), noc_sim::NodeId(dst % n));
        let path = walk_route(alg, &topo, src, dst, |c| if pick_last { c.len() - 1 } else { 0 });
        prop_assert_eq!(path.len() - 1, topo.distance(src, dst));
        prop_assert_eq!(*path.last().unwrap(), dst);
    }

    /// Flits are conserved for arbitrary configurations: offered = ejected +
    /// in-flight after any number of cycles.
    #[test]
    fn flits_conserved_for_random_configs(
        alg in mesh_algorithms(),
        pattern in patterns(),
        rate in 0.01f64..0.35,
        vcs in 1usize..5,
        depth in 1usize..6,
        plen in 1u32..7,
        seed in 0u64..1000,
        cycles in 50u64..600,
    ) {
        let cfg = SimConfig::default()
            .with_size(4, 4)
            .with_regions(2, 2)
            .with_routing(alg)
            .with_vcs(vcs, depth)
            .with_packet_len(plen)
            .with_traffic(pattern, rate)
            .with_seed(seed);
        let mut sim = Simulator::new(cfg).expect("valid config");
        sim.run(cycles);
        let s = sim.stats();
        prop_assert_eq!(
            s.ejected_flits + sim.network().in_flight() as u64,
            s.offered_packets * plen as u64
        );
        // Packets inject and eject flit counts in packet multiples.
        prop_assert!(s.injected_flits >= s.ejected_flits);
    }

    /// Every network drains once traffic stops — no deadlock for any mesh
    /// routing algorithm at any load within the sampled space.
    #[test]
    fn network_always_drains(
        alg in mesh_algorithms(),
        pattern in patterns(),
        rate in 0.05f64..0.5,
        seed in 0u64..100,
    ) {
        let cfg = SimConfig::default()
            .with_size(4, 4)
            .with_regions(2, 2)
            .with_routing(alg)
            .with_traffic(pattern, rate)
            .with_seed(seed);
        let mut sim = Simulator::new(cfg).expect("valid config");
        sim.run(500);
        sim.set_traffic(TrafficSpec::stationary(TrafficPattern::Uniform, 0.0)).expect("valid spec");
        let mut drained = false;
        for _ in 0..100 {
            sim.run(100);
            if sim.network().in_flight() == 0 {
                drained = true;
                break;
            }
        }
        prop_assert!(drained, "network failed to drain: {} flits stuck ({alg:?})",
            sim.network().in_flight());
    }

    /// Latency can never be below the minimal hop count plus the pipeline
    /// depth: sampled packets obey `network_latency >= hops`.
    #[test]
    fn latency_dominates_hops(seed in 0u64..50) {
        let cfg = SimConfig::default()
            .with_size(4, 4)
            .with_traffic(TrafficPattern::Uniform, 0.05)
            .with_seed(seed);
        let mut sim = Simulator::new(cfg).expect("valid config");
        sim.run(2000);
        let s = sim.stats();
        if s.latency_samples > 0 {
            prop_assert!(s.sum_network_latency >= s.sum_hops,
                "network latency {} must exceed hop count {}",
                s.sum_network_latency, s.sum_hops);
        }
    }

    /// Dynamic energy is monotone in the V/F level for a fixed packet set.
    #[test]
    fn energy_monotone_in_level(seed in 0u64..20) {
        let energy_at = |level: usize| {
            let cfg = SimConfig::default()
                .with_size(4, 4)
                .with_traffic(TrafficPattern::Uniform, 0.08)
                .with_seed(seed);
            let mut sim = Simulator::new(cfg).expect("valid config");
            sim.set_all_levels(level).expect("valid level");
            sim.run(800);
            let e = sim.stats().energy.total_pj();
            let delivered = sim.stats().ejected_flits.max(1);
            e / delivered as f64
        };
        // Per-flit energy at the lowest level must undercut the highest.
        prop_assert!(energy_at(0) < energy_at(3));
    }
}

/// The state encoder and reward function accept every metrics shape the
/// simulator can produce (no panics over a broad fuzz of runs).
#[test]
fn encoder_and_reward_total_over_sim_outputs() {
    use noc_selfconf::{RewardConfig, StateEncoder};
    let cfg = SimConfig::default()
        .with_size(4, 4)
        .with_regions(2, 2)
        .with_traffic(TrafficPattern::Uniform, 0.3);
    let mut sim = Simulator::new(cfg).expect("valid config");
    let caps = sim.network().region_capacity();
    let encoder = StateEncoder::new(caps, vec![4; 4], 4, 16);
    let reward = RewardConfig::default();
    for i in 0..30 {
        sim.set_all_levels(i % 4).expect("valid level");
        let m = sim.run_epoch(100);
        let s = encoder.encode(&m, sim.region_levels());
        assert!(s.iter().all(|x| x.is_finite()));
        assert!(reward.compute(&m, 16).is_finite());
    }
}
