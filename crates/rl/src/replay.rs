//! Uniform experience replay (Lin, 1992; Mnih et al., 2015).

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One stored experience.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// Observation before the action.
    pub state: Vec<f32>,
    /// Action taken.
    pub action: usize,
    /// Reward received.
    pub reward: f32,
    /// Observation after the action.
    pub next_state: Vec<f32>,
    /// Whether the episode ended at `next_state`.
    pub done: bool,
}

/// A fixed-capacity ring buffer with uniform sampling.
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    data: Vec<Transition>,
    capacity: usize,
    next: usize,
}

impl ReplayBuffer {
    /// An empty buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        ReplayBuffer {
            data: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            next: 0,
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Maximum number of transitions retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Store a transition, evicting the oldest once full.
    pub fn push(&mut self, t: Transition) {
        if self.data.len() < self.capacity {
            self.data.push(t);
        } else {
            self.data[self.next] = t;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    /// Sample `batch` transitions uniformly with replacement.
    ///
    /// # Panics
    /// Panics if the buffer is empty.
    pub fn sample<'a>(&'a self, batch: usize, rng: &mut StdRng) -> Vec<&'a Transition> {
        assert!(
            !self.data.is_empty(),
            "cannot sample from an empty replay buffer"
        );
        (0..batch)
            .map(|_| &self.data[rng.gen_range(0..self.data.len())])
            .collect()
    }

    /// Iterate over stored transitions (oldest-first is not guaranteed).
    pub fn iter(&self) -> impl Iterator<Item = &Transition> {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(reward: f32) -> Transition {
        Transition {
            state: vec![0.0],
            action: 0,
            reward,
            next_state: vec![1.0],
            done: false,
        }
    }

    #[test]
    fn push_grows_until_capacity_then_overwrites() {
        let mut b = ReplayBuffer::new(3);
        for i in 0..5 {
            b.push(t(i as f32));
        }
        assert_eq!(b.len(), 3);
        let rewards: Vec<f32> = b.iter().map(|x| x.reward).collect();
        // 0 and 1 evicted.
        assert!(rewards.contains(&2.0) && rewards.contains(&3.0) && rewards.contains(&4.0));
    }

    #[test]
    fn sampling_covers_contents() {
        let mut b = ReplayBuffer::new(10);
        for i in 0..10 {
            b.push(t(i as f32));
        }
        let mut rng = StdRng::seed_from_u64(0);
        let sample = b.sample(1000, &mut rng);
        let mut seen = [false; 10];
        for s in sample {
            seen[s.reward as usize] = true;
        }
        assert!(
            seen.iter().all(|&x| x),
            "uniform sampling should hit every item"
        );
    }

    #[test]
    #[should_panic(expected = "empty replay buffer")]
    fn sampling_empty_panics() {
        let b = ReplayBuffer::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = b.sample(1, &mut rng);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ReplayBuffer::new(0);
    }
}
