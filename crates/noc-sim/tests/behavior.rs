//! Behavioral integration tests of the simulator: measurement methodology,
//! power gating under traffic, phase traces, and reconfiguration timing.

use noc_sim::{
    InjectionProcess, NodeId, PacketTrace, PowerModel, RoutingAlgorithm, SimConfig, Simulator,
    TraceEvent, TrafficPattern, TrafficSpec, WorkloadPhase, WorkloadSpec,
};

fn base() -> SimConfig {
    SimConfig::default().with_size(4, 4).with_regions(2, 2)
}

/// At light load the classic methodology finishes every windowed packet
/// inside the drain budget.
#[test]
fn classic_run_finishes_all_windowed_packets() {
    let mut sim = Simulator::new(base().with_traffic(TrafficPattern::Uniform, 0.05)).unwrap();
    let summary = sim.run_classic(500, 2000, 4000);
    assert_eq!(summary.unfinished_packets, 0, "light load must drain fully");
    assert!(!summary.saturated);
    assert!(summary.window.latency_samples > 0);
}

/// The drain phase must not contaminate throughput: reported throughput
/// comes from the measurement window only.
#[test]
fn drain_does_not_inflate_throughput() {
    let mut sim = Simulator::new(base().with_traffic(TrafficPattern::Uniform, 0.10)).unwrap();
    let summary = sim.run_classic(500, 2000, 4000);
    // Throughput can never exceed the offered rate by more than noise.
    assert!(
        summary.window.throughput < 0.125,
        "throughput {} should track offered 0.10",
        summary.window.throughput
    );
}

/// Power gating saves energy even with sparse traffic flowing (idle routers
/// gate; busy ones do not), and never changes functional behavior.
#[test]
fn power_gating_saves_energy_without_changing_delivery() {
    let run = |gated: bool| {
        let mut cfg = base()
            .with_traffic(TrafficPattern::Neighbor, 0.02)
            .with_seed(3);
        if gated {
            cfg.power = PowerModel::with_power_gating();
        }
        let mut sim = Simulator::new(cfg).unwrap();
        sim.run(3000);
        (sim.stats().ejected_flits, sim.stats().energy.leakage_pj())
    };
    let (flits_nominal, leak_nominal) = run(false);
    let (flits_gated, leak_gated) = run(true);
    assert_eq!(
        flits_nominal, flits_gated,
        "gating must not affect delivery"
    );
    assert!(
        leak_gated < leak_nominal * 0.9,
        "gating should cut leakage: {leak_gated} vs {leak_nominal}"
    );
}

/// Phase traces actually modulate the observed injection rate over time.
#[test]
fn phase_trace_modulates_load() {
    let spec = TrafficSpec::Workload(WorkloadSpec::new(vec![
        WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.02, 1000),
        WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.30, 1000),
    ]));
    let mut sim = Simulator::new(base().with_traffic_spec(spec)).unwrap();
    let quiet = sim.run_epoch(1000);
    let burst = sim.run_epoch(1000);
    let quiet2 = sim.run_epoch(1000);
    assert!(
        burst.injection_rate > 5.0 * quiet.injection_rate,
        "burst {} vs quiet {}",
        burst.injection_rate,
        quiet.injection_rate
    );
    // The trace repeats.
    assert!(quiet2.injection_rate < burst.injection_rate * 0.5);
}

/// A bursty on/off workload delivers the same mean load as its Bernoulli
/// equivalent but with visibly clumped arrivals — the observable the RL
/// state encoder keys on.
#[test]
fn bursty_workload_is_observably_burstier() {
    let run = |spec: TrafficSpec| {
        let mut sim = Simulator::new(base().with_traffic_spec(spec)).unwrap();
        sim.run_epoch(6000)
    };
    let bern = run(TrafficSpec::stationary(TrafficPattern::Uniform, 0.2));
    let bursty = run(TrafficSpec::Workload(WorkloadSpec::stationary(
        TrafficPattern::Uniform,
        InjectionProcess::Bursty {
            rate_on: 0.4,
            switch: 0.01,
        },
    )));
    // Same long-run mean (rate_on/2 = 0.2) within sampling noise...
    assert!(
        (bursty.injection_rate - bern.injection_rate).abs() < 0.05,
        "bursty mean {} should track bernoulli {}",
        bursty.injection_rate,
        bern.injection_rate
    );
    // ...but a much larger index of dispersion.
    assert!(
        bursty.injection_burstiness > 1.5 * bern.injection_burstiness,
        "bursty dispersion {} vs bernoulli {}",
        bursty.injection_burstiness,
        bern.injection_burstiness
    );
}

/// Trace-driven traffic delivers exactly the scheduled packets, with the
/// scheduled lengths.
#[test]
fn trace_driven_simulation_delivers_schedule() {
    let trace = PacketTrace::new(
        vec![
            TraceEvent {
                cycle: 0,
                src: NodeId(0),
                dst: NodeId(15),
                len_flits: 5,
            },
            TraceEvent {
                cycle: 10,
                src: NodeId(3),
                dst: NodeId(12),
                len_flits: 2,
            },
            TraceEvent {
                cycle: 10,
                src: NodeId(12),
                dst: NodeId(3),
                len_flits: 2,
            },
            TraceEvent {
                cycle: 50,
                src: NodeId(5),
                dst: NodeId(10),
                len_flits: 7,
            },
        ],
        None,
    )
    .unwrap();
    let mut sim = Simulator::new(base().with_traffic_spec(TrafficSpec::Trace(trace))).unwrap();
    sim.run(600);
    let s = sim.stats();
    assert_eq!(s.offered_packets, 4);
    assert_eq!(s.ejected_packets, 4);
    assert_eq!(s.ejected_flits, 5 + 2 + 2 + 7);
    assert_eq!(sim.network().in_flight(), 0);
}

/// A repeating trace sustains a steady load.
#[test]
fn repeating_trace_sustains_load() {
    let trace = PacketTrace::new(
        vec![TraceEvent {
            cycle: 0,
            src: NodeId(0),
            dst: NodeId(15),
            len_flits: 4,
        }],
        Some(50),
    )
    .unwrap();
    let mut sim = Simulator::new(base().with_traffic_spec(TrafficSpec::Trace(trace))).unwrap();
    sim.run(1000);
    assert_eq!(
        sim.stats().offered_packets,
        20,
        "one packet per 50-cycle period"
    );
    assert!(sim.stats().ejected_packets >= 19);
}

/// Mid-flight routing reconfiguration: packets already routed keep flowing,
/// new packets use the new algorithm, nothing is lost.
#[test]
fn routing_switch_mid_flight_loses_nothing() {
    let mut sim = Simulator::new(base().with_traffic(TrafficPattern::Transpose, 0.15)).unwrap();
    sim.run(500);
    sim.set_routing(RoutingAlgorithm::OddEven).unwrap();
    sim.run(500);
    sim.set_routing(RoutingAlgorithm::NegativeFirst).unwrap();
    sim.run(500);
    // Stop and drain.
    sim.set_traffic(TrafficSpec::stationary(TrafficPattern::Uniform, 0.0))
        .unwrap();
    for _ in 0..100 {
        if sim.network().in_flight() == 0 {
            break;
        }
        sim.run(50);
    }
    assert_eq!(sim.network().in_flight(), 0);
    assert_eq!(sim.stats().ejected_flits, sim.stats().offered_packets * 5);
}

/// Per-region DVFS: slowing only one region must hurt cross-region traffic
/// less than slowing everything.
#[test]
fn regional_slowdown_is_milder_than_global() {
    let latency_with = |setup: &dyn Fn(&mut Simulator)| {
        let mut sim = Simulator::new(base().with_traffic(TrafficPattern::Uniform, 0.08)).unwrap();
        setup(&mut sim);
        let m = sim.run_epoch(4000);
        m.avg_packet_latency
    };
    let all_fast = latency_with(&|_| {});
    let one_slow = latency_with(&|s| s.set_region_level(0, 0).unwrap());
    let all_slow = latency_with(&|s| s.set_all_levels(0).unwrap());
    assert!(one_slow > all_fast, "slowing a region must cost latency");
    assert!(
        all_slow > one_slow,
        "slowing everything must cost more: {all_slow} vs {one_slow}"
    );
}

/// The latency histogram percentiles are consistent with the mean.
#[test]
fn percentiles_bracket_the_mean() {
    let mut sim = Simulator::new(base().with_traffic(TrafficPattern::Uniform, 0.15)).unwrap();
    sim.run(5000);
    let s = sim.stats();
    let p50 = s.latency_percentile(0.5) as f64;
    let p99 = s.latency_percentile(0.99) as f64;
    let mean = s.avg_packet_latency();
    assert!(p99 >= p50);
    // The mean lies within the histogram's overall span.
    assert!(
        mean <= p99 * 1.5 && mean >= 2.0,
        "mean {mean} vs p50 {p50} p99 {p99}"
    );
}
