//! Property-based tests of the RL data structures and schedules.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::{ReplayBuffer, Schedule, SumTree, Transition};

fn transition(tag: f32) -> Transition {
    Transition {
        state: vec![tag],
        action: 0,
        reward: tag,
        next_state: vec![tag + 1.0],
        done: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sum tree's root always equals the sum of its leaves, under any
    /// sequence of sets.
    #[test]
    fn sum_tree_root_is_leaf_sum(
        capacity in 1usize..64,
        ops in prop::collection::vec((0usize..64, 0.0f64..100.0), 0..100),
    ) {
        let mut tree = SumTree::new(capacity);
        let mut shadow = vec![0.0f64; capacity];
        for (i, p) in ops {
            let i = i % capacity;
            tree.set(i, p);
            shadow[i] = p;
        }
        let expect: f64 = shadow.iter().sum();
        prop_assert!((tree.total() - expect).abs() < 1e-9 * (1.0 + expect));
        for (i, &p) in shadow.iter().enumerate() {
            prop_assert_eq!(tree.get(i), p);
        }
    }

    /// `find` implements proportional sampling: sweeping the mass space
    /// uniformly hits each leaf with frequency equal to its share of the
    /// total priority. (Leaf *order* under the heap layout is structural,
    /// not index order — only the measure matters for replay sampling.)
    #[test]
    fn sum_tree_find_is_proportional(
        capacity in 2usize..24,
        priorities in prop::collection::vec(0.01f64..10.0, 2..24),
    ) {
        let n = priorities.len().min(capacity);
        let mut tree = SumTree::new(capacity);
        for (i, &p) in priorities.iter().take(n).enumerate() {
            tree.set(i, p);
        }
        let total = tree.total();
        let sweeps = 20_000usize;
        let mut hits = vec![0usize; capacity];
        for k in 0..sweeps {
            // Deterministic uniform sweep of the mass space.
            let mass = (k as f64 + 0.5) / sweeps as f64 * total;
            let leaf = tree.find(mass);
            prop_assert!(leaf < capacity);
            hits[leaf] += 1;
        }
        for (i, &p) in priorities.iter().take(n).enumerate() {
            let expected = p / total;
            let observed = hits[i] as f64 / sweeps as f64;
            prop_assert!((observed - expected).abs() < 0.01,
                "leaf {i}: observed {observed:.4} vs expected {expected:.4}");
        }
        // Zero-priority leaves are never selected.
        for (i, &h) in hits.iter().enumerate().skip(n) {
            prop_assert_eq!(h, 0, "empty leaf {} sampled", i);
        }
    }

    /// The replay buffer never exceeds capacity and always retains the most
    /// recent `capacity` items.
    #[test]
    fn replay_retains_most_recent(capacity in 1usize..32, pushes in 0usize..100) {
        let mut buf = ReplayBuffer::new(capacity);
        for i in 0..pushes {
            buf.push(transition(i as f32));
        }
        prop_assert_eq!(buf.len(), pushes.min(capacity));
        if pushes > 0 {
            let newest = (pushes - 1) as f32;
            prop_assert!(buf.iter().any(|t| t.reward == newest), "newest item evicted");
            if pushes > capacity {
                let oldest_kept = (pushes - capacity) as f32;
                prop_assert!(buf.iter().all(|t| t.reward >= oldest_kept),
                    "stale item survived");
            }
        }
    }

    /// Samples always come from the buffer contents.
    #[test]
    fn replay_samples_only_contents(capacity in 1usize..16, pushes in 1usize..40, seed in 0u64..100) {
        let mut buf = ReplayBuffer::new(capacity);
        for i in 0..pushes {
            buf.push(transition(i as f32));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for t in buf.sample(32, &mut rng) {
            prop_assert!((t.reward as usize) < pushes);
        }
    }

    /// Schedules are monotone between their endpoints.
    #[test]
    fn schedules_are_monotone(start in 0.1f64..1.0, end in 0.0f64..0.09, steps in 1u64..1000) {
        let lin = Schedule::Linear { start, end, steps };
        let exp = Schedule::Exponential { start, end, rate: 0.99 };
        let mut prev_l = f64::MAX;
        let mut prev_e = f64::MAX;
        for t in (0..steps + 10).step_by((steps as usize / 10).max(1)) {
            let l = lin.value(t);
            let e = exp.value(t);
            prop_assert!(l <= prev_l + 1e-12);
            prop_assert!(e <= prev_e + 1e-12);
            prop_assert!((end..=start).contains(&l));
            prop_assert!(e >= end - 1e-12 && e <= start + 1e-12);
            prev_l = l;
            prev_e = e;
        }
    }
}
