//! The environment abstraction and a toy chain MDP used by tests and benches.

use rand::rngs::StdRng;

/// Result of one environment transition.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Observation after the transition.
    pub state: Vec<f32>,
    /// Scalar reward.
    pub reward: f64,
    /// Whether the episode terminated.
    pub done: bool,
}

/// A discrete-action RL environment.
pub trait Environment {
    /// Dimensionality of the observation vector.
    fn state_dim(&self) -> usize;
    /// Number of discrete actions.
    fn num_actions(&self) -> usize;
    /// Begin a new episode and return the initial observation.
    fn reset(&mut self) -> Vec<f32>;
    /// Apply `action` and return the transition result.
    ///
    /// # Panics
    /// Implementations may panic if `action >= num_actions()`.
    fn step(&mut self, action: usize) -> Step;
}

/// An agent that can learn from interaction: the interface shared by the DQN
/// and tabular Q-learning agents, consumed by [`crate::trainer`].
pub trait LearningAgent {
    /// ε-greedy action selection.
    fn act(&mut self, state: &[f32], epsilon: f64, rng: &mut StdRng) -> usize;
    /// Store one transition.
    fn observe(&mut self, transition: crate::replay::Transition);
    /// Perform one learning update if possible; returns the loss (or TD
    /// error magnitude) when an update happened.
    fn train_step(&mut self, rng: &mut StdRng) -> Option<f32>;
}

/// A deterministic chain MDP: `n` states in a line, actions {left, right},
/// reward 1 on reaching the right end (terminal), small step penalty
/// otherwise. Optimal return from the start is `1 - penalty*(n-2)`.
///
/// The observation is the one-hot encoding of the current state.
#[derive(Debug, Clone)]
pub struct ChainEnv {
    n: usize,
    pos: usize,
    penalty: f64,
    max_steps: usize,
    steps: usize,
}

impl ChainEnv {
    /// A chain of `n >= 2` states with a per-step penalty.
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn new(n: usize, penalty: f64, max_steps: usize) -> Self {
        assert!(n >= 2, "chain needs at least 2 states");
        ChainEnv {
            n,
            pos: 0,
            penalty,
            max_steps,
            steps: 0,
        }
    }

    fn obs(&self) -> Vec<f32> {
        let mut v = vec![0.0; self.n];
        v[self.pos] = 1.0;
        v
    }

    /// The best achievable episode return from the start state.
    pub fn optimal_return(&self) -> f64 {
        1.0 - self.penalty * (self.n as f64 - 2.0)
    }
}

impl Environment for ChainEnv {
    fn state_dim(&self) -> usize {
        self.n
    }

    fn num_actions(&self) -> usize {
        2
    }

    fn reset(&mut self) -> Vec<f32> {
        self.pos = 0;
        self.steps = 0;
        self.obs()
    }

    fn step(&mut self, action: usize) -> Step {
        assert!(action < 2, "chain env has two actions");
        self.steps += 1;
        if action == 1 && self.pos + 1 < self.n {
            self.pos += 1;
        } else if action == 0 && self.pos > 0 {
            self.pos -= 1;
        }
        let at_goal = self.pos == self.n - 1;
        let done = at_goal || self.steps >= self.max_steps;
        let reward = if at_goal { 1.0 } else { -self.penalty };
        Step {
            state: self.obs(),
            reward,
            done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_reaches_goal_going_right() {
        let mut e = ChainEnv::new(4, 0.01, 50);
        let s0 = e.reset();
        assert_eq!(s0, vec![1.0, 0.0, 0.0, 0.0]);
        let mut total = 0.0;
        let mut done = false;
        for _ in 0..3 {
            let st = e.step(1);
            total += st.reward;
            done = st.done;
        }
        assert!(done);
        assert!((total - e.optimal_return()).abs() < 1e-9);
    }

    #[test]
    fn chain_truncates_at_max_steps() {
        let mut e = ChainEnv::new(5, 0.0, 4);
        e.reset();
        let mut done = false;
        for _ in 0..4 {
            done = e.step(0).done;
        }
        assert!(done, "episode must truncate");
    }

    #[test]
    fn left_at_origin_is_a_noop() {
        let mut e = ChainEnv::new(3, 0.0, 10);
        e.reset();
        let st = e.step(0);
        assert_eq!(st.state, vec![1.0, 0.0, 0.0]);
    }
}
