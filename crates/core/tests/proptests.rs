//! Property-based tests of the self-configuration layer: action-space
//! totality, encoder boundedness, reward monotonicity, and the zero-cost
//! guarantee of the fault-injection hook.

use noc_selfconf::{ActionSpace, RewardConfig, StateEncoder, SweepGrid};
use noc_sim::{
    FaultEvent, FaultPlan, FaultTarget, NodeId, Port, RoutingAlgorithm, SimConfig, TopologyKind,
    TrafficPattern, WindowMetrics,
};
use proptest::prelude::*;

fn any_metrics(regions: usize) -> impl Strategy<Value = WindowMetrics> {
    (
        1u64..10_000,
        0u64..100_000,
        0u64..100_000,
        0u64..5_000,
        0.0f64..5_000.0,
        0.0f64..1e7,
        prop::collection::vec(0.0f64..1e4, regions),
        prop::collection::vec(0u64..100_000, regions),
        0.0f64..1e5,
    )
        .prop_map(
            move |(cycles, injected, ejected, samples, lat, energy, occ, rinj, backlog)| {
                WindowMetrics {
                    cycles,
                    offered_packets: injected / 5,
                    injection_burstiness: lat % 7.9,
                    phase_cycles: vec![cycles],
                    phase_offered_packets: vec![injected / 5],
                    injected_flits: injected,
                    injected_packets: injected / 5,
                    ejected_flits: ejected,
                    ejected_packets: samples,
                    dropped_flits: 0,
                    dropped_packets: 0,
                    avg_dead_links: 0.0,
                    latency_samples: samples,
                    avg_packet_latency: if samples > 0 { lat } else { f64::NAN },
                    avg_network_latency: if samples > 0 { lat * 0.8 } else { f64::NAN },
                    avg_hops: 4.0,
                    throughput: ejected as f64 / (cycles as f64 * 64.0),
                    injection_rate: injected as f64 / (cycles as f64 * 64.0),
                    energy_pj: energy,
                    dynamic_pj: energy * 0.7,
                    leakage_pj: energy * 0.3,
                    avg_occupancy: occ.iter().sum(),
                    region_occupancy: occ,
                    region_injected_flits: rinj,
                    avg_backlog: backlog,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `levels_after` is total over its action range and always produces
    /// valid level indices, for every action-space flavor.
    #[test]
    fn action_spaces_are_total(
        num_regions in 1usize..8,
        num_levels in 2usize..6,
        current in prop::collection::vec(0usize..6, 1..8),
    ) {
        let spaces = [
            ActionSpace::UniformLevel { num_levels },
            ActionSpace::PerRegionDelta { num_regions, num_levels },
            ActionSpace::LevelAndRouting {
                num_levels,
                routings: vec![RoutingAlgorithm::Xy, RoutingAlgorithm::OddEven],
            },
        ];
        for space in spaces {
            let cur: Vec<usize> = match &space {
                ActionSpace::PerRegionDelta { num_regions, num_levels } => current
                    .iter()
                    .cycle()
                    .take(*num_regions)
                    .map(|&l| l % num_levels)
                    .collect(),
                _ => current.iter().map(|&l| l % num_levels).collect(),
            };
            for a in 0..space.num_actions() {
                let next = space.levels_after(a, &cur);
                prop_assert_eq!(next.len(), cur.len());
                prop_assert!(next.iter().all(|&l| l < num_levels),
                    "action {a} produced invalid level: {next:?}");
                // Delta moves change levels by at most one step each, and
                // either a single region or all regions in one direction.
                if matches!(space, ActionSpace::PerRegionDelta { .. }) {
                    let changed: Vec<_> = next.iter().zip(&cur)
                        .filter(|(n, c)| n != c).collect();
                    for (n, c) in &changed {
                        prop_assert_eq!(n.abs_diff(**c), 1);
                    }
                    if changed.len() > 1 {
                        // Global action: every change same direction.
                        let up = changed.iter().filter(|(n, c)| n > c).count();
                        prop_assert!(up == 0 || up == changed.len());
                    }
                }
                // Descriptions never panic and are non-empty.
                prop_assert!(!space.describe(a).is_empty());
            }
        }
    }

    /// The state encoder produces bounded, finite features for arbitrary
    /// telemetry.
    #[test]
    fn encoder_bounded_over_arbitrary_metrics(
        m in any_metrics(4),
        levels in prop::collection::vec(0usize..4, 4),
    ) {
        let encoder = StateEncoder::new(vec![320; 4], vec![16; 4], 4, 64);
        let s = encoder.encode(&m, &levels);
        prop_assert_eq!(s.len(), encoder.state_dim());
        prop_assert!(s.iter().all(|x| x.is_finite() && (0.0..=1.0).contains(x)),
            "unbounded feature in {s:?}");
    }

    /// A no-op `FaultPlan` costs nothing semantically: sweeping a grid whose
    /// base config carries an explicitly-set empty plan — or a plan whose
    /// only event starts beyond the simulated horizon — produces a
    /// `SweepReport` byte-identical to the fault-free run, at every thread
    /// count. This pins the fault hook out of the healthy-fabric path.
    #[test]
    fn noop_fault_plan_is_byte_identical_to_fault_free(
        base_seed in 0u64..1_000,
        threads in 1usize..5,
    ) {
        let grid = |plan: FaultPlan| SweepGrid {
            base: SimConfig::default().with_regions(2, 2).with_faults(plan),
            sizes: vec![(4, 4)],
            topologies: vec![TopologyKind::Mesh],
            patterns: vec![TrafficPattern::Uniform],
            rates: vec![0.08],
            routings: vec![RoutingAlgorithm::OddEven],
            levels: vec![None],
            faults: vec![0],
            workloads: vec![],
            partitions: 1,
            warmup: 100,
            measure: 300,
            drain: 300,
            base_seed,
        };
        let json = |g: &SweepGrid, threads: usize| {
            serde_json::to_string_pretty(&g.run(threads).expect("valid grid"))
                .expect("report serializes")
        };
        // An explicitly-set empty plan IS the default plan, so the whole
        // report (grid provenance included) must match bytewise.
        let fault_free = json(&grid(FaultPlan::empty()), threads);
        let baseline = json(&grid(SimConfig::default().fault_plan.clone()), 1);
        prop_assert_eq!(&fault_free, &baseline);

        // A plan whose only event never activates within the horizon leaves
        // different provenance but must leave every result untouched.
        let dormant = FaultPlan::new(vec![FaultEvent {
            start: 1_000_000, // far beyond warmup+measure+drain
            duration: None,
            target: FaultTarget::Link { node: NodeId(0), port: Port::East },
        }]).expect("valid plan");
        let dormant_report = grid(dormant).run(threads).expect("valid grid");
        let free_report = grid(FaultPlan::empty()).run(1).expect("valid grid");
        let results = |r: &noc_selfconf::SweepReport| {
            format!(
                "{}\n{}",
                serde_json::to_string_pretty(&r.scenarios).expect("scenarios serialize"),
                serde_json::to_string_pretty(&r.aggregate).expect("aggregate serializes"),
            )
        };
        prop_assert_eq!(results(&dormant_report), results(&free_report));
    }

    /// Reward is finite over arbitrary telemetry and monotone in each cost
    /// axis: more latency never raises it, more energy never raises it, more
    /// throughput never lowers it.
    #[test]
    fn reward_finite_and_monotone(m in any_metrics(4)) {
        let r = RewardConfig::default();
        let base = r.compute(&m, 64);
        prop_assert!(base.is_finite());

        if m.latency_samples > 0 {
            let mut worse = m.clone();
            worse.avg_packet_latency = m.avg_packet_latency * 1.5 + 10.0;
            prop_assert!(r.compute(&worse, 64) <= base + 1e-9);
        }
        let mut hungrier = m.clone();
        hungrier.energy_pj = m.energy_pj * 1.5 + 10.0;
        prop_assert!(r.compute(&hungrier, 64) <= base + 1e-9);

        let mut faster = m.clone();
        faster.throughput += 0.1;
        prop_assert!(r.compute(&faster, 64) >= base - 1e-9);
    }
}
