//! Property-based tests of the self-configuration layer: action-space
//! totality, encoder boundedness, reward monotonicity.

use noc_selfconf::{ActionSpace, RewardConfig, StateEncoder};
use noc_sim::{RoutingAlgorithm, WindowMetrics};
use proptest::prelude::*;

fn any_metrics(regions: usize) -> impl Strategy<Value = WindowMetrics> {
    (
        1u64..10_000,
        0u64..100_000,
        0u64..100_000,
        0u64..5_000,
        0.0f64..5_000.0,
        0.0f64..1e7,
        prop::collection::vec(0.0f64..1e4, regions),
        prop::collection::vec(0u64..100_000, regions),
        0.0f64..1e5,
    )
        .prop_map(
            move |(cycles, injected, ejected, samples, lat, energy, occ, rinj, backlog)| {
                WindowMetrics {
                    cycles,
                    injected_flits: injected,
                    ejected_flits: ejected,
                    ejected_packets: samples,
                    latency_samples: samples,
                    avg_packet_latency: if samples > 0 { lat } else { f64::NAN },
                    avg_network_latency: if samples > 0 { lat * 0.8 } else { f64::NAN },
                    avg_hops: 4.0,
                    throughput: ejected as f64 / (cycles as f64 * 64.0),
                    injection_rate: injected as f64 / (cycles as f64 * 64.0),
                    energy_pj: energy,
                    dynamic_pj: energy * 0.7,
                    leakage_pj: energy * 0.3,
                    avg_occupancy: occ.iter().sum(),
                    region_occupancy: occ,
                    region_injected_flits: rinj,
                    avg_backlog: backlog,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `levels_after` is total over its action range and always produces
    /// valid level indices, for every action-space flavor.
    #[test]
    fn action_spaces_are_total(
        num_regions in 1usize..8,
        num_levels in 2usize..6,
        current in prop::collection::vec(0usize..6, 1..8),
    ) {
        let spaces = [
            ActionSpace::UniformLevel { num_levels },
            ActionSpace::PerRegionDelta { num_regions, num_levels },
            ActionSpace::LevelAndRouting {
                num_levels,
                routings: vec![RoutingAlgorithm::Xy, RoutingAlgorithm::OddEven],
            },
        ];
        for space in spaces {
            let cur: Vec<usize> = match &space {
                ActionSpace::PerRegionDelta { num_regions, num_levels } => current
                    .iter()
                    .cycle()
                    .take(*num_regions)
                    .map(|&l| l % num_levels)
                    .collect(),
                _ => current.iter().map(|&l| l % num_levels).collect(),
            };
            for a in 0..space.num_actions() {
                let next = space.levels_after(a, &cur);
                prop_assert_eq!(next.len(), cur.len());
                prop_assert!(next.iter().all(|&l| l < num_levels),
                    "action {a} produced invalid level: {next:?}");
                // Delta moves change levels by at most one step each, and
                // either a single region or all regions in one direction.
                if matches!(space, ActionSpace::PerRegionDelta { .. }) {
                    let changed: Vec<_> = next.iter().zip(&cur)
                        .filter(|(n, c)| n != c).collect();
                    for (n, c) in &changed {
                        prop_assert_eq!(n.abs_diff(**c), 1);
                    }
                    if changed.len() > 1 {
                        // Global action: every change same direction.
                        let up = changed.iter().filter(|(n, c)| n > c).count();
                        prop_assert!(up == 0 || up == changed.len());
                    }
                }
                // Descriptions never panic and are non-empty.
                prop_assert!(!space.describe(a).is_empty());
            }
        }
    }

    /// The state encoder produces bounded, finite features for arbitrary
    /// telemetry.
    #[test]
    fn encoder_bounded_over_arbitrary_metrics(
        m in any_metrics(4),
        levels in prop::collection::vec(0usize..4, 4),
    ) {
        let encoder = StateEncoder::new(vec![320; 4], vec![16; 4], 4, 64);
        let s = encoder.encode(&m, &levels);
        prop_assert_eq!(s.len(), encoder.state_dim());
        prop_assert!(s.iter().all(|x| x.is_finite() && (0.0..=1.0).contains(x)),
            "unbounded feature in {s:?}");
    }

    /// Reward is finite over arbitrary telemetry and monotone in each cost
    /// axis: more latency never raises it, more energy never raises it, more
    /// throughput never lowers it.
    #[test]
    fn reward_finite_and_monotone(m in any_metrics(4)) {
        let r = RewardConfig::default();
        let base = r.compute(&m, 64);
        prop_assert!(base.is_finite());

        if m.latency_samples > 0 {
            let mut worse = m.clone();
            worse.avg_packet_latency = m.avg_packet_latency * 1.5 + 10.0;
            prop_assert!(r.compute(&worse, 64) <= base + 1e-9);
        }
        let mut hungrier = m.clone();
        hungrier.energy_pj = m.energy_pj * 1.5 + 10.0;
        prop_assert!(r.compute(&hungrier, 64) <= base + 1e-9);

        let mut faster = m.clone();
        faster.throughput += 0.1;
        prop_assert!(r.compute(&faster, 64) >= base - 1e-9);
    }
}
