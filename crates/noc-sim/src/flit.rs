//! Packets and flits. Packets are segmented into flits at injection time;
//! wormhole switching moves flits through the network and the tail flit
//! releases resources behind it.

use crate::topology::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Globally unique packet identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The role a flit plays inside its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlitKind {
    /// First flit; carries routing information.
    Head,
    /// Interior flit.
    Body,
    /// Last flit; releases the virtual channels held by the packet.
    Tail,
    /// Single-flit packet (head and tail at once).
    Single,
}

impl FlitKind {
    /// Whether this flit opens a packet (performs route computation and VC
    /// allocation).
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::Single)
    }

    /// Whether this flit closes a packet (releases the channel).
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::Single)
    }
}

/// One flow-control unit traversing the network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flit {
    /// Packet this flit belongs to.
    pub packet: PacketId,
    /// Role within the packet.
    pub kind: FlitKind,
    /// Position within the packet, starting at 0 for the head.
    pub seq: u32,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Cycle at which the parent packet was created by the traffic source
    /// (start of queuing delay).
    pub created_at: u64,
    /// Cycle at which the head flit entered the network (left the source
    /// queue); used for network latency.
    pub injected_at: u64,
    /// Virtual channel currently occupied at the current input port.
    pub vc: usize,
    /// Number of router hops traversed so far.
    pub hops: u32,
    /// Virtual-channel class for dateline deadlock avoidance on tori: 0
    /// before crossing a wrap-around link, 1 after. Always 0 on meshes.
    pub vc_class: u8,
}

impl Flit {
    /// Whether this flit opens its packet.
    pub fn is_head(&self) -> bool {
        self.kind.is_head()
    }

    /// Whether this flit closes its packet.
    pub fn is_tail(&self) -> bool {
        self.kind.is_tail()
    }
}

/// A packet produced by a traffic source, waiting to be segmented into flits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique id.
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Number of flits this packet is segmented into (>= 1).
    pub len_flits: u32,
    /// Cycle at which the packet was created by the traffic source.
    pub created_at: u64,
}

impl Packet {
    /// Segment the packet into its flit sequence, stamping `injected_at` with
    /// the cycle the head flit leaves the source queue.
    pub fn to_flits(&self, injected_at: u64) -> Vec<Flit> {
        assert!(self.len_flits >= 1, "packet must contain at least one flit");
        let n = self.len_flits;
        (0..n)
            .map(|i| {
                let kind = if n == 1 {
                    FlitKind::Single
                } else if i == 0 {
                    FlitKind::Head
                } else if i == n - 1 {
                    FlitKind::Tail
                } else {
                    FlitKind::Body
                };
                Flit {
                    packet: self.id,
                    kind,
                    seq: i,
                    src: self.src,
                    dst: self.dst,
                    created_at: self.created_at,
                    injected_at,
                    vc: 0,
                    hops: 0,
                    vc_class: 0,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(len: u32) -> Packet {
        Packet {
            id: PacketId(7),
            src: NodeId(0),
            dst: NodeId(3),
            len_flits: len,
            created_at: 10,
        }
    }

    #[test]
    fn single_flit_packet_is_single_kind() {
        let flits = packet(1).to_flits(12);
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::Single);
        assert!(flits[0].is_head() && flits[0].is_tail());
        assert_eq!(flits[0].injected_at, 12);
        assert_eq!(flits[0].created_at, 10);
    }

    #[test]
    fn multi_flit_packet_has_head_body_tail() {
        let flits = packet(5).to_flits(11);
        assert_eq!(flits.len(), 5);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[1].kind, FlitKind::Body);
        assert_eq!(flits[3].kind, FlitKind::Body);
        assert_eq!(flits[4].kind, FlitKind::Tail);
        assert!(flits.iter().enumerate().all(|(i, f)| f.seq as usize == i));
    }

    #[test]
    fn two_flit_packet_is_head_then_tail() {
        let flits = packet(2).to_flits(0);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[1].kind, FlitKind::Tail);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_length_packet_panics() {
        let _ = packet(0).to_flits(0);
    }
}
