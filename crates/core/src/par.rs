//! Ordered parallel map over an index range.
//!
//! The one worker-pool primitive the workspace needs: scoped OS threads
//! pull indices from an atomic counter and write results into their index
//! slot, so the output order is always `0..n` regardless of scheduling.
//! Both the scenario-sweep engine and the `bench` experiment harness run
//! their fan-out through this function.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default worker count for [`parallel_map`]: one per available core,
/// falling back to 4 when the count is unknowable.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Run `f(0..n)` on up to `threads` OS threads and collect results in
/// index order.
///
/// # Panics
/// Propagates panics from `f` (the scope joins all workers first).
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let slots = Mutex::new(&mut out);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let v = f(i);
                slots.lock().expect("no panics while holding the slot lock")[i] = Some(v);
            });
        }
    });
    out.into_iter()
        .map(|v| v.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order_under_any_thread_count() {
        let expect: Vec<usize> = (0..100).map(|i| i * i).collect();
        for threads in [1, 2, 7, 128] {
            assert_eq!(parallel_map(100, threads, |i| i * i), expect);
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
    }
}
