//! Energy-aware DVFS with a deep-RL agent: train a small DQN policy on the
//! self-configuration environment and compare it against the static and
//! heuristic baselines on an unseen workload.
//!
//! Run with: `cargo run --release --example energy_aware_dvfs`
//! (training takes ~1–2 minutes; set `EPISODES=10` for a fast demo).

use noc_selfconf::{
    run_controller, train_drl, DrlController, NocEnvConfig, StaticController, ThresholdController,
};
use noc_sim::{SimConfig, SimError, Simulator, TrafficPattern};
use rl::{DqnConfig, Schedule, TrainConfig};

fn main() -> Result<(), SimError> {
    let episodes: usize = std::env::var("EPISODES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    // Train on a 4×4 mesh (fast) over a menu of loads.
    let sim = SimConfig::default()
        .with_size(4, 4)
        .with_regions(2, 2)
        .with_traffic(TrafficPattern::Uniform, 0.1);
    let env_cfg = NocEnvConfig {
        sim: sim.clone(),
        epoch_cycles: 400,
        epochs_per_episode: 30,
        ..NocEnvConfig::default()
    };
    println!("training DQN for {episodes} episodes...");
    let policy = train_drl(
        env_cfg,
        DqnConfig::default(),
        TrainConfig {
            episodes,
            max_steps: 30,
            epsilon: Schedule::Linear {
                start: 1.0,
                end: 0.05,
                steps: (episodes * 20) as u64,
            },
            train_per_step: 1,
            seed: 42,
        },
    )?;
    let quarter = (policy.curve.len() / 4).max(1);
    let early: f64 = policy.curve[..quarter]
        .iter()
        .map(|e| e.total_reward)
        .sum::<f64>()
        / quarter as f64;
    let late: f64 = policy.curve[policy.curve.len() - quarter..]
        .iter()
        .map(|e| e.total_reward)
        .sum::<f64>()
        / quarter as f64;
    println!("  mean episode return: first quarter {early:.2} → last quarter {late:.2}");

    // Evaluate on a held-out workload: transpose at a rate not in the menu.
    let eval = sim
        .clone()
        .with_traffic(TrafficPattern::Transpose, 0.15)
        .with_seed(999);
    println!("\nevaluation on transpose @ 0.15 (unseen):");
    let caps = Simulator::new(eval.clone())?.network().region_capacity();
    let mut controllers: Vec<Box<dyn noc_selfconf::Controller>> = vec![
        Box::new(StaticController::max()),
        Box::new(StaticController::min()),
        Box::new(ThresholdController::new(caps, eval.width * eval.height)),
        Box::new(DrlController::new(
            policy.agent,
            policy.encoder,
            policy.action_space,
        )),
    ];
    for controller in controllers.iter_mut() {
        let out = run_controller(&eval, controller.as_mut(), 40, 400)?;
        println!(
            "  {:<12} latency {:7.1}  energy {:8.1} nJ  EDP {:10.2}e6  mean level {:.2}",
            out.aggregate.controller,
            out.aggregate.avg_latency,
            out.aggregate.energy_pj / 1e3,
            out.aggregate.edp / 1e6,
            out.aggregate.mean_level,
        );
    }
    Ok(())
}
