//! Activation functions.

use crate::tensor::Matrix;
use serde::{Deserialize, Serialize};

/// The supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Identity (for output layers that regress values, e.g. Q-heads).
    Linear,
    /// Rectified linear unit: `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Apply the activation element-wise.
    pub fn apply(self, x: &mut Matrix) {
        match self {
            Activation::Linear => {}
            Activation::Relu => x.map_inplace(|v| v.max(0.0)),
            Activation::Tanh => x.map_inplace(f32::tanh),
            Activation::Sigmoid => x.map_inplace(|v| 1.0 / (1.0 + (-v).exp())),
        }
    }

    /// The derivative evaluated from the *post-activation* value `y = f(x)`.
    /// All supported activations admit this form, which avoids caching
    /// pre-activation values.
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Linear => 1.0,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply_scalar(a: Activation, x: f32) -> f32 {
        let mut m = Matrix::row(vec![x]);
        a.apply(&mut m);
        m.get(0, 0)
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(apply_scalar(Activation::Relu, -2.0), 0.0);
        assert_eq!(apply_scalar(Activation::Relu, 3.0), 3.0);
    }

    #[test]
    fn tanh_and_sigmoid_ranges() {
        assert!((apply_scalar(Activation::Tanh, 100.0) - 1.0).abs() < 1e-6);
        assert!((apply_scalar(Activation::Sigmoid, 100.0) - 1.0).abs() < 1e-6);
        assert!(apply_scalar(Activation::Sigmoid, -100.0).abs() < 1e-6);
        assert_eq!(apply_scalar(Activation::Sigmoid, 0.0), 0.5);
    }

    #[test]
    fn linear_is_identity() {
        assert_eq!(apply_scalar(Activation::Linear, -7.5), -7.5);
    }

    /// Numerical check: derivative_from_output matches (f(x+h)-f(x-h))/2h.
    #[test]
    fn derivatives_match_numerical() {
        let h = 1e-3f32;
        for a in [
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Linear,
        ] {
            for &x in &[-1.5f32, -0.3, 0.4, 2.0] {
                if a == Activation::Relu && x.abs() < 2.0 * h {
                    continue; // kink
                }
                let y = apply_scalar(a, x);
                let num = (apply_scalar(a, x + h) - apply_scalar(a, x - h)) / (2.0 * h);
                let ana = a.derivative_from_output(y);
                assert!(
                    (num - ana).abs() < 1e-2,
                    "{a:?} at {x}: numerical {num} vs analytic {ana}"
                );
            }
        }
    }
}
