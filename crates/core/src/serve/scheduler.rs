//! Admission-controlled, fair-share job scheduler for the sweep daemon.
//!
//! The scheduler owns a pool of worker threads (the daemon-side analogue of
//! [`crate::par::parallel_map`]'s per-call pool — persistent here, because
//! the daemon is long-lived) and dispatches work at *scenario* granularity,
//! round-robin across clients with FIFO order within each client. One
//! client's 64x64 grid therefore interleaves with — instead of starving —
//! everyone else's two-scenario probes.
//!
//! **Admission control** happens at submit time: a job is rejected up front
//! (`queue_full` / `client_quota`) when its scenario count would push the
//! global or per-client outstanding-scenario total past the configured
//! bounds. Rejection is cheap and explicit; nothing is silently queued
//! forever.
//!
//! **Ordering.** Scenarios complete in whatever order the pool and the
//! cache produce, but events are *emitted* in grid order: a finished result
//! is held until every earlier index has been sent. Together with
//! connection-scoped job ids this makes a job's response stream a pure
//! function of the submitted grid — the byte-identity the `serve-smoke` CI
//! job pins across concurrent clients. All event sends happen under the
//! scheduler lock, which serializes them per connection channel.
//!
//! **Cleanup invariant.** Every admitted scenario is accounted for exactly
//! once: emitted, discarded by cancel/failure, or dropped undispatched.
//! Cancels (explicit or via disconnect) immediately release undispatched
//! reservations and discard in-flight results as they land, so a vanished
//! client can never leak pool slots or quota.

use crate::serve::cache::{scenario_cache_key, ResultCache};
use crate::serve::protocol::{ErrorCode, Event, SchedulerStats};
use crate::sweep::{Scenario, ScenarioResult, SweepGrid};
use noc_sim::SimResult;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Scheduler-internal job identifier (monotone across all connections; the
/// connection-scoped ids clients see are mapped by the connection layer).
pub type JobId = u64;

/// Tuning knobs for [`Scheduler::start`].
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker threads (0 = [`crate::par::default_threads`]).
    pub threads: usize,
    /// Global outstanding-scenario bound; submits past it are rejected
    /// with [`ErrorCode::QueueFull`].
    pub max_outstanding: u64,
    /// Per-client outstanding-scenario bound; submits past it are rejected
    /// with [`ErrorCode::ClientQuota`].
    pub max_client_outstanding: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            threads: 0,
            max_outstanding: 65_536,
            max_client_outstanding: 16_384,
        }
    }
}

/// One admitted job's bookkeeping.
struct JobState {
    client: String,
    conn_job: u64,
    tx: Sender<Event>,
    grid: Arc<SweepGrid>,
    scenarios: Arc<Vec<Scenario>>,
    /// Next undispatched scenario index (== len when fully dispatched or
    /// truncated by cancel/failure).
    next: usize,
    /// Scenarios currently executing on workers.
    dispatched: usize,
    /// Results sent to the client so far (in-order emission cursor).
    emitted: usize,
    /// Completion slots, indexed by scenario index.
    results: Vec<Option<ScenarioResult>>,
    canceled: bool,
    failed: Option<String>,
}

impl JobState {
    fn total(&self) -> usize {
        self.results.len()
    }

    fn terminal_pending(&self) -> bool {
        self.canceled || self.failed.is_some()
    }
}

#[derive(Default)]
struct SchedState {
    jobs: HashMap<JobId, JobState>,
    /// FIFO of queued jobs per client.
    client_queues: HashMap<String, VecDeque<JobId>>,
    /// Round-robin rotation of clients with queued jobs.
    rr: VecDeque<String>,
    /// Outstanding (admitted, unfinished) scenarios per client.
    client_outstanding: HashMap<String, u64>,
    outstanding: u64,
    next_job_id: JobId,
    shutdown: bool,
}

/// A dispatched unit of work: one scenario of one job.
struct WorkItem {
    job: JobId,
    index: usize,
    grid: Arc<SweepGrid>,
    scenarios: Arc<Vec<Scenario>>,
}

/// The daemon's scheduler: persistent worker pool + fair-share queue +
/// shared result cache. All methods take `&self`; share behind an `Arc`.
pub struct Scheduler {
    cache: Arc<ResultCache>,
    state: Mutex<SchedState>,
    work_cv: Condvar,
    threads: usize,
    max_outstanding: u64,
    max_client_outstanding: u64,
    sim_runs: AtomicU64,
    finished_jobs: AtomicU64,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("threads", &self.threads)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Scheduler {
    /// Spawn the worker pool and return the shared scheduler handle.
    pub fn start(config: SchedulerConfig, cache: Arc<ResultCache>) -> Arc<Scheduler> {
        let threads = if config.threads == 0 {
            crate::par::default_threads()
        } else {
            config.threads
        };
        let scheduler = Arc::new(Scheduler {
            cache,
            state: Mutex::new(SchedState::default()),
            work_cv: Condvar::new(),
            threads,
            max_outstanding: config.max_outstanding,
            max_client_outstanding: config.max_client_outstanding,
            sim_runs: AtomicU64::new(0),
            finished_jobs: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
        });
        let mut workers = scheduler.workers.lock().expect("worker list poisoned");
        for i in 0..threads {
            let sched = Arc::clone(&scheduler);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("noc-serve-worker-{i}"))
                    .spawn(move || sched.worker_loop())
                    .expect("spawn worker"),
            );
        }
        drop(workers);
        scheduler
    }

    /// The shared result cache.
    pub fn cache(&self) -> &Arc<ResultCache> {
        &self.cache
    }

    /// Worker-pool size.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Snapshot the scheduler counters.
    pub fn stats(&self) -> SchedulerStats {
        let state = self.state.lock().expect("scheduler state poisoned");
        SchedulerStats {
            outstanding_scenarios: state.outstanding,
            active_jobs: state.jobs.len() as u64,
            finished_jobs: self.finished_jobs.load(Ordering::Relaxed),
            sim_runs: self.sim_runs.load(Ordering::Relaxed),
        }
    }

    /// Validate, admit, and enqueue a job. On success the `accepted` event
    /// has already been queued on `tx` (under the scheduler lock, so it
    /// precedes every result event) and the returned [`JobId`] names the
    /// job for [`Scheduler::status`] / [`Scheduler::cancel`].
    ///
    /// # Errors
    /// Returns the structured rejection to send as an `error` event:
    /// invalid or empty grids, shutdown in progress, or an admission bound.
    pub fn submit(
        &self,
        client: &str,
        conn_job: u64,
        grid: SweepGrid,
        tx: &Sender<Event>,
    ) -> Result<JobId, (ErrorCode, String)> {
        let scenarios = grid.scenarios();
        if scenarios.is_empty() {
            return Err((
                ErrorCode::InvalidGrid,
                "grid expands to zero scenarios".to_string(),
            ));
        }
        grid.validate_scenarios(&scenarios)
            .map_err(|e| (ErrorCode::InvalidGrid, e.to_string()))?;
        let n = scenarios.len() as u64;
        let mut state = self.state.lock().expect("scheduler state poisoned");
        if state.shutdown {
            return Err((
                ErrorCode::ShuttingDown,
                "daemon is shutting down".to_string(),
            ));
        }
        if state.outstanding + n > self.max_outstanding {
            return Err((
                ErrorCode::QueueFull,
                format!(
                    "global queue full: {} outstanding + {n} submitted > {} allowed",
                    state.outstanding, self.max_outstanding
                ),
            ));
        }
        let client_out = state.client_outstanding.get(client).copied().unwrap_or(0);
        if client_out + n > self.max_client_outstanding {
            return Err((
                ErrorCode::ClientQuota,
                format!(
                    "client quota full: {client_out} outstanding + {n} submitted > {} allowed",
                    self.max_client_outstanding
                ),
            ));
        }
        state.next_job_id += 1;
        let id = state.next_job_id;
        state.outstanding += n;
        *state
            .client_outstanding
            .entry(client.to_string())
            .or_insert(0) += n;
        let job = JobState {
            client: client.to_string(),
            conn_job,
            tx: tx.clone(),
            grid: Arc::new(grid),
            scenarios: Arc::new(scenarios),
            next: 0,
            dispatched: 0,
            emitted: 0,
            results: (0..n as usize).map(|_| None).collect(),
            canceled: false,
            failed: None,
        };
        // Queue the accepted event before workers can see the job — the
        // lock orders it ahead of every result on this channel.
        let _ = tx.send(Event::Accepted {
            job: conn_job,
            scenarios: n,
        });
        state.jobs.insert(id, job);
        if !state.client_queues.contains_key(client) {
            state.rr.push_back(client.to_string());
            state
                .client_queues
                .insert(client.to_string(), VecDeque::new());
        }
        state
            .client_queues
            .get_mut(client)
            .expect("inserted above")
            .push_back(id);
        drop(state);
        self.work_cv.notify_all();
        Ok(id)
    }

    /// Query a job's progress. `None` when the job is unknown or already
    /// terminal.
    pub fn status(&self, id: JobId) -> Option<(String, u64, u64)> {
        let state = self.state.lock().expect("scheduler state poisoned");
        let job = state.jobs.get(&id)?;
        let phase = if job.terminal_pending() {
            "canceling"
        } else if job.next == 0 && job.dispatched == 0 {
            "queued"
        } else {
            "running"
        };
        Some((phase.to_string(), job.emitted as u64, job.total() as u64))
    }

    /// Cancel a job: undispatched scenarios are dropped (reservations freed
    /// immediately), in-flight results are discarded as they land, and the
    /// terminal `canceled` event carries the count already streamed.
    /// Returns `false` when the job is unknown or already terminal.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut state = self.state.lock().expect("scheduler state poisoned");
        let Some(job) = state.jobs.get(&id) else {
            return false;
        };
        if job.terminal_pending() {
            return true; // already canceling; idempotent
        }
        self.cancel_locked(&mut state, id, None);
        true
    }

    /// Cancel every listed job without expecting the client to read the
    /// terminal events (its connection is gone; sends fail silently).
    pub fn disconnect(&self, jobs: &[JobId]) {
        let mut state = self.state.lock().expect("scheduler state poisoned");
        for &id in jobs {
            let still_active = state.jobs.get(&id).is_some_and(|j| !j.terminal_pending());
            if still_active {
                self.cancel_locked(&mut state, id, None);
            }
        }
    }

    /// Stop admitting jobs and let workers drain the queue, then exit.
    pub fn begin_shutdown(&self) {
        let mut state = self.state.lock().expect("scheduler state poisoned");
        state.shutdown = true;
        drop(state);
        self.work_cv.notify_all();
    }

    /// Join the worker pool (after [`Scheduler::begin_shutdown`]).
    pub fn join(&self) {
        let mut workers = self.workers.lock().expect("worker list poisoned");
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }

    /// Mark a job canceled or failed: truncate its undispatched tail, free
    /// those reservations, and finalize immediately when nothing is in
    /// flight. Caller holds the state lock and has checked the job exists
    /// and is not already terminal-pending.
    fn cancel_locked(&self, state: &mut SchedState, id: JobId, failure: Option<String>) {
        let job = state.jobs.get_mut(&id).expect("checked by caller");
        let undispatched = (job.total() - job.next) as u64;
        job.next = job.total();
        match failure {
            Some(message) => job.failed = Some(message),
            None => job.canceled = true,
        }
        let client = job.client.clone();
        let idle = job.dispatched == 0;
        state.outstanding -= undispatched;
        release_client(&mut state.client_outstanding, &client, undispatched);
        if idle {
            self.finalize(state, id);
        }
    }

    /// Send a job's terminal event and drop its bookkeeping. Caller holds
    /// the state lock; the job must have nothing dispatched.
    fn finalize(&self, state: &mut SchedState, id: JobId) {
        let job = state.jobs.remove(&id).expect("finalize of unknown job");
        debug_assert_eq!(job.dispatched, 0);
        let event = if let Some(message) = job.failed {
            Event::Failed {
                job: job.conn_job,
                message,
            }
        } else if job.canceled {
            Event::Canceled {
                job: job.conn_job,
                completed: job.emitted as u64,
            }
        } else {
            let results: Vec<ScenarioResult> = job
                .results
                .into_iter()
                .map(|r| r.expect("complete job has every result"))
                .collect();
            let report = job.grid.report_from_results(results, self.threads);
            Event::Done {
                job: job.conn_job,
                report: Box::new(report),
            }
        };
        let _ = job.tx.send(event);
        self.finished_jobs.fetch_add(1, Ordering::Relaxed);
    }

    /// Pick the next scenario to run: rotate across clients, FIFO within a
    /// client, one scenario per turn. Caller holds the state lock.
    fn pick(state: &mut SchedState) -> Option<WorkItem> {
        for _ in 0..state.rr.len() {
            let client = state.rr.pop_front().expect("rr length checked");
            let queue = state
                .client_queues
                .get_mut(&client)
                .expect("rr client has a queue");
            // Drop finished/truncated jobs off the front of the FIFO.
            while let Some(&front) = queue.front() {
                let exhausted = state.jobs.get(&front).is_none_or(|j| j.next >= j.total());
                if exhausted {
                    queue.pop_front();
                } else {
                    break;
                }
            }
            let Some(&front) = queue.front() else {
                state.client_queues.remove(&client);
                continue; // client rotated out until its next submit
            };
            let job = state.jobs.get_mut(&front).expect("front job exists");
            let index = job.next;
            job.next += 1;
            job.dispatched += 1;
            let item = WorkItem {
                job: front,
                index,
                grid: Arc::clone(&job.grid),
                scenarios: Arc::clone(&job.scenarios),
            };
            state.rr.push_back(client);
            return Some(item);
        }
        None
    }

    fn worker_loop(self: Arc<Scheduler>) {
        loop {
            let item = {
                let mut state = self.state.lock().expect("scheduler state poisoned");
                loop {
                    if let Some(item) = Self::pick(&mut state) {
                        break Some(item);
                    }
                    if state.shutdown {
                        break None;
                    }
                    state = self.work_cv.wait(state).expect("scheduler state poisoned");
                }
            };
            let Some(item) = item else {
                return;
            };
            let scenario = &item.scenarios[item.index];
            let key = scenario_cache_key(
                scenario,
                item.grid.warmup,
                item.grid.measure,
                item.grid.drain,
            );
            let outcome = self
                .cache
                .get_or_compute(&key, || {
                    self.sim_runs.fetch_add(1, Ordering::Relaxed);
                    item.grid.run_scenario(scenario)
                })
                .map(|(result, _)| result);
            self.complete(item.job, item.index, outcome);
        }
    }

    /// Record one finished scenario: stream every newly in-order result,
    /// then finalize the job if this was its last outstanding piece.
    fn complete(&self, id: JobId, index: usize, outcome: SimResult<ScenarioResult>) {
        let mut state = self.state.lock().expect("scheduler state poisoned");
        {
            // The job must still exist: it is only removed when nothing is
            // dispatched, and this scenario was.
            let job = state.jobs.get_mut(&id).expect("job with dispatched work");
            job.dispatched -= 1;
            let client = job.client.clone();
            state.outstanding -= 1;
            release_client(&mut state.client_outstanding, &client, 1);
        }
        match outcome {
            Ok(result) => {
                let job = state.jobs.get_mut(&id).expect("job with dispatched work");
                if !job.terminal_pending() {
                    job.results[index] = Some(result);
                    while job.emitted < job.total() && job.results[job.emitted].is_some() {
                        let event = Event::Result {
                            job: job.conn_job,
                            index: job.emitted as u64,
                            result: Box::new(
                                job.results[job.emitted].clone().expect("checked is_some"),
                            ),
                        };
                        let _ = job.tx.send(event);
                        job.emitted += 1;
                    }
                }
                // Canceled/failed jobs discard the result (the cache keeps
                // it, so nothing is wasted).
            }
            Err(e) => {
                let already_terminal = state
                    .jobs
                    .get(&id)
                    .expect("job with dispatched work")
                    .terminal_pending();
                if !already_terminal {
                    self.cancel_locked(&mut state, id, Some(e.to_string()));
                    // cancel_locked finalizes only when idle; the
                    // dispatched count was already decremented above, so a
                    // lone failure finalizes right here.
                    return;
                }
            }
        }
        let job = state.jobs.get(&id).expect("job with dispatched work");
        let finished = job.emitted == job.total() && job.dispatched == 0;
        let terminal_ready = job.terminal_pending() && job.dispatched == 0;
        if finished || terminal_ready {
            self.finalize(&mut state, id);
        }
    }
}

/// Decrement a client's outstanding count, dropping the entry at zero.
fn release_client(outstanding: &mut HashMap<String, u64>, client: &str, n: u64) {
    if n == 0 {
        return;
    }
    if let Some(count) = outstanding.get_mut(client) {
        *count = count.saturating_sub(n);
        if *count == 0 {
            outstanding.remove(client);
        }
    }
}
