//! Serialization half of the stub data model.

use crate::value::{to_value, SerError};
use crate::Value;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Display;

/// Errors producible by a [`Serializer`] (mirrors `serde::ser::Error`).
pub trait Error: Sized + std::error::Error {
    /// Build an error from any displayable message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A sink for the [`Value`] data model (mirrors `serde::Serializer`).
///
/// Unlike real serde there is one method per *tree*, not per scalar: a
/// `Serialize` impl builds a [`Value`] (usually via [`to_value`]) and hands
/// it over with [`Serializer::serialize_value`]. The `serialize_some` /
/// `serialize_none` pair exists so hand-written `with`-modules from the
/// real serde idiom (e.g. NaN ↔ `null` adapters) compile unchanged.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Accept a fully built value tree.
    fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;

    /// Serialize `Some(value)`; the stub model has no dedicated option
    /// representation, so this forwards to the inner value.
    fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<Self::Ok, Self::Error>;

    /// Serialize `None` as null.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }

    /// Serialize a unit value as null.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }
}

/// Types convertible into the [`Value`] data model (mirrors
/// `serde::Serialize`).
pub trait Serialize {
    /// Feed `self` into the serializer.
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error>;
}

fn fail<S: Serializer>(s: S, v: Result<Value, SerError>) -> Result<S::Ok, S::Error> {
    match v {
        Ok(v) => s.serialize_value(v),
        Err(e) => Err(S::Error::custom(e)),
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::U64(*self as u64))
            }
        }
    )*};
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let n = *self as i64;
                if n >= 0 {
                    s.serialize_value(Value::U64(n as u64))
                } else {
                    s.serialize_value(Value::I64(n))
                }
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::F64(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::F64(*self as f64))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Bool(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.clone()))
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => s.serialize_some(v),
            None => s.serialize_none(),
        }
    }
}

fn seq_value<'a, T: Serialize + 'a, I: Iterator<Item = &'a T>>(
    items: I,
) -> Result<Value, SerError> {
    let vs: Result<Vec<Value>, SerError> = items.map(|x| to_value(x)).collect();
    Ok(Value::Seq(vs?))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        fail(s, seq_value(self.iter()))
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        fail(s, seq_value(self.iter()))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        fail(s, seq_value(self.iter()))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        fail(s, seq_value(self.iter()))
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let build = || -> Result<Value, SerError> {
                    Ok(Value::Seq(vec![$(to_value(&self.$n)?),+]))
                };
                fail(s, build())
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Map keys renderable as JSON object keys (strings and integers, which
/// serde_json stringifies).
pub trait MapKey {
    /// The JSON object key for this value.
    fn to_key(&self) -> String;
    /// Parse a value back out of a JSON object key.
    fn from_key(key: &str) -> Option<Self>
    where
        Self: Sized;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Option<Self> {
        Some(key.to_string())
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Option<Self> {
                key.parse().ok()
            }
        }
    )*};
}

int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let build = || -> Result<Value, SerError> {
            // Sort keys so HashMap iteration order can't leak into output.
            let mut entries: Vec<(String, &V)> =
                self.iter().map(|(k, v)| (k.to_key(), v)).collect();
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            entries
                .into_iter()
                .map(|(k, v)| Ok((k, to_value(v)?)))
                .collect::<Result<Vec<_>, SerError>>()
                .map(Value::Map)
        };
        fail(s, build())
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let build = || -> Result<Value, SerError> {
            let mut entries = Vec::with_capacity(self.len());
            for (k, v) in self {
                entries.push((k.to_key(), to_value(v)?));
            }
            Ok(Value::Map(entries))
        };
        fail(s, build())
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(self.clone())
    }
}
