//! Action spaces: how an agent's discrete action index maps onto NoC
//! configuration changes.

use noc_sim::{RoutingAlgorithm, SimResult, Simulator};
use serde::{Deserialize, Serialize};

/// The configuration knobs a discrete action controls.
///
/// ```
/// use noc_selfconf::ActionSpace;
///
/// let space = ActionSpace::PerRegionDelta { num_regions: 4, num_levels: 4 };
/// assert_eq!(space.num_actions(), 11);
/// // Action 1 raises region 0 one level.
/// assert_eq!(space.levels_after(1, &[2, 2, 2, 2]), vec![3, 2, 2, 2]);
/// // The penultimate action raises every region (burst response).
/// assert_eq!(space.levels_after(9, &[1, 2, 3, 0]), vec![2, 3, 3, 1]);
/// assert_eq!(space.describe(0), "hold");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ActionSpace {
    /// Action `a` sets *every* region to V/F level `a`.
    UniformLevel {
        /// Number of V/F levels.
        num_levels: usize,
    },
    /// Action 0 holds; action `1 + 2r` raises region `r` one level; action
    /// `2 + 2r` lowers it one level (saturating); the final two actions
    /// raise/lower *every* region at once (fast response to global load
    /// swings). The paper-style default: fine-grained spatial control with
    /// a small action count (`2R + 3`).
    PerRegionDelta {
        /// Number of DVFS regions.
        num_regions: usize,
        /// Number of V/F levels.
        num_levels: usize,
    },
    /// Cross product of a uniform V/F level and a routing algorithm:
    /// action = `level * routings.len() + routing_index`.
    LevelAndRouting {
        /// Number of V/F levels.
        num_levels: usize,
        /// Selectable routing algorithms.
        routings: Vec<RoutingAlgorithm>,
    },
}

impl ActionSpace {
    /// Number of discrete actions.
    pub fn num_actions(&self) -> usize {
        match self {
            ActionSpace::UniformLevel { num_levels } => *num_levels,
            ActionSpace::PerRegionDelta { num_regions, .. } => 2 * num_regions + 3,
            ActionSpace::LevelAndRouting {
                num_levels,
                routings,
            } => num_levels * routings.len(),
        }
    }

    /// The per-region level vector that results from taking `action` with
    /// the regions currently at `levels`. Pure function used by controllers
    /// and tests; [`ActionSpace::apply`] actuates it on a simulator.
    ///
    /// # Panics
    /// Panics if `action >= num_actions()` or `levels` has the wrong length
    /// for a per-region space.
    pub fn levels_after(&self, action: usize, levels: &[usize]) -> Vec<usize> {
        assert!(action < self.num_actions(), "action {action} out of range");
        match self {
            ActionSpace::UniformLevel { .. } => vec![action; levels.len()],
            ActionSpace::PerRegionDelta {
                num_regions,
                num_levels,
            } => {
                assert_eq!(levels.len(), *num_regions, "level vector length mismatch");
                let mut out = levels.to_vec();
                if action == 2 * num_regions + 1 {
                    for l in &mut out {
                        *l = (*l + 1).min(num_levels - 1);
                    }
                } else if action == 2 * num_regions + 2 {
                    for l in &mut out {
                        *l = l.saturating_sub(1);
                    }
                } else if action > 0 {
                    let r = (action - 1) / 2;
                    if action % 2 == 1 {
                        out[r] = (out[r] + 1).min(num_levels - 1);
                    } else {
                        out[r] = out[r].saturating_sub(1);
                    }
                }
                out
            }
            ActionSpace::LevelAndRouting { routings, .. } => {
                vec![action / routings.len(); levels.len()]
            }
        }
    }

    /// The routing algorithm selected by `action`, if this space controls
    /// routing.
    pub fn routing_after(&self, action: usize) -> Option<RoutingAlgorithm> {
        match self {
            ActionSpace::LevelAndRouting { routings, .. } => {
                Some(routings[action % routings.len()])
            }
            _ => None,
        }
    }

    /// Actuate `action` on a simulator.
    ///
    /// # Errors
    /// Returns an error if a resulting level or routing choice is invalid
    /// for the simulator (cannot happen for spaces constructed consistently
    /// with the simulator's configuration).
    ///
    /// # Panics
    /// Panics if `action >= num_actions()`.
    pub fn apply(&self, action: usize, sim: &mut Simulator) -> SimResult<()> {
        let levels = self.levels_after(action, sim.region_levels());
        for (r, &l) in levels.iter().enumerate() {
            sim.set_region_level(r, l)?;
        }
        if let Some(routing) = self.routing_after(action) {
            sim.set_routing(routing)?;
        }
        Ok(())
    }

    /// Human-readable description of an action (for experiment logs).
    pub fn describe(&self, action: usize) -> String {
        match self {
            ActionSpace::UniformLevel { .. } => format!("set all regions to level {action}"),
            ActionSpace::PerRegionDelta { num_regions, .. } => {
                if action == 0 {
                    "hold".to_string()
                } else if action == 2 * num_regions + 1 {
                    "raise all regions".to_string()
                } else if action == 2 * num_regions + 2 {
                    "lower all regions".to_string()
                } else {
                    let r = (action - 1) / 2;
                    if action % 2 == 1 {
                        format!("raise region {r}")
                    } else {
                        format!("lower region {r}")
                    }
                }
            }
            ActionSpace::LevelAndRouting { routings, .. } => {
                let level = action / routings.len();
                let routing = routings[action % routings.len()];
                format!("level {level}, routing {routing:?}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::{SimConfig, TrafficPattern};

    #[test]
    fn uniform_space_counts_levels() {
        let a = ActionSpace::UniformLevel { num_levels: 4 };
        assert_eq!(a.num_actions(), 4);
        assert_eq!(a.levels_after(2, &[0, 3, 1, 2]), vec![2, 2, 2, 2]);
        assert!(a.routing_after(2).is_none());
    }

    #[test]
    fn per_region_delta_holds_raises_and_lowers() {
        let a = ActionSpace::PerRegionDelta {
            num_regions: 4,
            num_levels: 4,
        };
        assert_eq!(a.num_actions(), 11);
        let cur = vec![1, 1, 1, 1];
        assert_eq!(a.levels_after(0, &cur), cur, "action 0 holds");
        assert_eq!(a.levels_after(1, &cur), vec![2, 1, 1, 1], "raise region 0");
        assert_eq!(a.levels_after(2, &cur), vec![0, 1, 1, 1], "lower region 0");
        assert_eq!(a.levels_after(7, &cur), vec![1, 1, 1, 2], "raise region 3");
        assert_eq!(a.levels_after(8, &cur), vec![1, 1, 1, 0], "lower region 3");
        assert_eq!(
            a.levels_after(9, &[0, 3, 2, 1]),
            vec![1, 3, 3, 2],
            "raise all"
        );
        assert_eq!(
            a.levels_after(10, &[0, 3, 2, 1]),
            vec![0, 2, 1, 0],
            "lower all"
        );
    }

    #[test]
    fn per_region_delta_saturates() {
        let a = ActionSpace::PerRegionDelta {
            num_regions: 2,
            num_levels: 4,
        };
        assert_eq!(a.levels_after(1, &[3, 0]), vec![3, 0], "raise at max holds");
        assert_eq!(a.levels_after(4, &[3, 0]), vec![3, 0], "lower at min holds");
    }

    #[test]
    fn level_and_routing_cross_product() {
        let a = ActionSpace::LevelAndRouting {
            num_levels: 4,
            routings: vec![RoutingAlgorithm::Xy, RoutingAlgorithm::OddEven],
        };
        assert_eq!(a.num_actions(), 8);
        assert_eq!(a.levels_after(5, &[0, 0]), vec![2, 2]);
        assert_eq!(a.routing_after(5), Some(RoutingAlgorithm::OddEven));
        assert_eq!(a.routing_after(4), Some(RoutingAlgorithm::Xy));
    }

    #[test]
    fn apply_actuates_simulator() {
        let cfg = SimConfig::default()
            .with_size(4, 4)
            .with_traffic(TrafficPattern::Uniform, 0.1)
            .with_regions(2, 2);
        let mut sim = Simulator::new(cfg).unwrap();
        let a = ActionSpace::PerRegionDelta {
            num_regions: 4,
            num_levels: 4,
        };
        // Starts at max level (3).
        a.apply(2, &mut sim).unwrap(); // lower region 0
        assert_eq!(sim.region_levels(), &[2, 3, 3, 3]);
        let b = ActionSpace::LevelAndRouting {
            num_levels: 4,
            routings: vec![RoutingAlgorithm::Xy, RoutingAlgorithm::OddEven],
        };
        b.apply(3, &mut sim).unwrap(); // level 1, odd-even
        assert_eq!(sim.region_levels(), &[1, 1, 1, 1]);
        assert_eq!(sim.network().routing(), RoutingAlgorithm::OddEven);
    }

    #[test]
    fn descriptions_are_informative() {
        let a = ActionSpace::PerRegionDelta {
            num_regions: 2,
            num_levels: 4,
        };
        assert_eq!(a.describe(0), "hold");
        assert_eq!(a.describe(3), "raise region 1");
        assert_eq!(a.describe(4), "lower region 1");
        assert_eq!(a.describe(5), "raise all regions");
        assert_eq!(a.describe(6), "lower all regions");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_action_panics() {
        let a = ActionSpace::UniformLevel { num_levels: 4 };
        let _ = a.levels_after(4, &[0]);
    }
}
