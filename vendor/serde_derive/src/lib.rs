//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde stub.
//!
//! The build container has no network access, so `syn`/`quote` are not
//! available; the item is parsed directly from the `proc_macro` token
//! stream and the impl is generated as a string. Supported shapes match
//! what the workspace actually derives:
//!
//! * structs with named fields, tuple structs (newtype included), unit
//!   structs;
//! * enums with unit, newtype, tuple, and struct variants;
//! * field attributes `#[serde(skip)]`, `#[serde(default)]`,
//!   `#[serde(default = "path")]`, `#[serde(with = "module")]`.
//!
//! Generics and container-level serde attributes are intentionally not
//! supported (nothing in the workspace needs them) and produce a compile
//! error rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Parsed model
// ---------------------------------------------------------------------------

#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    skip: bool,
    /// `Some(None)` for bare `default`, `Some(Some(path))` for `default = "path"`.
    default: Option<Option<String>>,
    with: Option<String>,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Token cursor
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == name {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected identifier, got {other:?}"),
        }
    }

    /// Consume one `#[...]` attribute if present, merging any `serde(...)`
    /// contents into `attrs`.
    fn eat_attr(&mut self, attrs: &mut FieldAttrs) -> bool {
        if !matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            return false;
        }
        self.pos += 1;
        match self.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                let mut inner = Cursor::new(g.stream());
                if inner.eat_ident("serde") {
                    if let Some(TokenTree::Group(args)) = inner.next() {
                        parse_serde_args(args.stream(), attrs);
                    }
                }
                true
            }
            other => panic!("serde_derive: malformed attribute, got {other:?}"),
        }
    }

    fn skip_attrs(&mut self, attrs: &mut FieldAttrs) {
        while self.eat_attr(attrs) {}
    }

    fn skip_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Consume tokens until a comma at zero angle-bracket depth (the end of
    /// a type in a field list); stops before the comma.
    fn skip_type(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
                _ => {}
            }
            self.pos += 1;
        }
    }
}

fn strip_quotes(lit: &str) -> String {
    let s = lit.trim();
    let s = s.strip_prefix('"').unwrap_or(s);
    let s = s.strip_suffix('"').unwrap_or(s);
    s.to_string()
}

fn parse_serde_args(args: TokenStream, attrs: &mut FieldAttrs) {
    let mut c = Cursor::new(args);
    while let Some(t) = c.next() {
        let TokenTree::Ident(key) = t else { continue };
        match key.to_string().as_str() {
            "skip" | "skip_serializing" | "skip_deserializing" => attrs.skip = true,
            "default" => {
                if c.eat_punct('=') {
                    match c.next() {
                        Some(TokenTree::Literal(l)) => {
                            attrs.default = Some(Some(strip_quotes(&l.to_string())));
                        }
                        other => panic!("serde_derive: bad default attribute: {other:?}"),
                    }
                } else {
                    attrs.default = Some(None);
                }
            }
            "with" => {
                if !c.eat_punct('=') {
                    panic!("serde_derive: `with` requires a value");
                }
                match c.next() {
                    Some(TokenTree::Literal(l)) => {
                        attrs.with = Some(strip_quotes(&l.to_string()));
                    }
                    other => panic!("serde_derive: bad with attribute: {other:?}"),
                }
            }
            other => panic!("serde_derive: unsupported serde attribute `{other}`"),
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let mut attrs = FieldAttrs::default();
        c.skip_attrs(&mut attrs);
        if c.peek().is_none() {
            break;
        }
        c.skip_visibility();
        let name = c.expect_ident();
        if !c.eat_punct(':') {
            panic!("serde_derive: expected `:` after field `{name}`");
        }
        c.skip_type();
        c.eat_punct(',');
        fields.push(Field { name, attrs });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    while c.peek().is_some() {
        let mut attrs = FieldAttrs::default();
        c.skip_attrs(&mut attrs);
        if c.peek().is_none() {
            break;
        }
        c.skip_visibility();
        c.skip_type();
        c.eat_punct(',');
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        let mut attrs = FieldAttrs::default();
        c.skip_attrs(&mut attrs);
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident();
        let kind = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.pos += 1;
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                c.pos += 1;
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        if c.eat_punct('=') {
            // Discriminant: consume until the separating comma.
            while let Some(t) = c.peek() {
                if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                c.pos += 1;
            }
        }
        c.eat_punct(',');
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    let mut container_attrs = FieldAttrs::default();
    c.skip_attrs(&mut container_attrs);
    c.skip_visibility();
    let is_enum = if c.eat_ident("struct") {
        false
    } else if c.eat_ident("enum") {
        true
    } else {
        panic!(
            "serde_derive: expected `struct` or `enum`, got {:?}",
            c.peek()
        );
    };
    let name = c.expect_ident();
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported by the vendored stub");
    }
    if is_enum {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive: malformed enum body: {other:?}"),
        }
    } else {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde_derive: malformed struct body: {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// Expression producing `serde::Value` for one field (inside the build
/// closure, where `?` carries `serde::SerError`).
fn ser_field_expr(access: &str, attrs: &FieldAttrs) -> String {
    match &attrs.with {
        Some(path) => format!("{path}::serialize({access}, serde::ValueSerializer)?"),
        None => format!("serde::to_value({access})?"),
    }
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let mut b = String::from(
                "let mut __m: ::std::vec::Vec<(::std::string::String, serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields {
                if f.attrs.skip {
                    continue;
                }
                let expr = ser_field_expr(&format!("&self.{}", f.name), &f.attrs);
                b.push_str(&format!(
                    "__m.push((\"{n}\".to_string(), {expr}));\n",
                    n = f.name
                ));
            }
            b.push_str("::std::result::Result::Ok(serde::Value::Map(__m))\n");
            (name, b)
        }
        Item::TupleStruct { name, arity } => {
            let b = if *arity == 1 {
                // Already a `Result<Value, SerError>`; returning it directly
                // keeps clippy's needless_question_mark out of expansions.
                "serde::to_value(&self.0)\n".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("serde::to_value(&self.{i})?"))
                    .collect();
                format!(
                    "::std::result::Result::Ok(serde::Value::Seq(vec![{}]))\n",
                    items.join(", ")
                )
            };
            (name, b)
        }
        Item::UnitStruct { name } => (
            name,
            "::std::result::Result::Ok(serde::Value::Null)\n".to_string(),
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n"
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> =
                            (0..*arity).map(|i| format!("ref __f{i}")).collect();
                        let inner = if *arity == 1 {
                            "serde::to_value(__f0)?".to_string()
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| format!("serde::to_value(__f{i})?"))
                                .collect();
                            format!("serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({bs}) => serde::Value::Map(vec![(\"{vn}\"\
                             .to_string(), {inner})]),\n",
                            bs = binds.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| format!("ref {}", f.name)).collect();
                        let mut inner = String::from(
                            "{ let mut __vm: ::std::vec::Vec<(::std::string::String, \
                             serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fields {
                            if f.attrs.skip {
                                continue;
                            }
                            let expr = ser_field_expr(&f.name.clone(), &f.attrs);
                            inner.push_str(&format!(
                                "__vm.push((\"{n}\".to_string(), {expr}));\n",
                                n = f.name
                            ));
                        }
                        inner.push_str("serde::Value::Map(__vm) }");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {bs} }} => serde::Value::Map(vec![(\"{vn}\"\
                             .to_string(), {inner})]),\n",
                            bs = binds.join(", ")
                        ));
                    }
                }
            }
            let b =
                format!("let __v = match *self {{\n{arms}}};\n::std::result::Result::Ok(__v)\n");
            (name, b)
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn serialize<__S: serde::Serializer>(&self, __s: __S) \
         -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
         let __build = || -> ::std::result::Result<serde::Value, serde::SerError> {{\n\
         {body}\
         }};\n\
         match __build() {{\n\
         ::std::result::Result::Ok(__v) => __s.serialize_value(__v),\n\
         ::std::result::Result::Err(__e) => ::std::result::Result::Err(\
         <__S::Error as serde::ser::Error>::custom(__e)),\n\
         }}\n\
         }}\n\
         }}\n"
    )
}

/// Expression reading one named field out of `__m` (a `&[(String, Value)]`),
/// inside `deserialize` where errors are `__D::Error`.
fn de_named_field_expr(container: &str, f: &Field) -> String {
    let n = &f.name;
    if f.attrs.skip {
        return "::std::default::Default::default()".to_string();
    }
    let present = match &f.attrs.with {
        Some(path) => format!(
            "{path}::deserialize(serde::ValueDeserializer::new(__x))\
             .map_err(|__e| <__D::Error as serde::de::Error>::custom(__e))?"
        ),
        None => "serde::from_value(__x)\
                 .map_err(|__e| <__D::Error as serde::de::Error>::custom(__e))?"
            .to_string(),
    };
    let missing = match &f.attrs.default {
        Some(Some(path)) => format!("{path}()"),
        Some(None) => "::std::default::Default::default()".to_string(),
        None => format!(
            "return ::std::result::Result::Err(<__D::Error as serde::de::Error>::custom(\
             \"{container}: missing field `{n}`\"))"
        ),
    };
    format!(
        "match __get(__m, \"{n}\") {{\n\
         ::std::option::Option::Some(__x) => {present},\n\
         ::std::option::Option::None => {missing},\n\
         }}"
    )
}

const GET_HELPER: &str = "fn __get<'__a>(m: &'__a [(::std::string::String, serde::Value)], \
                          k: &str) -> ::std::option::Option<&'__a serde::Value> {\n\
                          m.iter().find(|e| e.0 == k).map(|e| &e.1)\n}\n";

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!("{}: {},\n", f.name, de_named_field_expr(name, f)));
            }
            let b = format!(
                "let __v = __d.value();\n\
                 let __m = __v.as_map().ok_or_else(|| <__D::Error as serde::de::Error>\
                 ::custom(\"{name}: expected object\"))?;\n\
                 {GET_HELPER}\
                 ::std::result::Result::Ok({name} {{\n{inits}}})\n"
            );
            (name, b)
        }
        Item::TupleStruct { name, arity } => {
            let b = if *arity == 1 {
                format!(
                    "let __v = __d.value();\n\
                     ::std::result::Result::Ok({name}(serde::from_value(__v)\
                     .map_err(|__e| <__D::Error as serde::de::Error>::custom(__e))?))\n"
                )
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| {
                        format!(
                            "serde::from_value(&__items[{i}])\
                             .map_err(|__e| <__D::Error as serde::de::Error>::custom(__e))?"
                        )
                    })
                    .collect();
                format!(
                    "let __v = __d.value();\n\
                     let __items = __v.as_seq().ok_or_else(|| <__D::Error as \
                     serde::de::Error>::custom(\"{name}: expected array\"))?;\n\
                     if __items.len() != {arity} {{\n\
                     return ::std::result::Result::Err(<__D::Error as serde::de::Error>\
                     ::custom(\"{name}: wrong tuple arity\"));\n}}\n\
                     ::std::result::Result::Ok({name}({}))\n",
                    items.join(", ")
                )
            };
            (name, b)
        }
        Item::UnitStruct { name } => {
            let b = format!("::std::result::Result::Ok({name})\n");
            (name, b)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                        // serde also accepts {"Variant": null} for unit variants.
                        data_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let expr = if *arity == 1 {
                            format!(
                                "::std::result::Result::Ok({name}::{vn}(\
                                 serde::from_value(__inner).map_err(|__e| <__D::Error as \
                                 serde::de::Error>::custom(__e))?))\n"
                            )
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!(
                                        "serde::from_value(&__items[{i}]).map_err(|__e| \
                                         <__D::Error as serde::de::Error>::custom(__e))?"
                                    )
                                })
                                .collect();
                            format!(
                                "{{ let __items = __inner.as_seq().ok_or_else(|| \
                                 <__D::Error as serde::de::Error>::custom(\
                                 \"{name}::{vn}: expected array\"))?;\n\
                                 if __items.len() != {arity} {{ return \
                                 ::std::result::Result::Err(<__D::Error as \
                                 serde::de::Error>::custom(\"{name}::{vn}: wrong arity\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({})) }}\n",
                                items.join(", ")
                            )
                        };
                        data_arms.push_str(&format!("\"{vn}\" => {expr},\n"));
                    }
                    VariantKind::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{}: {},\n",
                                f.name,
                                de_named_field_expr(&format!("{name}::{vn}"), f)
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __m = __inner.as_map().ok_or_else(|| <__D::Error as \
                             serde::de::Error>::custom(\"{name}::{vn}: expected object\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n}},\n"
                        ));
                    }
                }
            }
            let b = format!(
                "let __v = __d.value();\n\
                 {GET_HELPER}\
                 let _ = __get;\n\
                 match __v {{\n\
                 serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(<__D::Error as serde::de::Error>\
                 ::custom(format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                 }},\n\
                 serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__k, __inner) = &__entries[0];\n\
                 match __k.as_str() {{\n\
                 {data_arms}\
                 __other => ::std::result::Result::Err(<__D::Error as serde::de::Error>\
                 ::custom(format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                 }}\n\
                 }},\n\
                 __other => ::std::result::Result::Err(<__D::Error as serde::de::Error>\
                 ::custom(format!(\"{name}: expected variant, got {{__other}}\"))),\n\
                 }}\n"
            );
            (name, b)
        }
    };
    format!(
        "impl<'de> serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: serde::Deserializer<'de>>(__d: __D) \
         -> ::std::result::Result<Self, __D::Error> {{\n\
         {body}\
         }}\n\
         }}\n"
    )
}

/// Derive `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derive `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}
