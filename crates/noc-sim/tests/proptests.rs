//! Property-based tests of the simulator's core invariants.

use noc_sim::arbiter::RoundRobinArbiter;
use noc_sim::dvfs::ClockGate;
use noc_sim::flit::PacketId;
use noc_sim::routing::walk_route;
use noc_sim::{
    InjectionProcess, NodeId, Packet, RoutingAlgorithm, SimConfig, Simulator, StatsCollector,
    Topology, TopologyKind, TrafficPattern, WorkloadPhase, WorkloadSpec,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draw an arbitrary *valid* workload spec: 1–4 phases over every pattern
/// flavor (hotspot parameters included) and every injection process, with
/// full-range `f64` parameters and an optional unbounded final phase.
fn arb_workload(seed: u64) -> WorkloadSpec {
    let mut r = StdRng::seed_from_u64(seed);
    let n = r.gen_range(1usize..5);
    let phases = (0..n)
        .map(|i| {
            let pattern = if r.gen_range(0usize..8) < 7 {
                TrafficPattern::NAMED[r.gen_range(0usize..7)].1.clone()
            } else {
                TrafficPattern::Hotspot {
                    hotspots: (0..r.gen_range(1usize..4))
                        .map(|_| NodeId(r.gen_range(0usize..64)))
                        .collect(),
                    fraction: r.gen_range(0.0f64..=1.0),
                }
            };
            let process = match r.gen_range(0usize..3) {
                0 => InjectionProcess::Bernoulli {
                    rate: r.gen_range(0.0f64..=1.0),
                },
                1 => InjectionProcess::Bursty {
                    rate_on: r.gen_range(0.0f64..=1.0),
                    switch: r.gen_range(0.001f64..=1.0),
                },
                _ => {
                    let period = r.gen_range(1u64..10_000);
                    InjectionProcess::Periodic {
                        rate: r.gen_range(0.0f64..=1.0),
                        period,
                        on: r.gen_range(1u64..=period),
                    }
                }
            };
            let cycles = if i + 1 == n && r.gen::<bool>() {
                0 // unbounded terminal hold
            } else {
                r.gen_range(1u64..100_000)
            };
            WorkloadPhase::new(pattern, process, cycles)
        })
        .collect();
    WorkloadSpec::new(phases)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Torus DOR reaches every destination minimally on arbitrary torus
    /// shapes (wrap-aware distance).
    #[test]
    fn torus_dor_minimal(w in 2usize..7, h in 2usize..7, src in 0usize..36, dst in 0usize..36) {
        let topo = Topology::torus(w, h);
        let n = topo.num_nodes();
        let (src, dst) = (NodeId(src % n), NodeId(dst % n));
        let path = walk_route(RoutingAlgorithm::TorusDor, &topo, src, dst, |_| 0);
        prop_assert_eq!(path.len() - 1, topo.distance(src, dst));
    }

    /// Round-robin arbitration is work-conserving (grants whenever any
    /// request is up) and fair (over n consecutive all-up cycles, every
    /// requester wins exactly once).
    #[test]
    fn arbiter_work_conserving_and_fair(n in 1usize..12, rounds in 1usize..5) {
        let mut arb = RoundRobinArbiter::new(n);
        let mut wins = vec![0usize; n];
        for _ in 0..rounds * n {
            let w = arb.grant(&vec![true; n]).expect("requests up => grant");
            wins[w] += 1;
        }
        prop_assert!(wins.iter().all(|&w| w == rounds), "wins {wins:?}");
    }

    /// The clock gate activates round(N·f) times over N cycles for any
    /// frequency scale.
    #[test]
    fn clock_gate_rate_is_exact(scale_pct in 1u32..=100, cycles in 100u64..2000) {
        let scale = scale_pct as f64 / 100.0;
        let mut g = ClockGate::new(scale);
        let active = (0..cycles).filter(|_| g.tick()).count() as f64;
        let expected = cycles as f64 * scale;
        prop_assert!((active - expected).abs() <= 1.0,
            "active {active} vs expected {expected}");
    }

    /// Torus networks with dateline VC partitioning drain all-to-all
    /// traffic (no wrap-around credit deadlock) for random VC/buffer shapes.
    #[test]
    fn torus_drains_all_to_all(vcs in 1usize..3, depth in 1usize..4, plen in 1u32..5) {
        let mut cfg = SimConfig::default()
            .with_size(4, 4)
            .with_regions(2, 2)
            .with_routing(RoutingAlgorithm::TorusDor)
            .with_vcs(vcs * 2, depth) // partition needs an even VC count
            .with_packet_len(plen)
            .with_traffic(TrafficPattern::Uniform, 0.0);
        cfg.kind = TopologyKind::Torus;
        // Bypass the generator: offer a deterministic all-to-all batch
        // directly at the network layer.
        let mut net = noc_sim::Network::new(&cfg).expect("valid config");
        let mut stats = StatsCollector::new(net.regions().num_regions());
        let mut id = 0u64;
        let mut packets = Vec::new();
        for s in 0..16usize {
            for d in 0..16usize {
                if s != d {
                    packets.push(Packet {
                        id: PacketId(id),
                        src: NodeId(s),
                        dst: NodeId(d),
                        len_flits: plen,
                        created_at: 0,
                    });
                    id += 1;
                }
            }
        }
        let total = packets.len() as u64;
        net.offer(packets, &mut stats);
        for _ in 0..30_000 {
            if net.in_flight() == 0 {
                break;
            }
            net.step(&mut stats);
        }
        prop_assert_eq!(net.in_flight(), 0, "torus deadlock: flits stuck");
        prop_assert_eq!(stats.ejected_packets, total);
        prop_assert_eq!(stats.ejected_flits, total * plen as u64);
    }

    /// The canonical workload grammar is lossless: spec → label → parse is
    /// the identity (and hence label → parse → label too), for arbitrary
    /// valid specs with full-range `f64` parameters. This is the guarantee
    /// that sweep labels, CLI flags, and report keys cannot drift from the
    /// specs they name.
    #[test]
    fn workload_label_grammar_roundtrips(seed in 0u64..1_000_000) {
        let spec = arb_workload(seed);
        prop_assert!(spec.shape_check().is_ok(), "generator must emit valid specs");
        let label = spec.label();
        let parsed = WorkloadSpec::parse(&label)
            .unwrap_or_else(|e| panic!("`{label}` failed to parse: {e}"));
        prop_assert_eq!(&parsed, &spec, "parse must invert label: {}", label);
        prop_assert_eq!(parsed.label(), label);
    }

    /// Workload specs survive a serde JSON round-trip exactly, including the
    /// legacy-compatible `TrafficSpec` wrapper.
    #[test]
    fn workload_spec_json_roundtrips(seed in 0u64..1_000_000) {
        let spec = arb_workload(seed);
        let json = serde_json::to_string(&spec).expect("spec serializes");
        let back: WorkloadSpec = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("{json}: {e}"));
        prop_assert_eq!(&back, &spec);

        let wrapped = noc_sim::TrafficSpec::Workload(spec);
        let json = serde_json::to_string(&wrapped).expect("traffic spec serializes");
        let back: noc_sim::TrafficSpec = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("{json}: {e}"));
        prop_assert_eq!(back, wrapped);
    }

    /// Region occupancy always sums to total occupancy, and never exceeds
    /// capacity, under random load.
    #[test]
    fn occupancy_accounting_consistent(rate in 0.05f64..0.4, seed in 0u64..50) {
        let cfg = SimConfig::default()
            .with_size(4, 4)
            .with_regions(2, 2)
            .with_traffic(TrafficPattern::Uniform, rate)
            .with_seed(seed);
        let mut sim = Simulator::new(cfg).expect("valid config");
        for _ in 0..10 {
            sim.run(50);
            let net = sim.network();
            let region: usize = net.region_occupancy().iter().sum();
            prop_assert_eq!(region, net.occupancy());
            for (occ, cap) in net.region_occupancy().iter().zip(net.region_capacity()) {
                prop_assert!(*occ <= cap);
            }
        }
    }
}

/// Packet completion accounting under heavy load: each packet completes
/// exactly once (its tail flit defines completion), so ejected flits are an
/// exact multiple of the packet length.
#[test]
fn packets_complete_exactly_once() {
    let cfg = SimConfig::default()
        .with_size(4, 4)
        .with_regions(2, 2)
        .with_traffic(TrafficPattern::Uniform, 0.30)
        .with_seed(9);
    let mut sim = Simulator::new(cfg).expect("valid config");
    sim.run(3000);
    // Stop traffic and drain so every in-flight packet finishes.
    sim.set_traffic(noc_sim::TrafficSpec::stationary(
        TrafficPattern::Uniform,
        0.0,
    ))
    .expect("valid spec");
    for _ in 0..200 {
        if sim.network().in_flight() == 0 {
            break;
        }
        sim.run(50);
    }
    let s = sim.stats();
    // Tail flits define completion: after draining, the flit count must
    // equal packets × length exactly (5-flit packets).
    assert!(s.ejected_packets > 100, "enough packets must complete");
    assert_eq!(s.ejected_flits % 5, 0, "whole packets only");
    assert_eq!(s.ejected_flits / 5, s.ejected_packets);
}
