//! Routing study: compare deterministic and adaptive routing algorithms on
//! adversarial traffic — the routing knob of the self-configuration space.
//!
//! Run with: `cargo run --release --example routing_study`

use noc_sim::{RoutingAlgorithm, SimConfig, SimError, Simulator, TrafficPattern};

fn main() -> Result<(), SimError> {
    let algorithms = [
        RoutingAlgorithm::Xy,
        RoutingAlgorithm::Yx,
        RoutingAlgorithm::WestFirst,
        RoutingAlgorithm::NorthLast,
        RoutingAlgorithm::NegativeFirst,
        RoutingAlgorithm::OddEven,
    ];
    let patterns = [
        ("uniform", TrafficPattern::Uniform),
        ("transpose", TrafficPattern::Transpose),
        (
            "hotspot",
            TrafficPattern::Hotspot {
                hotspots: vec![noc_sim::NodeId(0)],
                fraction: 0.3,
            },
        ),
    ];

    for (pname, pattern) in &patterns {
        println!("\n=== {pname} @ 0.14 flits/node/cycle ===");
        println!(
            "{:<16} {:>10} {:>12} {:>10}",
            "routing", "latency", "throughput", "sat?"
        );
        for alg in algorithms {
            let cfg = SimConfig::default()
                .with_traffic(pattern.clone(), 0.14)
                .with_routing(alg)
                .with_seed(7);
            let mut sim = Simulator::new(cfg)?;
            let run = sim.run_classic(2000, 6000, 6000);
            println!(
                "{:<16} {:>10.1} {:>12.3} {:>10}",
                format!("{alg:?}"),
                run.window.avg_packet_latency,
                run.window.throughput,
                if run.saturated { "yes" } else { "no" },
            );
        }
    }
    println!("\nAdaptive algorithms (odd-even in particular) spread transpose/hotspot");
    println!("load across minimal paths and saturate later than XY.");
    Ok(())
}
