//! Fig 5 — energy under each controller across the pattern × rate grid.
//!
//! Expected shape: static-max burns the most; static-min the least; DRL cuts
//! 20–40 % vs static-max at low-mid load.

use noc_bench::comparison::run_or_load;
use noc_bench::{fmt, print_table, save_csv, save_markdown, Scale};

fn main() {
    let scale = Scale::from_env();
    let points = run_or_load(scale);
    let mut rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.pattern.clone(),
                format!("{:.3}", p.rate),
                p.controller.clone(),
                fmt(p.agg.energy_pj / 1e3), // nJ
                fmt(p.agg.energy_per_flit),
                fmt(p.agg.mean_level),
            ]
        })
        .collect();
    rows.sort();
    let headers = [
        "pattern",
        "rate",
        "controller",
        "energy (nJ)",
        "energy/flit (pJ)",
        "mean level",
    ];
    let md = print_table("Fig 5 — energy comparison", &headers, &rows);
    save_csv("fig5_energy_compare", &headers, &rows);
    save_markdown("fig5_energy_compare", &md);

    // Savings vs static-max per (pattern, rate).
    let mut savings = Vec::new();
    for p in points.iter().filter(|p| p.controller == "drl") {
        if let Some(base) = points
            .iter()
            .find(|q| q.controller == "static-max" && q.pattern == p.pattern && q.rate == p.rate)
        {
            savings.push(vec![
                p.pattern.clone(),
                format!("{:.3}", p.rate),
                format!(
                    "{:.1}%",
                    100.0 * (1.0 - p.agg.energy_pj / base.agg.energy_pj)
                ),
            ]);
        }
    }
    savings.sort();
    print_table(
        "Fig 5b — DRL energy saving vs static-max",
        &["pattern", "rate", "saving"],
        &savings,
    );
}
