//! Integration tests of the policy zoo: legacy-shape migration, artifact
//! round-trip fidelity, structured compatibility errors on every load path,
//! and byte-identical population training / tournament reports across
//! thread counts.

use noc_selfconf::zoo::{
    self, dqn_variant, load_zoo, tournament_matrix, train_grid, PolicyArtifact, PolicyKind,
    ScenarioFamily, TournamentConfig, ZooError, ZooGrid,
};
use noc_selfconf::{train_drl, ActionSpace, NocEnvConfig, StateEncoder};
use noc_sim::SimConfig;
use proptest::prelude::*;
use rl::{DqnAgent, DqnConfig, TabularConfig, TabularQ, TrainConfig, Transition};
use std::path::PathBuf;

/// Fresh temp dir per test (same idiom as the serve tests).
fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("noc_zoo_test_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The 4x4 / 2x2-region fabric every test trains against.
fn small_sim() -> SimConfig {
    SimConfig::default().with_size(4, 4).with_regions(2, 2)
}

/// The encoder/action-space pair matching [`small_sim`]'s region grid:
/// 3 features x 4 regions + 5 globals = 17 inputs, 2x4+3 = 11 actions.
fn small_deployment() -> (StateEncoder, ActionSpace) {
    (
        StateEncoder::new(vec![320; 4], vec![4; 4], 4, 16),
        ActionSpace::PerRegionDelta {
            num_regions: 4,
            num_levels: 4,
        },
    )
}

fn tiny_dqn(seed: u64) -> DqnConfig {
    DqnConfig {
        hidden: vec![8],
        batch_size: 2,
        min_replay: 2,
        ..DqnConfig::default().with_seed(seed)
    }
}

fn tiny_train(seed: u64) -> TrainConfig {
    TrainConfig {
        episodes: 1,
        max_steps: 2,
        seed,
        ..TrainConfig::default()
    }
}

fn tiny_grid(base_seed: u64) -> ZooGrid {
    let mut variant = dqn_variant("default").unwrap();
    variant.dqn = tiny_dqn(0);
    ZooGrid {
        base: small_sim(),
        variants: vec![variant],
        families: vec![
            ScenarioFamily::parse("mesh/uniform/r0.1").unwrap(),
            ScenarioFamily::parse("torus/uniform/r0.1/f1").unwrap(),
        ],
        train: tiny_train(0),
        epoch_cycles: 60,
        epochs_per_episode: 2,
        base_seed,
    }
}

/// Deterministic pseudo-random feature generator (no RNG dependency).
fn feature_stream(mut state: u64) -> impl FnMut() -> f32 {
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 40) & 0xFFFF) as f32 / 65536.0
    }
}

fn probe_states(seed: u64, dim: usize) -> Vec<Vec<f32>> {
    let mut next = feature_stream(seed);
    (0..16)
        .map(|_| (0..dim).map(|_| next()).collect())
        .collect()
}

// ---------------------------------------------------------------------------
// Legacy-shape fixtures: the three pre-zoo JSON formats must keep loading.
// ---------------------------------------------------------------------------

/// The CLI's pre-zoo `SavedPolicy` shape (no curve).
#[test]
fn legacy_saved_policy_shape_loads() {
    let (encoder, action_space) = small_deployment();
    let agent = DqnAgent::new(tiny_dqn(5).with_dims(17, 11));
    let json = format!(
        r#"{{"dqn": {}, "policy_json": {}, "encoder": {}, "action_space": {}}}"#,
        serde_json::to_string(agent.config()).unwrap(),
        serde_json::to_string(&agent.policy_to_json().unwrap()).unwrap(),
        serde_json::to_string(&encoder).unwrap(),
        serde_json::to_string(&action_space).unwrap(),
    );
    let artifact = PolicyArtifact::parse(&json).unwrap();
    assert_eq!(artifact.kind_name(), "dqn");
    assert!(artifact.provenance.is_none());
    assert!(artifact.config_hash.is_empty());
    assert!(artifact.curve.is_empty());
    artifact.validate().unwrap();
    // The migrated artifact deploys, and its greedy policy matches the
    // source agent exactly.
    let PolicyKind::Dqn { policy_json, .. } = &artifact.kind else {
        panic!("expected a DQN artifact");
    };
    let mut reloaded = DqnAgent::new(tiny_dqn(99).with_dims(17, 11));
    reloaded.policy_from_json(policy_json).unwrap();
    for state in probe_states(5, 17) {
        assert_eq!(reloaded.greedy_action(&state), agent.greedy_action(&state));
    }
    assert!(artifact.drl_controller().is_ok());
}

/// The bench harness's pre-zoo `PolicyArtifact` shape (with curve).
#[test]
fn legacy_bench_dqn_shape_loads() {
    let env = NocEnvConfig::for_sim(small_sim(), 3);
    let policy = train_drl(env, tiny_dqn(3), tiny_train(3)).unwrap();
    let json = format!(
        r#"{{"dqn": {}, "policy_json": {}, "encoder": {}, "action_space": {}, "curve": {}}}"#,
        serde_json::to_string(policy.agent.config()).unwrap(),
        serde_json::to_string(&policy.agent.policy_to_json().unwrap()).unwrap(),
        serde_json::to_string(&policy.encoder).unwrap(),
        serde_json::to_string(&policy.action_space).unwrap(),
        serde_json::to_string(&policy.curve).unwrap(),
    );
    let artifact = PolicyArtifact::parse(&json).unwrap();
    assert_eq!(artifact.kind_name(), "dqn");
    assert_eq!(artifact.curve.len(), policy.curve.len());
    assert!(artifact.provenance.is_none());
    artifact.validate().unwrap();
    assert!(artifact.controller().is_ok());
}

/// The bench harness's pre-zoo `TabularArtifact` shape.
#[test]
fn legacy_tabular_shape_loads() {
    let (encoder, action_space) = small_deployment();
    let mut agent = TabularQ::new(TabularConfig {
        state_dim: 17,
        num_actions: 11,
        bins: 3,
        ..TabularConfig::default()
    });
    let mut next = feature_stream(7);
    for i in 0..40 {
        let state: Vec<f32> = (0..17).map(|_| next()).collect();
        let next_state: Vec<f32> = (0..17).map(|_| next()).collect();
        agent.update(&Transition {
            state,
            action: i % 11,
            reward: next() - 0.5,
            next_state,
            done: i % 10 == 0,
        });
    }
    let json = format!(
        r#"{{"agent": {}, "encoder": {}, "action_space": {}, "curve": []}}"#,
        serde_json::to_string(&agent).unwrap(),
        serde_json::to_string(&encoder).unwrap(),
        serde_json::to_string(&action_space).unwrap(),
    );
    let artifact = PolicyArtifact::parse(&json).unwrap();
    assert_eq!(artifact.kind_name(), "tabular");
    assert!(artifact.provenance.is_none());
    artifact.validate().unwrap();
    let PolicyKind::Tabular { agent: migrated } = &artifact.kind else {
        panic!("expected a tabular artifact");
    };
    assert_eq!(migrated.num_states(), agent.num_states());
    for state in probe_states(7, 17) {
        assert_eq!(migrated.greedy_action(&state), agent.greedy_action(&state));
    }
    assert!(artifact.tabular_controller().is_ok());
}

#[test]
fn garbage_json_is_a_parse_error() {
    assert!(matches!(
        PolicyArtifact::parse(r#"{"what": 1}"#),
        Err(ZooError::Parse { .. })
    ));
    assert!(PolicyArtifact::parse("not json").is_err());
}

// ---------------------------------------------------------------------------
// Wrong-dimension artifacts are rejected with a structured error on every
// load path: versioned file, legacy file, and zoo-directory loads.
// ---------------------------------------------------------------------------

#[test]
fn wrong_state_dim_rejected_on_every_load_path() {
    let dir = temp_dir("wrong_dim");
    let env = NocEnvConfig::for_sim(small_sim(), 11);
    let policy = train_drl(env.clone(), tiny_dqn(11), tiny_train(11)).unwrap();
    let mut artifact = PolicyArtifact::from_dqn(&policy, env, tiny_train(11)).unwrap();

    // Versioned shape with a network/encoder mismatch.
    match &mut artifact.kind {
        PolicyKind::Dqn { dqn, .. } => dqn.state_dim += 1,
        PolicyKind::Tabular { .. } => unreachable!(),
    }
    let path = dir.join("bad_versioned.json");
    artifact.save(&path).unwrap();
    match PolicyArtifact::load(&path) {
        Err(ZooError::Incompatible {
            field,
            expected,
            found,
            ..
        }) => {
            assert_eq!(field, "state_dim");
            assert_eq!(found, expected + 1);
        }
        other => panic!("expected a structured incompatibility, got {other:?}"),
    }
    // The error message tells the user how to recover.
    let message = PolicyArtifact::load(&path).unwrap_err().to_string();
    assert!(message.contains("retrain"), "unhelpful error: {message}");

    // Legacy shape with the same mismatch (the path `cmd_evaluate` used to
    // guard by hand).
    let (encoder, action_space) = small_deployment();
    let agent = DqnAgent::new(tiny_dqn(5).with_dims(16, 11)); // encoder makes 17
    let legacy = format!(
        r#"{{"dqn": {}, "policy_json": {}, "encoder": {}, "action_space": {}}}"#,
        serde_json::to_string(agent.config()).unwrap(),
        serde_json::to_string(&agent.policy_to_json().unwrap()).unwrap(),
        serde_json::to_string(&encoder).unwrap(),
        serde_json::to_string(&action_space).unwrap(),
    );
    let legacy_path = dir.join("bad_legacy.json");
    std::fs::write(&legacy_path, legacy).unwrap();
    assert!(matches!(
        PolicyArtifact::load(&legacy_path),
        Err(ZooError::Incompatible {
            field: "state_dim",
            ..
        })
    ));

    // A zoo-directory load hits the same validation (no manifest, so the
    // sorted-filename path is exercised too).
    assert!(load_zoo(&dir).is_err());

    // Wrong action count is the other structured axis.
    let mut bad_actions = PolicyArtifact::from_dqn(
        &policy,
        NocEnvConfig::for_sim(small_sim(), 11),
        tiny_train(11),
    )
    .unwrap();
    match &mut bad_actions.kind {
        PolicyKind::Dqn { dqn, .. } => dqn.num_actions += 2,
        PolicyKind::Tabular { .. } => unreachable!(),
    }
    assert!(matches!(
        bad_actions.validate(),
        Err(ZooError::Incompatible {
            field: "num_actions",
            ..
        })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Property: save -> load -> greedy rollout is byte- and action-identical.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn dqn_artifact_roundtrip_preserves_policy(seed in any::<u64>()) {
        let (encoder, action_space) = small_deployment();
        let agent = DqnAgent::new(tiny_dqn(seed).with_dims(17, 11));
        let artifact = PolicyArtifact {
            schema_version: zoo::ZOO_SCHEMA_VERSION,
            kind: PolicyKind::Dqn {
                dqn: agent.config().clone(),
                policy_json: agent.policy_to_json().unwrap(),
            },
            encoder,
            action_space,
            provenance: None,
            curve: vec![],
            config_hash: String::new(),
        };
        // Serialization is canonical: parse(to_json) -> identical bytes.
        let json = artifact.to_json();
        let reparsed = PolicyArtifact::parse(&json).unwrap();
        prop_assert_eq!(&reparsed.to_json(), &json);
        // The reloaded network plays the exact same greedy policy.
        let PolicyKind::Dqn { policy_json, dqn } = &reparsed.kind else {
            panic!("kind preserved");
        };
        let mut reloaded = DqnAgent::new(dqn.clone());
        reloaded.policy_from_json(policy_json).unwrap();
        for state in probe_states(seed ^ 0xABCD, 17) {
            prop_assert_eq!(reloaded.greedy_action(&state), agent.greedy_action(&state));
            prop_assert_eq!(reloaded.q_values(&state), agent.q_values(&state));
        }
    }

    #[test]
    fn tabular_artifact_roundtrip_preserves_policy(seed in any::<u64>()) {
        let (encoder, action_space) = small_deployment();
        let mut agent = TabularQ::new(TabularConfig {
            state_dim: 17,
            num_actions: 11,
            bins: 3,
            ..TabularConfig::default()
        });
        let mut next = feature_stream(seed);
        for i in 0..30 {
            let state: Vec<f32> = (0..17).map(|_| next()).collect();
            let next_state: Vec<f32> = (0..17).map(|_| next()).collect();
            agent.update(&Transition {
                state,
                action: i % 11,
                reward: next() - 0.5,
                next_state,
                done: i % 7 == 0,
            });
        }
        let artifact = PolicyArtifact::from_tabular(
            agent.clone(),
            vec![],
            encoder,
            action_space,
            NocEnvConfig::for_sim(small_sim(), seed),
            tiny_train(seed),
        );
        let json = artifact.to_json();
        let reparsed = PolicyArtifact::parse(&json).unwrap();
        // Canonical bytes (the sorted table serialization makes this hold
        // regardless of HashMap iteration order).
        prop_assert_eq!(&reparsed.to_json(), &json);
        let PolicyKind::Tabular { agent: reloaded } = &reparsed.kind else {
            panic!("kind preserved");
        };
        for state in probe_states(seed ^ 0x1234, 17) {
            prop_assert_eq!(reloaded.greedy_action(&state), agent.greedy_action(&state));
        }
    }
}

// ---------------------------------------------------------------------------
// Population training and the tournament: byte-identical across thread
// counts and reruns.
// ---------------------------------------------------------------------------

#[test]
fn train_grid_is_byte_identical_across_thread_counts() {
    let dir1 = temp_dir("grid_t1");
    let dir4 = temp_dir("grid_t4");
    let grid = tiny_grid(42);
    let m1 = train_grid(&grid, &dir1, 1).unwrap();
    let m4 = train_grid(&grid, &dir4, 4).unwrap();
    assert_eq!(m1.members.len(), 2);
    assert_eq!(
        serde_json::to_string(&m1).unwrap(),
        serde_json::to_string(&m4).unwrap()
    );
    for entry in &m1.members {
        let b1 = std::fs::read(dir1.join(&entry.file)).unwrap();
        let b4 = std::fs::read(dir4.join(&entry.file)).unwrap();
        assert_eq!(
            b1, b4,
            "artifact {} differs across thread counts",
            entry.name
        );
        assert!(!entry.config_hash.is_empty());
    }
    let manifest1 = std::fs::read(dir1.join("manifest.json")).unwrap();
    let manifest4 = std::fs::read(dir4.join("manifest.json")).unwrap();
    assert_eq!(manifest1, manifest4);

    // Every artifact reloads through the validated path, in manifest order.
    let policies = load_zoo(&dir1).unwrap();
    assert_eq!(policies.len(), 2);
    for ((name, artifact), entry) in policies.iter().zip(&m1.members) {
        assert_eq!(name, &entry.name);
        assert_eq!(artifact.config_hash, entry.config_hash);
        assert!(artifact.provenance.is_some());
    }
    // Without the manifest, the sorted-filename fallback finds the same
    // artifacts.
    std::fs::remove_file(dir1.join("manifest.json")).unwrap();
    let mut by_file = load_zoo(&dir1).unwrap();
    by_file.sort_by(|a, b| a.0.cmp(&b.0));
    assert_eq!(by_file.len(), 2);
    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir4);
}

#[test]
fn tournament_report_is_deterministic_across_thread_counts() {
    let dir = temp_dir("tournament");
    let grid = tiny_grid(7);
    train_grid(&grid, &dir, 2).unwrap();
    let policies = load_zoo(&dir).unwrap();
    let config = TournamentConfig {
        base: small_sim(),
        families: vec![
            ScenarioFamily::parse("mesh/uniform/r0.1").unwrap(),
            ScenarioFamily::parse("torus/ph[uniform:burst0.3x0.05]/f1").unwrap(),
        ],
        epochs: 2,
        epoch_cycles: 60,
        ..TournamentConfig::default()
    };
    let r1 = tournament_matrix(&policies, &config, 1).unwrap();
    let r3 = tournament_matrix(&policies, &config, 3).unwrap();
    assert_eq!(
        serde_json::to_string_pretty(&r1).unwrap(),
        serde_json::to_string_pretty(&r3).unwrap()
    );
    assert_eq!(r1.cells.len(), policies.len() * config.families.len());
    assert_eq!(r1.best_by_family.len(), config.families.len());
    assert_eq!(r1.mean_score_by_policy.len(), policies.len());
    // Cell scores are finite and the winners really are per-column maxima.
    for cell in &r1.cells {
        assert!(
            cell.score.is_finite(),
            "cell {}/{} has a NaN score",
            cell.policy,
            cell.family
        );
    }
    for best in &r1.best_by_family {
        let column_max = r1
            .cells
            .iter()
            .filter(|c| c.family == best.family)
            .map(|c| c.score)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(best.score, column_max);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tournament_rejects_policies_from_a_different_fabric() {
    // A policy trained on a 2x2-region grid cannot enter a tournament on an
    // 8x8 fabric with 2x2 regions of *different* node count? Regions match,
    // so use a 4x4-region fabric where the observation really is wider.
    let env = NocEnvConfig::for_sim(small_sim(), 9);
    let policy = train_drl(env.clone(), tiny_dqn(9), tiny_train(9)).unwrap();
    let artifact = PolicyArtifact::from_dqn(&policy, env, tiny_train(9)).unwrap();
    let config = TournamentConfig {
        base: SimConfig::default().with_regions(4, 4), // 8x8, 16 regions
        families: vec![ScenarioFamily::parse("mesh/uniform/r0.1").unwrap()],
        epochs: 1,
        epoch_cycles: 60,
        ..TournamentConfig::default()
    };
    match tournament_matrix(&[("small-fabric".into(), artifact)], &config, 1) {
        Err(ZooError::Incompatible { policy, field, .. }) => {
            assert_eq!(policy, "small-fabric");
            assert_eq!(field, "state_dim");
        }
        other => panic!("expected a structured incompatibility, got {other:?}"),
    }
}
