//! The multi-layer perceptron: a stack of [`Dense`] layers with a training
//! loop, target-network synchronization helpers, and JSON (de)serialization.

use crate::activation::Activation;
use crate::init::Init;
use crate::layer::Dense;
use crate::loss::Loss;
use crate::optim::Optimizer;
use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error produced by model (de)serialization.
#[derive(Debug)]
pub struct ModelIoError(String);

impl fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "model serialization error: {}", self.0)
    }
}

impl Error for ModelIoError {}

/// A feed-forward multi-layer perceptron.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Build an MLP with layer widths `dims` (e.g. `[in, 64, 64, out]`),
    /// `hidden` activation on interior layers and `output` activation on the
    /// last layer. Hidden layers use He init for ReLU and Xavier otherwise.
    ///
    /// # Panics
    /// Panics if fewer than two dims are given.
    pub fn new(dims: &[usize], hidden: Activation, output: Activation, seed: u64) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output widths"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let hidden_init = if hidden == Activation::Relu {
            Init::HeUniform
        } else {
            Init::XavierUniform
        };
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let last = i == dims.len() - 2;
                let (act, init) = if last {
                    (output, Init::XavierUniform)
                } else {
                    (hidden, hidden_init)
                };
                Dense::new(w[0], w[1], act, init, &mut rng)
            })
            .collect();
        Mlp { layers }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.layers.first().expect("non-empty").fan_in()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").fan_out()
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.num_params()).sum()
    }

    /// The layer stack.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutable layer stack (for tests and custom schedules).
    pub fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Training-mode forward pass (caches activations).
    pub fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let mut h = x.clone();
        for l in &mut self.layers {
            h = l.forward(&h, train);
        }
        h
    }

    /// Inference from a shared reference (no caches).
    pub fn predict(&self, x: &Matrix) -> Matrix {
        let (first, rest) = self.layers.split_first().expect("non-empty");
        let mut h = first.forward_inference(x);
        for l in rest {
            h = l.forward_inference(&h);
        }
        h
    }

    /// Batched inference over per-sample state slices: packs the rows into
    /// one matrix and runs a single forward pass, so a replay batch costs
    /// one matrix multiply per layer instead of one per sample (the
    /// [`Mlp::predict_one`] path).
    ///
    /// Row `i` of the result is the network's output for `states[i]`.
    ///
    /// # Panics
    /// Panics if `states` is empty or the rows have unequal lengths.
    pub fn predict_batch<S: AsRef<[f32]>>(&self, states: &[S]) -> Matrix {
        self.predict(&Matrix::from_rows(states))
    }

    /// Inference on a single input vector.
    pub fn predict_one(&self, x: &[f32]) -> Vec<f32> {
        self.predict(&Matrix::row(x.to_vec())).as_slice().to_vec()
    }

    /// Backpropagate `dL/dy` through the stack, accumulating gradients.
    pub fn backward(&mut self, grad_out: &Matrix) {
        let mut g = grad_out.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
    }

    /// Clear accumulated gradients.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    /// Global L2 norm of all accumulated gradients.
    pub fn grad_norm(&self) -> f32 {
        self.layers
            .iter()
            .map(|l| l.grad_sq_sum())
            .sum::<f32>()
            .sqrt()
    }

    /// Clip gradients to a maximum global L2 norm. No-op when the norm is
    /// already within the budget. Returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let factor = max_norm / norm;
            for l in &mut self.layers {
                l.scale_grads(factor);
            }
        }
        norm
    }

    /// Apply accumulated gradients via `opt`, then clear them.
    pub fn apply_grads(&mut self, opt: &mut dyn Optimizer) {
        for (i, l) in self.layers.iter_mut().enumerate() {
            // Pull gradients out first to satisfy the borrow checker.
            let grads = l.grads().map(|(gw, gb)| (gw.to_vec(), gb.to_vec()));
            if let Some((gw, gb)) = grads {
                let (w, b) = l.params_mut();
                opt.step(i * 2, w, &gw);
                opt.step(i * 2 + 1, b, &gb);
            }
            l.zero_grad();
        }
    }

    /// One supervised step on a batch: forward, loss, backward, update.
    /// Returns the batch loss.
    pub fn train_batch(
        &mut self,
        x: &Matrix,
        target: &Matrix,
        loss: Loss,
        opt: &mut dyn Optimizer,
    ) -> f32 {
        self.zero_grad();
        let pred = self.forward(x, true);
        let (l, grad) = loss.compute(&pred, target);
        self.backward(&grad);
        self.apply_grads(opt);
        l
    }

    /// Copy all parameters from another MLP of identical architecture
    /// (hard target-network sync).
    ///
    /// # Panics
    /// Panics on architecture mismatch.
    pub fn copy_params_from(&mut self, other: &Mlp) {
        assert_eq!(
            self.layers.len(),
            other.layers.len(),
            "architecture mismatch"
        );
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.copy_params_from(b);
        }
    }

    /// Polyak soft update from another MLP: `θ ← τ·θ_other + (1-τ)·θ`.
    ///
    /// # Panics
    /// Panics on architecture mismatch.
    pub fn soft_update_from(&mut self, other: &Mlp, tau: f32) {
        assert_eq!(
            self.layers.len(),
            other.layers.len(),
            "architecture mismatch"
        );
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.soft_update_from(b, tau);
        }
    }

    /// Serialize parameters and architecture to JSON.
    ///
    /// # Errors
    /// Returns an error if serialization fails.
    pub fn to_json(&self) -> Result<String, ModelIoError> {
        serde_json::to_string(self).map_err(|e| ModelIoError(e.to_string()))
    }

    /// Deserialize a model saved by [`Mlp::to_json`].
    ///
    /// # Errors
    /// Returns an error if the JSON is malformed.
    pub fn from_json(json: &str) -> Result<Mlp, ModelIoError> {
        serde_json::from_str(json).map_err(|e| ModelIoError(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Sgd};

    #[test]
    fn shapes_flow_through_network() {
        let net = Mlp::new(&[4, 8, 3], Activation::Relu, Activation::Linear, 1);
        assert_eq!(net.input_dim(), 4);
        assert_eq!(net.output_dim(), 3);
        assert_eq!(net.num_params(), 4 * 8 + 8 + 8 * 3 + 3);
        let y = net.predict(&Matrix::zeros(5, 4));
        assert_eq!((y.rows(), y.cols()), (5, 3));
    }

    #[test]
    fn predict_matches_forward() {
        let mut net = Mlp::new(&[3, 6, 2], Activation::Tanh, Activation::Linear, 2);
        let x = Matrix::row(vec![0.1, -0.2, 0.5]);
        assert_eq!(net.forward(&x, false), net.predict(&x));
        assert_eq!(
            net.predict_one(&[0.1, -0.2, 0.5]),
            net.predict(&x).as_slice().to_vec()
        );
    }

    /// The canonical sanity check: learn XOR.
    #[test]
    fn learns_xor() {
        let mut net = Mlp::new(&[2, 8, 1], Activation::Tanh, Activation::Sigmoid, 3);
        let x = Matrix::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let t = Matrix::from_vec(4, 1, vec![0.0, 1.0, 1.0, 0.0]);
        let mut opt = Adam::new(0.05);
        let mut final_loss = f32::MAX;
        for _ in 0..2000 {
            final_loss = net.train_batch(&x, &t, Loss::Mse, &mut opt);
        }
        assert!(
            final_loss < 0.01,
            "XOR loss {final_loss} should reach < 0.01"
        );
        let y = net.predict(&x);
        assert!(y.get(0, 0) < 0.2 && y.get(3, 0) < 0.2);
        assert!(y.get(1, 0) > 0.8 && y.get(2, 0) > 0.8);
    }

    #[test]
    fn learns_linear_regression_with_sgd() {
        // y = 2a - b + 0.5
        let mut net = Mlp::new(&[2, 1], Activation::Relu, Activation::Linear, 4);
        let xs: Vec<f32> = (0..40).map(|i| (i as f32) / 20.0 - 1.0).collect();
        let mut data = Vec::new();
        let mut target = Vec::new();
        for (i, &a) in xs.iter().enumerate() {
            let b = xs[(i * 7 + 3) % xs.len()];
            data.extend([a, b]);
            target.push(2.0 * a - b + 0.5);
        }
        let x = Matrix::from_vec(40, 2, data);
        let t = Matrix::from_vec(40, 1, target);
        let mut opt = Sgd::new(0.1);
        for _ in 0..500 {
            net.train_batch(&x, &t, Loss::Mse, &mut opt);
        }
        let (w, b) = net.layers()[0].params();
        assert!((w[0] - 2.0).abs() < 0.05, "w0 {}", w[0]);
        assert!((w[1] + 1.0).abs() < 0.05, "w1 {}", w[1]);
        assert!((b[0] - 0.5).abs() < 0.05, "b {}", b[0]);
    }

    #[test]
    fn gradient_clipping_bounds_the_norm() {
        let mut net = Mlp::new(&[2, 4, 1], Activation::Tanh, Activation::Linear, 8);
        let x = Matrix::row(vec![1.0, -1.0]);
        let t = Matrix::row(vec![100.0]); // huge error => huge gradients
        net.zero_grad();
        let pred = net.forward(&x, true);
        let (_, grad) = Loss::Mse.compute(&pred, &t);
        net.backward(&grad);
        let before = net.grad_norm();
        assert!(before > 1.0);
        let reported = net.clip_grad_norm(1.0);
        assert_eq!(reported, before);
        assert!(
            (net.grad_norm() - 1.0).abs() < 1e-3,
            "norm clipped to 1: {}",
            net.grad_norm()
        );
        // Clipping below the cap is a no-op.
        let small = net.grad_norm();
        net.clip_grad_norm(10.0);
        assert!((net.grad_norm() - small).abs() < 1e-6);
    }

    #[test]
    fn copy_and_soft_update_sync_parameters() {
        let mut a = Mlp::new(&[2, 4, 1], Activation::Relu, Activation::Linear, 5);
        let b = Mlp::new(&[2, 4, 1], Activation::Relu, Activation::Linear, 6);
        assert_ne!(a, b);
        let mut c = a.clone();
        c.copy_params_from(&b);
        assert_eq!(c, b);
        // Soft update with tau=1 equals a hard copy.
        a.soft_update_from(&b, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn serialization_roundtrip_preserves_predictions() {
        let net = Mlp::new(&[3, 5, 2], Activation::Relu, Activation::Linear, 9);
        let json = net.to_json().unwrap();
        let back = Mlp::from_json(&json).unwrap();
        let x = Matrix::row(vec![0.3, 0.6, -0.9]);
        assert_eq!(net.predict(&x), back.predict(&x));
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(Mlp::from_json("not json").is_err());
    }

    #[test]
    fn deterministic_construction() {
        let a = Mlp::new(&[4, 8, 2], Activation::Relu, Activation::Linear, 42);
        let b = Mlp::new(&[4, 8, 2], Activation::Relu, Activation::Linear, 42);
        assert_eq!(a, b);
        let c = Mlp::new(&[4, 8, 2], Activation::Relu, Activation::Linear, 43);
        assert_ne!(a, c);
    }
}
