//! Differential pyramid for multi-flit wormhole switching and table routing.
//!
//! Three layers of guarantees:
//!
//! 1. **Equivalence floor** — for single-flit packets, per-packet switch
//!    allocation is byte-identical to the legacy per-flit mode (every grant
//!    is a head-and-tail, so the output-port hold is acquired and released
//!    within one grant). The legacy 8×8 uniform@0.10 single-flit report is
//!    pinned byte-for-byte against its wormhole twin.
//! 2. **Liveness + determinism sweep** — a proptest over routing family
//!    (including table-driven k-path routing), topology kind, packet-length
//!    distribution, fault count, partitions ∈ {1, 2, 4}, and worklist
//!    on/off: every offered packet is delivered or counted dropped after a
//!    full drain (no wedges), and all six partition/worklist combinations
//!    serialize to the same bytes.
//! 3. **Golden pin** — a multi-flit 4×4 per-packet run nailed to exact
//!    packet/flit/latency/energy numbers, so wormhole behavior cannot
//!    drift silently.

use noc_sim::{
    FaultPlan, LengthSpec, RoutingAlgorithm, SimConfig, Simulator, StatsCollector, SwitchArb,
    Topology, TopologyKind, TrafficPattern, TrafficSpec, WorkloadPhase, WorkloadSpec,
};
use proptest::prelude::*;

/// Run `cfg` for `cycles` loaded cycles under the given partition count and
/// worklist mode, then stop offering and drain to empty within a hard
/// budget. Panics if the network wedges.
fn drain_run(cfg: &SimConfig, partitions: usize, step_all: bool, cycles: u64) -> StatsCollector {
    let mut sim = Simulator::new(cfg.clone().with_partitions(partitions)).expect("valid config");
    sim.set_step_all(step_all);
    sim.run(cycles);
    sim.set_traffic(TrafficSpec::stationary(TrafficPattern::Uniform, 0.0))
        .expect("valid spec");
    let mut budget = 30_000u64;
    while sim.network().in_flight() > 0 {
        assert!(
            budget > 0,
            "wormhole fabric wedged with flits in flight (partitions={partitions}, \
             step_all={step_all})"
        );
        sim.run(100);
        budget = budget.saturating_sub(100);
    }
    sim.stats().clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The liveness + determinism sweep. Conservation after a full drain:
    /// `offered == ejected + dropped` packets — the wormhole hold/release
    /// protocol must never wedge an output port, under faults, table
    /// recomputes, and every length distribution. Determinism: partitions
    /// {1, 2, 4} × worklist {on, off} all serialize to identical bytes.
    #[test]
    fn wormhole_runs_drain_and_are_byte_identical(
        seed in 0u64..10_000,
        torus in any::<bool>(),
        route_sel in 0usize..3,
        len_sel in 0usize..4,
        num_faults in 0usize..3,
        per_packet in any::<bool>(),
    ) {
        let routing = if torus {
            [
                RoutingAlgorithm::TorusDor,
                RoutingAlgorithm::TorusMinAdaptive,
                RoutingAlgorithm::Table,
            ][route_sel]
        } else {
            [
                RoutingAlgorithm::Xy,
                RoutingAlgorithm::OddEven,
                RoutingAlgorithm::Table,
            ][route_sel]
        };
        let length = [
            None,
            Some(LengthSpec::fixed(4)),
            Some(LengthSpec::Uniform { min: 1, max: 8 }),
            Some(LengthSpec::Bimodal { short: 1, long: 8, long_pct: 20 }),
        ][len_sel];
        let mut phase = WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.08, 0);
        if let Some(spec) = length {
            phase = phase.with_length(spec);
        }
        let mut cfg = SimConfig::default()
            .with_size(8, 8)
            .with_regions(2, 2)
            .with_workload(WorkloadSpec::new(vec![phase]))
            .with_routing(routing)
            .with_switch_arb(if per_packet {
                SwitchArb::PerPacket
            } else {
                SwitchArb::PerFlit
            })
            .with_seed(seed);
        cfg.kind = if torus { TopologyKind::Torus } else { TopologyKind::Mesh };
        if num_faults > 0 {
            let topo = match cfg.kind {
                TopologyKind::Mesh => Topology::mesh(8, 8),
                TopologyKind::Torus => Topology::torus(8, 8),
            };
            cfg = cfg.with_faults(FaultPlan::random_links(
                &topo,
                num_faults,
                seed ^ 0x5EED,
                50,
                None,
            ));
        }
        let reference = drain_run(&cfg, 1, false, 500);
        // Conservation: after a clean drain every offered packet is
        // terminal — delivered or counted dropped.
        prop_assert_eq!(
            reference.offered_packets,
            reference.ejected_packets + reference.dropped_packets,
            "packet leaked: offered {} != ejected {} + dropped {}",
            reference.offered_packets,
            reference.ejected_packets,
            reference.dropped_packets
        );
        prop_assert!(
            reference.ejected_flits + reference.dropped_flits >= reference.injected_flits,
            "flit leaked"
        );
        prop_assert!(reference.offered_packets > 0, "sweep point must offer traffic");
        let reference_bytes = serde_json::to_string(&reference).expect("stats serialize");
        for partitions in [1usize, 2, 4] {
            for step_all in [false, true] {
                if partitions == 1 && !step_all {
                    continue; // the reference itself
                }
                let twin = drain_run(&cfg, partitions, step_all, 500);
                let twin_bytes = serde_json::to_string(&twin).expect("stats serialize");
                prop_assert_eq!(
                    &twin_bytes, &reference_bytes,
                    "diverged at partitions={} step_all={}", partitions, step_all
                );
            }
        }
    }
}

/// Satellite pin: with single-flit packets, `PerPacket` switch allocation
/// reproduces the legacy single-flit 8×8 uniform@0.10 run byte-for-byte —
/// and attaching an explicit `len1` length spec (which consumes no RNG
/// draws) changes nothing either. Wormhole mode is a strict superset of
/// today's behavior, not a fork.
#[test]
fn single_flit_wormhole_pins_legacy_bytes() {
    let run = |arb: SwitchArb, length: Option<LengthSpec>| {
        let mut phase = WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.10, 0);
        if let Some(spec) = length {
            phase = phase.with_length(spec);
        }
        let cfg = SimConfig::default()
            .with_packet_len(1)
            .with_workload(WorkloadSpec::new(vec![phase]))
            .with_switch_arb(arb);
        let mut sim = Simulator::new(cfg).expect("valid config");
        sim.run(2_000);
        serde_json::to_string(sim.stats()).expect("stats serialize")
    };
    let legacy = run(SwitchArb::PerFlit, None);
    assert_eq!(
        run(SwitchArb::PerPacket, None),
        legacy,
        "single-flit per-packet arbitration must be byte-identical to per-flit"
    );
    assert_eq!(
        run(SwitchArb::PerPacket, Some(LengthSpec::fixed(1))),
        legacy,
        "an explicit len1 spec must not perturb the RNG stream or the bytes"
    );
}

/// Golden pin of the multi-flit wormhole point: 4×4 mesh, uniform at 0.10
/// flits/node/cycle, 5-flit packets, per-packet switch allocation. Exact
/// counters, latency sums, and the f64 energy total — plus byte-equality
/// across partitions and worklist modes on the same point.
#[test]
fn multi_flit_4x4_perpacket_golden_metrics() {
    let cfg = SimConfig::default()
        .with_size(4, 4)
        .with_regions(2, 2)
        .with_traffic(TrafficPattern::Uniform, 0.10)
        .with_switch_arb(SwitchArb::PerPacket)
        .with_seed(42);
    let run = |partitions: usize, step_all: bool| {
        let mut sim =
            Simulator::new(cfg.clone().with_partitions(partitions)).expect("valid config");
        sim.set_step_all(step_all);
        sim.run(2_000);
        sim.stats().clone()
    };
    let s = run(1, false);
    assert_eq!(
        (
            s.offered_packets,
            s.injected_flits,
            s.injected_packets,
            s.ejected_flits,
            s.ejected_packets,
            s.dropped_flits,
        ),
        (629, 3_136, 627, 3_115, 623, 0),
        "multi-flit 4x4 per-packet counters drifted"
    );
    assert_eq!(
        (s.sum_packet_latency, s.sum_network_latency, s.sum_hops),
        (9_790.0, 9_632.0, 1_660.0),
        "multi-flit 4x4 per-packet latency sums drifted"
    );
    assert_eq!(
        s.energy.total_pj(),
        66_608.74999998449,
        "multi-flit 4x4 per-packet energy drifted"
    );
    for partitions in [2usize, 4] {
        for step_all in [false, true] {
            let twin = run(partitions, step_all);
            assert_eq!(
                serde_json::to_string(&twin).unwrap(),
                serde_json::to_string(&s).unwrap(),
                "golden point diverged at partitions={partitions} step_all={step_all}"
            );
        }
    }
}

/// Long packets under per-packet arbitration must show head-of-line
/// blocking that per-flit interleaving hides: same workload, same seed,
/// the per-packet run cannot beat per-flit on mean latency, and both
/// stay live.
#[test]
fn per_packet_arbitration_exposes_hol_blocking() {
    let run = |arb: SwitchArb| {
        let cfg = SimConfig::default()
            .with_size(8, 8)
            .with_packet_len(8)
            .with_traffic(TrafficPattern::Uniform, 0.20)
            .with_switch_arb(arb)
            .with_seed(7);
        let mut sim = Simulator::new(cfg).expect("valid config");
        sim.run_classic(500, 2_000, 10_000)
    };
    let perflit = run(SwitchArb::PerFlit);
    let perpacket = run(SwitchArb::PerPacket);
    assert!(perflit.window.latency_samples > 100);
    assert!(perpacket.window.latency_samples > 100);
    assert!(
        perpacket.window.avg_packet_latency >= perflit.window.avg_packet_latency,
        "holding output ports head→tail cannot reduce latency: perpacket {} < perflit {}",
        perpacket.window.avg_packet_latency,
        perflit.window.avg_packet_latency
    );
}

/// Table routing survives a permanent link fault: the tables are rebuilt at
/// the fault boundary, an explicit all-to-all load drains completely, and
/// the k-path spread saves the overwhelming majority of pairs (only pairs
/// whose every West-First-legal minimal path crosses the dead wire drop).
#[test]
fn table_routing_drains_all_to_all_across_a_permanent_fault() {
    use noc_sim::{FaultEvent, FaultTarget, Network, NodeId, Packet, PacketId, Port};
    let cfg = SimConfig::default()
        .with_size(8, 8)
        .with_routing(RoutingAlgorithm::Table)
        .with_switch_arb(SwitchArb::PerPacket)
        .with_packet_len(2)
        .with_faults(
            FaultPlan::new(vec![FaultEvent {
                start: 0,
                duration: None,
                target: FaultTarget::Link {
                    node: NodeId(5),
                    port: Port::East,
                },
            }])
            .unwrap(),
        );
    let mut net = Network::new(&cfg).expect("valid faulted config");
    let mut stats = StatsCollector::new(net.regions().num_regions());
    let mut offered = 0u64;
    for src in 0..64usize {
        for dst in 0..64usize {
            if src != dst {
                net.offer(
                    vec![Packet {
                        id: PacketId(offered),
                        src: NodeId(src),
                        dst: NodeId(dst),
                        len_flits: 2,
                        created_at: 0,
                    }],
                    &mut stats,
                );
                offered += 1;
            }
        }
    }
    let mut budget = 60_000u32;
    while net.in_flight() > 0 {
        assert!(budget > 0, "faulted table-routed mesh wedged");
        net.step(&mut stats);
        budget -= 1;
    }
    assert_eq!(
        stats.ejected_packets + stats.dropped_packets,
        offered,
        "every all-to-all packet must be delivered or counted dropped"
    );
    assert!(
        stats.dropped_packets * 10 < offered,
        "k-path tables must route around the fault for most pairs: {} of {} dropped",
        stats.dropped_packets,
        offered
    );
    // The rebuilt tables agree: only pairs disconnected under West-First
    // minimal routing lost their paths.
    let tables = net.routing_tables().expect("table routing keeps tables");
    assert!(tables.paths(NodeId(5), NodeId(6)).is_empty());
    assert!(!tables.paths(NodeId(5), NodeId(14)).is_empty());
}

/// A timed fault heals and the tables recompute back to full coverage: the
/// network rebuilds on *every* liveness change, not just onsets. Conservation
/// holds across the fault window, and after the heal every pair is routable
/// again.
#[test]
fn table_routing_recomputes_on_fault_heal() {
    use noc_sim::{FaultEvent, FaultTarget, NodeId, Port};
    let cfg = SimConfig::default()
        .with_size(4, 4)
        .with_regions(2, 2)
        .with_traffic(TrafficPattern::Uniform, 0.08)
        .with_routing(RoutingAlgorithm::Table)
        .with_switch_arb(SwitchArb::PerPacket)
        .with_faults(
            FaultPlan::new(vec![FaultEvent {
                start: 200,
                duration: Some(400),
                target: FaultTarget::Link {
                    node: NodeId(5),
                    port: Port::East,
                },
            }])
            .unwrap(),
        )
        .with_seed(11);
    let mut sim = Simulator::new(cfg).expect("valid config");
    sim.run(2_000);
    sim.set_traffic(TrafficSpec::stationary(TrafficPattern::Uniform, 0.0))
        .expect("valid spec");
    let mut budget = 10_000u64;
    while sim.network().in_flight() > 0 {
        assert!(budget > 0, "healed table-routed mesh wedged");
        sim.run(100);
        budget = budget.saturating_sub(100);
    }
    let s = sim.stats();
    assert_eq!(
        s.offered_packets,
        s.ejected_packets + s.dropped_packets,
        "conservation across the fault window"
    );
    // Post-heal tables have full pair coverage again.
    let topo = sim.network().topology().clone();
    let tables = sim
        .network()
        .routing_tables()
        .expect("table routing keeps tables");
    for src in topo.nodes() {
        for dst in topo.nodes() {
            if src != dst {
                assert!(
                    !tables.paths(src, dst).is_empty(),
                    "{src}->{dst} must be routable after the heal"
                );
            }
        }
    }
}

/// Runtime `set_routing(Table)` builds tables on the fly (against the live
/// fault set) and the run stays conservative; switching away drops them.
#[test]
fn runtime_switch_to_table_routing_builds_tables() {
    let mut sim = Simulator::new(
        SimConfig::default()
            .with_size(4, 4)
            .with_regions(2, 2)
            .with_traffic(TrafficPattern::Uniform, 0.08)
            .with_seed(5),
    )
    .expect("valid config");
    assert!(sim.network().routing_tables().is_none());
    sim.run(500);
    sim.set_routing(RoutingAlgorithm::Table).expect("table ok");
    assert!(sim.network().routing_tables().is_some());
    sim.run(1_000);
    sim.set_traffic(TrafficSpec::stationary(TrafficPattern::Uniform, 0.0))
        .expect("valid spec");
    let mut budget = 10_000u64;
    while sim.network().in_flight() > 0 {
        assert!(budget > 0, "table-routed mesh wedged after runtime switch");
        sim.run(100);
        budget = budget.saturating_sub(100);
    }
    let s = sim.stats();
    assert_eq!(s.offered_packets, s.ejected_packets + s.dropped_packets);
    assert_eq!(s.dropped_packets, 0, "healthy fabric drops nothing");
    sim.set_routing(RoutingAlgorithm::Xy).expect("xy ok");
    assert!(sim.network().routing_tables().is_none());
}
