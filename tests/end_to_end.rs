//! Cross-crate integration tests: the full pipeline from traffic generation
//! through the simulator, the RL stack, and the self-configuration layer.

use noc_selfconf::ActionSpace;
use noc_selfconf::{
    run_controller, train_drl, DrlController, NocEnvConfig, RewardConfig, StaticController,
};
use noc_sim::{SimConfig, Simulator, TrafficPattern, TrafficSpec};
use rl::{DqnConfig, Schedule, TrainConfig};

fn small_sim() -> SimConfig {
    SimConfig::default()
        .with_size(4, 4)
        .with_regions(2, 2)
        .with_traffic(TrafficPattern::Uniform, 0.10)
}

fn tiny_env(sim: SimConfig) -> NocEnvConfig {
    NocEnvConfig {
        action_space: ActionSpace::PerRegionDelta {
            num_regions: 4,
            num_levels: 4,
        },
        sim,
        epoch_cycles: 150,
        epochs_per_episode: 6,
        reward: RewardConfig::default(),
        traffic_menu: vec![
            TrafficSpec::stationary(TrafficPattern::Uniform, 0.05),
            TrafficSpec::stationary(TrafficPattern::Uniform, 0.20),
        ],
        seed: 5,
    }
}

/// Train a tiny policy end-to-end and deploy it as a runtime controller on a
/// fresh simulator. The whole chain must hold together: encoder dims, action
/// translation, level actuation.
#[test]
fn train_then_deploy_controller() {
    let policy = train_drl(
        tiny_env(small_sim()),
        DqnConfig {
            hidden: vec![32],
            batch_size: 16,
            min_replay: 16,
            ..DqnConfig::default()
        },
        TrainConfig {
            episodes: 6,
            max_steps: 6,
            epsilon: Schedule::Linear {
                start: 1.0,
                end: 0.1,
                steps: 20,
            },
            train_per_step: 1,
            seed: 3,
        },
    )
    .expect("training runs");
    assert!(
        policy.agent.train_steps() > 0,
        "agent must have learned something"
    );

    let mut controller = DrlController::new(policy.agent, policy.encoder, policy.action_space);
    let run = run_controller(&small_sim(), &mut controller, 8, 150).expect("deployment runs");
    assert_eq!(run.epochs.len(), 8);
    // Levels must always be valid indices.
    assert!(run.levels.iter().flatten().all(|&l| l < 4));
    // The network must actually move traffic under the learned policy.
    let delivered: u64 = run.epochs.iter().map(|m| m.ejected_flits).sum();
    assert!(
        delivered > 100,
        "flits must flow under DRL control, got {delivered}"
    );
}

/// Flit conservation across the whole system: everything injected is either
/// delivered or still in flight, for every routing algorithm and V/F level.
#[test]
fn flit_conservation_under_reconfiguration() {
    let mut sim = Simulator::new(small_sim()).expect("valid config");
    for (i, level) in [3usize, 0, 2, 1, 3].iter().enumerate() {
        sim.set_all_levels(*level).expect("level valid");
        if i % 2 == 0 {
            sim.set_routing(noc_sim::RoutingAlgorithm::OddEven)
                .expect("routing valid");
        } else {
            sim.set_routing(noc_sim::RoutingAlgorithm::Xy)
                .expect("routing valid");
        }
        sim.run(400);
        let s = sim.stats();
        let in_network = sim.network().in_flight() as u64;
        let offered_flits = s.offered_packets * 5; // 5-flit packets
        assert_eq!(
            s.ejected_flits + in_network,
            offered_flits,
            "conservation violated at step {i}"
        );
    }
    // Stop traffic and drain completely.
    sim.set_traffic(TrafficSpec::stationary(TrafficPattern::Uniform, 0.0))
        .expect("valid spec");
    sim.set_all_levels(3).expect("level valid");
    for _ in 0..200 {
        if sim.network().in_flight() == 0 {
            break;
        }
        sim.run(50);
    }
    assert_eq!(sim.network().in_flight(), 0, "network must drain fully");
    assert_eq!(sim.stats().ejected_flits, sim.stats().offered_packets * 5);
}

/// The whole stack is deterministic given seeds: two identical training +
/// evaluation pipelines produce bit-identical results.
#[test]
fn pipeline_is_deterministic() {
    let run_once = || {
        let policy = train_drl(
            tiny_env(small_sim()),
            DqnConfig {
                hidden: vec![16],
                batch_size: 8,
                min_replay: 8,
                ..DqnConfig::default()
            },
            TrainConfig {
                episodes: 3,
                max_steps: 5,
                epsilon: Schedule::Constant(0.3),
                train_per_step: 1,
                seed: 11,
            },
        )
        .expect("training runs");
        let returns: Vec<f64> = policy.curve.iter().map(|e| e.total_reward).collect();
        let q = policy.agent.q_values(&[0.5; 17]);
        (returns, q)
    };
    assert_eq!(run_once(), run_once());
}

/// Static-max must dominate latency and static-min must dominate energy on
/// the same workload — the sanity anchor for every comparison figure.
#[test]
fn baseline_ordering_holds() {
    let sim = small_sim();
    let mut max_c = StaticController::max();
    let mut min_c = StaticController::min();
    let a = run_controller(&sim, &mut max_c, 10, 200)
        .expect("runs")
        .aggregate;
    let b = run_controller(&sim, &mut min_c, 10, 200)
        .expect("runs")
        .aggregate;
    assert!(a.avg_latency < b.avg_latency, "max V/F must be faster");
    assert!(a.energy_pj > b.energy_pj, "max V/F must burn more energy");
}

/// Episode metrics flow through the umbrella crate re-exports.
#[test]
fn umbrella_reexports_work() {
    use self_configurable_noc::noc_sim::{SimConfig as C, Simulator as S, TrafficPattern as T};
    let mut sim =
        S::new(C::default().with_size(4, 4).with_traffic(T::Uniform, 0.05)).expect("valid config");
    let m = sim.run_epoch(300);
    assert_eq!(m.cycles, 300);
}
