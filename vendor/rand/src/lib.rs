//! # rand (offline stand-in)
//!
//! A minimal, dependency-free re-implementation of the slice of the
//! `rand 0.8` API this workspace uses: [`rngs::StdRng`], [`SeedableRng`],
//! and the [`Rng`] extension trait with `gen`, `gen_range`, and `gen_bool`.
//!
//! The container this repository builds in has no network access, so the
//! real crates.io `rand` cannot be fetched; this crate is a drop-in local
//! path dependency with identical call-site syntax. The generator is
//! xoshiro256++ seeded via SplitMix64 — deterministic for a given seed on
//! every platform, which the workspace relies on for reproducible
//! simulations and byte-identical sweep reports.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 state expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" (uniform bits) distribution.
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as StandardSample>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (SplitMix64-seeded).
    ///
    /// Not the same stream as crates.io `StdRng` (ChaCha12), but the
    /// workspace only requires determinism for a fixed seed, not
    /// cross-crate stream compatibility.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro forbids the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: f64 = rng.gen_range(-2.0..=2.0);
            assert!((-2.0..=2.0).contains(&y));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
