//! Fig 4 — average packet latency under each controller across the
//! pattern × rate grid.
//!
//! Expected shape: static-max lowest latency; static-min highest; DRL tracks
//! static-max within ~10–20 % at low-mid load; threshold/tabular in between.

use noc_bench::comparison::run_or_load;
use noc_bench::{fmt, print_table, save_csv, save_markdown, Scale};

fn main() {
    let scale = Scale::from_env();
    let points = run_or_load(scale);
    let mut rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.pattern.clone(),
                format!("{:.3}", p.rate),
                p.controller.clone(),
                fmt(p.agg.avg_latency),
                fmt(p.agg.throughput),
                fmt(p.agg.mean_level),
            ]
        })
        .collect();
    rows.sort();
    let headers = [
        "pattern",
        "rate",
        "controller",
        "avg latency",
        "throughput",
        "mean level",
    ];
    let md = print_table("Fig 4 — latency comparison", &headers, &rows);
    save_csv("fig4_latency_compare", &headers, &rows);
    save_markdown("fig4_latency_compare", &md);
}
