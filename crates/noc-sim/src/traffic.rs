//! Synthetic traffic generation: the composable workload subsystem.
//!
//! Application traffic is described by a [`WorkloadSpec`]: an ordered list of
//! [`WorkloadPhase`]s, each binding a destination-selection
//! [`TrafficPattern`] (uniform random, transpose, bit-complement,
//! bit-reverse, shuffle, tornado, neighbor, hotspot) to an
//! [`InjectionProcess`] (memoryless Bernoulli, two-state bursty on/off, or
//! periodic pulse) for a number of cycles, optionally with a per-phase
//! packet-length distribution ([`LengthSpec`]: fixed/uniform/bimodal).
//! Phase schedules repeat cyclically; a final phase with `cycles == 0`
//! holds forever instead.
//!
//! Every spec has a canonical, round-trippable label (see
//! [`WorkloadSpec::label`]), e.g.
//! `ph[uniform:bern0.1@5000|tornado:burst0.3x0.05@5000]`, which is the same
//! grammar the sweep engine, CLI, and reports use — labels cannot drift from
//! the specs they name because both directions share one table.
//!
//! Trace-driven traffic (explicit packet schedules) lives alongside the
//! rate-based workloads in [`TrafficSpec`].

use crate::error::{SimError, SimResult};
use crate::flit::{Packet, PacketId};
use crate::topology::{Coord, NodeId, Topology};
use crate::trace::PacketTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A destination-selection pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Destination drawn uniformly among all other nodes.
    Uniform,
    /// `(x, y) → (y, x)`. Requires a square grid.
    Transpose,
    /// `(x, y) → (W-1-x, H-1-y)`.
    BitComplement,
    /// Node index bit-reversed. Requires a power-of-two node count.
    BitReverse,
    /// Node index rotated left by one bit. Requires a power-of-two node count.
    Shuffle,
    /// `x → (x + ⌈W/2⌉ - 1) mod W`, same row.
    Tornado,
    /// `(x, y) → ((x+1) mod W, y)`.
    Neighbor,
    /// With probability `fraction`, send to a uniformly chosen hotspot node;
    /// otherwise uniform.
    Hotspot {
        /// The hotspot destinations.
        hotspots: Vec<NodeId>,
        /// Probability a packet targets a hotspot.
        fraction: f64,
    },
}

impl TrafficPattern {
    /// The dataless patterns paired with their canonical short names — the
    /// single table behind [`TrafficPattern::name`] and
    /// [`TrafficPattern::from_name`], so parsers and label printers cannot
    /// drift apart.
    pub const NAMED: [(&'static str, TrafficPattern); 7] = [
        ("uniform", TrafficPattern::Uniform),
        ("transpose", TrafficPattern::Transpose),
        ("bitcomp", TrafficPattern::BitComplement),
        ("bitrev", TrafficPattern::BitReverse),
        ("shuffle", TrafficPattern::Shuffle),
        ("tornado", TrafficPattern::Tornado),
        ("neighbor", TrafficPattern::Neighbor),
    ];

    /// The pattern's canonical short name. Hotspot patterns carry their
    /// parameters (`hotspot5-6f0.3`: nodes 5 and 6, fraction 0.3) in the
    /// shortest `f64` form that round-trips, so [`TrafficPattern::from_name`]
    /// parses every emitted name back to an equal pattern.
    pub fn name(&self) -> String {
        match self {
            TrafficPattern::Hotspot { hotspots, fraction } => {
                // Node ids are part of the name: two hotspot patterns with
                // different targets must never share a label.
                let ids: Vec<String> = hotspots.iter().map(|n| n.0.to_string()).collect();
                format!("hotspot{}f{fraction}", ids.join("-"))
            }
            dataless => Self::NAMED
                .iter()
                .find(|(_, p)| p == dataless)
                .map(|(n, _)| (*n).to_string())
                .expect("every dataless pattern is in NAMED"),
        }
    }

    /// Parse a canonical pattern name: a dataless name from
    /// [`TrafficPattern::NAMED`], or a parameterized hotspot label
    /// (`hotspot<id>-<id>-...f<fraction>`). Inverse of
    /// [`TrafficPattern::name`].
    pub fn from_name(name: &str) -> Option<TrafficPattern> {
        if let Some(rest) = name.strip_prefix("hotspot") {
            // `<ids>f<fraction>`: ids are '-'-separated integers, so the
            // first 'f' unambiguously starts the fraction.
            let (ids, fraction) = rest.split_once('f')?;
            let hotspots = ids
                .split('-')
                .map(|s| s.parse::<usize>().ok().map(NodeId))
                .collect::<Option<Vec<NodeId>>>()?;
            let fraction = fraction.parse::<f64>().ok()?;
            return Some(TrafficPattern::Hotspot { hotspots, fraction });
        }
        Self::NAMED
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, p)| p.clone())
    }

    /// Parse a canonical pattern name ([`TrafficPattern::from_name`]) with a
    /// diagnostic listing the valid grammar — the one error message the CLI
    /// and the workload grammar share. The parsed pattern is shape-checked.
    ///
    /// # Errors
    /// Returns an error for unknown names or out-of-range parameters.
    pub fn parse(name: &str) -> SimResult<TrafficPattern> {
        let pattern = Self::from_name(name).ok_or_else(|| {
            let names: Vec<&str> = Self::NAMED.iter().map(|(n, _)| *n).collect();
            SimError::InvalidConfig(format!(
                "unknown traffic pattern `{name}` (expected one of: {}, or \
                 hotspot<id>-<id>f<fraction>)",
                names.join(", ")
            ))
        })?;
        pattern.shape_check()?;
        Ok(pattern)
    }

    /// Topology-independent parameter checks (hotspot list non-empty,
    /// fraction in range).
    ///
    /// # Errors
    /// Returns the first violated constraint.
    pub fn shape_check(&self) -> SimResult<()> {
        if let TrafficPattern::Hotspot { hotspots, fraction } = self {
            if hotspots.is_empty() {
                return Err(SimError::InvalidConfig(
                    "hotspot list must not be empty".into(),
                ));
            }
            if !(0.0..=1.0).contains(fraction) {
                return Err(SimError::InvalidConfig(format!(
                    "hotspot fraction {fraction} outside [0, 1]"
                )));
            }
        }
        Ok(())
    }

    /// Check the pattern is usable on the given topology.
    ///
    /// # Errors
    /// Returns an error for patterns whose structural requirements the
    /// topology does not meet.
    pub fn validate(&self, topo: &Topology) -> SimResult<()> {
        self.shape_check()?;
        match self {
            TrafficPattern::Transpose if topo.width() != topo.height() => Err(
                SimError::InvalidConfig("transpose traffic requires a square grid".into()),
            ),
            TrafficPattern::BitReverse | TrafficPattern::Shuffle
                if !topo.num_nodes().is_power_of_two() =>
            {
                Err(SimError::InvalidConfig(
                    "bit-reverse/shuffle traffic requires a power-of-two node count".into(),
                ))
            }
            TrafficPattern::Hotspot { hotspots, .. } => {
                for h in hotspots {
                    if h.0 >= topo.num_nodes() {
                        return Err(SimError::NodeOutOfRange {
                            node: h.0,
                            nodes: topo.num_nodes(),
                        });
                    }
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Pick a destination for a packet injected at `src`. May return `src`
    /// itself for self-addressed patterns (e.g. transpose on the diagonal);
    /// callers typically skip such packets.
    pub fn destination(&self, topo: &Topology, src: NodeId, rng: &mut StdRng) -> NodeId {
        let n = topo.num_nodes();
        let c = topo.coord(src);
        let (w, h) = (topo.width(), topo.height());
        match self {
            TrafficPattern::Uniform => {
                if n == 1 {
                    return src; // degenerate topology: caller skips self-sends
                }
                // Uniform over the other n-1 nodes.
                let mut d = rng.gen_range(0..n - 1);
                if d >= src.0 {
                    d += 1;
                }
                NodeId(d)
            }
            TrafficPattern::Transpose => topo.node_at(Coord { x: c.y, y: c.x }),
            TrafficPattern::BitComplement => topo.node_at(Coord {
                x: w - 1 - c.x,
                y: h - 1 - c.y,
            }),
            TrafficPattern::BitReverse => {
                let bits = n.trailing_zeros();
                NodeId((src.0.reverse_bits() >> (usize::BITS - bits)) & (n - 1))
            }
            TrafficPattern::Shuffle => {
                let bits = n.trailing_zeros();
                let rotated = ((src.0 << 1) | (src.0 >> (bits - 1))) & (n - 1);
                NodeId(rotated)
            }
            TrafficPattern::Tornado => {
                let shift = w.div_ceil(2) - 1;
                topo.node_at(Coord {
                    x: (c.x + shift) % w,
                    y: c.y,
                })
            }
            TrafficPattern::Neighbor => topo.node_at(Coord {
                x: (c.x + 1) % w,
                y: c.y,
            }),
            TrafficPattern::Hotspot { hotspots, fraction } => {
                if rng.gen::<f64>() < *fraction {
                    hotspots[rng.gen_range(0..hotspots.len())]
                } else {
                    TrafficPattern::Uniform.destination(topo, src, rng)
                }
            }
        }
    }
}

/// How packets are offered over time at each source node. All rates are in
/// flits per node per cycle; the generator converts them to per-cycle packet
/// probabilities by dividing by the packet length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InjectionProcess {
    /// Memoryless injection: every node flips one coin per cycle. The
    /// classic open-loop model (label `bern<rate>`).
    Bernoulli {
        /// Mean injection rate, flits/node/cycle.
        rate: f64,
    },
    /// Two-state on/off Markov-modulated Bernoulli (label
    /// `burst<rate_on>x<switch>`): each node is independently ON (injecting
    /// at `rate_on`) or OFF (silent) and flips state with probability
    /// `switch` per cycle. Mean sojourn in each state is `1/switch` cycles;
    /// the duty cycle is 50 %, so the long-run mean rate is `rate_on / 2`.
    Bursty {
        /// Injection rate while ON, flits/node/cycle.
        rate_on: f64,
        /// Per-cycle probability of flipping ON↔OFF.
        switch: f64,
    },
    /// Deterministic periodic pulse (label `pulse<rate>x<period>x<on>`):
    /// inject at `rate` during the first `on` cycles of every `period`-cycle
    /// window of the phase, silent otherwise. All nodes pulse in lockstep —
    /// the worst-case synchronized burst.
    Periodic {
        /// Injection rate inside the pulse, flits/node/cycle.
        rate: f64,
        /// Pulse period in cycles.
        period: u64,
        /// Pulse width in cycles (`0 < on <= period`).
        on: u64,
    },
}

impl InjectionProcess {
    /// Canonical label, e.g. `bern0.1`, `burst0.3x0.05`, `pulse0.4x100x20`.
    /// Rates render in the shortest `f64` form that round-trips, so
    /// [`InjectionProcess::parse`] inverts this exactly.
    pub fn label(&self) -> String {
        match self {
            InjectionProcess::Bernoulli { rate } => format!("bern{rate}"),
            InjectionProcess::Bursty { rate_on, switch } => format!("burst{rate_on}x{switch}"),
            InjectionProcess::Periodic { rate, period, on } => {
                format!("pulse{rate}x{period}x{on}")
            }
        }
    }

    /// Parse a canonical process label (inverse of
    /// [`InjectionProcess::label`]). The parsed process is range-checked.
    ///
    /// # Errors
    /// Returns an error for unknown process names, malformed numbers, or
    /// out-of-range parameters.
    pub fn parse(s: &str) -> SimResult<InjectionProcess> {
        let bad = |why: String| SimError::InvalidConfig(format!("injection process `{s}`: {why}"));
        let num = |v: &str, what: &str| {
            v.parse::<f64>()
                .map_err(|e| bad(format!("bad {what} `{v}`: {e}")))
        };
        let int = |v: &str, what: &str| {
            v.parse::<u64>()
                .map_err(|e| bad(format!("bad {what} `{v}`: {e}")))
        };
        let process = if let Some(rest) = s.strip_prefix("bern") {
            InjectionProcess::Bernoulli {
                rate: num(rest, "rate")?,
            }
        } else if let Some(rest) = s.strip_prefix("burst") {
            let (rate_on, switch) = rest
                .split_once('x')
                .ok_or_else(|| bad("expected burst<rate_on>x<switch>".into()))?;
            InjectionProcess::Bursty {
                rate_on: num(rate_on, "rate_on")?,
                switch: num(switch, "switch")?,
            }
        } else if let Some(rest) = s.strip_prefix("pulse") {
            let mut it = rest.splitn(3, 'x');
            let (rate, period, on) = match (it.next(), it.next(), it.next()) {
                (Some(r), Some(p), Some(o)) => (r, p, o),
                _ => return Err(bad("expected pulse<rate>x<period>x<on>".into())),
            };
            InjectionProcess::Periodic {
                rate: num(rate, "rate")?,
                period: int(period, "period")?,
                on: int(on, "on")?,
            }
        } else {
            return Err(bad("expected bern…, burst…, or pulse…".into()));
        };
        process.validate().map_err(|e| bad(e.to_string()))?;
        Ok(process)
    }

    /// Check parameter ranges (topology-independent).
    ///
    /// # Errors
    /// Returns the first violated constraint.
    pub fn validate(&self) -> SimResult<()> {
        let check_rate = |rate: f64, what: &str| {
            if !(0.0..=1.0).contains(&rate) {
                Err(SimError::InvalidConfig(format!(
                    "{what} {rate} outside [0, 1] flits/node/cycle"
                )))
            } else {
                Ok(())
            }
        };
        match self {
            InjectionProcess::Bernoulli { rate } => check_rate(*rate, "injection rate"),
            InjectionProcess::Bursty { rate_on, switch } => {
                check_rate(*rate_on, "burst on-rate")?;
                if !(*switch > 0.0 && *switch <= 1.0) {
                    return Err(SimError::InvalidConfig(format!(
                        "burst switch probability {switch} outside (0, 1]"
                    )));
                }
                Ok(())
            }
            InjectionProcess::Periodic { rate, period, on } => {
                check_rate(*rate, "pulse rate")?;
                if *period == 0 || *on == 0 || on > period {
                    return Err(SimError::InvalidConfig(format!(
                        "pulse window {on}/{period} needs 0 < on <= period"
                    )));
                }
                Ok(())
            }
        }
    }

    /// Long-run mean injection rate, flits/node/cycle.
    pub fn mean_rate(&self) -> f64 {
        match self {
            InjectionProcess::Bernoulli { rate } => *rate,
            // Symmetric two-state chain: half the time ON.
            InjectionProcess::Bursty { rate_on, .. } => rate_on * 0.5,
            InjectionProcess::Periodic { rate, period, on } => {
                rate * (*on as f64) / (*period as f64)
            }
        }
    }
}

/// Packet-length distribution of a workload phase.
///
/// Labels (the `len…` segment of the phase grammar): `len4` (fixed 4
/// flits), `lenU1-8` (uniform on 1..=8), `lenB1-8p20` (bimodal: 8-flit
/// packets 20 % of the time, 1-flit otherwise). A phase without a length
/// spec uses the generator's global `packet_len` and consumes no extra RNG
/// draws, so pre-length configs keep their exact packet streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LengthSpec {
    /// Every packet is exactly `flits` long (no RNG draw).
    Fixed {
        /// Packet length in flits.
        flits: u32,
    },
    /// Lengths drawn uniformly from `min..=max` (one draw per packet).
    Uniform {
        /// Shortest packet, flits.
        min: u32,
        /// Longest packet, flits.
        max: u32,
    },
    /// Two-point mixture: `long` with probability `long_pct`/100, else
    /// `short` (one draw per packet).
    Bimodal {
        /// The common short length, flits.
        short: u32,
        /// The rare long length, flits.
        long: u32,
        /// Percentage of packets that are `long` (0..=100).
        long_pct: u32,
    },
}

impl LengthSpec {
    /// A fixed `flits`-flit length.
    pub fn fixed(flits: u32) -> Self {
        LengthSpec::Fixed { flits }
    }

    /// Canonical label, e.g. `len4`, `lenU1-8`, `lenB1-8p20`.
    pub fn label(&self) -> String {
        match self {
            LengthSpec::Fixed { flits } => format!("len{flits}"),
            LengthSpec::Uniform { min, max } => format!("lenU{min}-{max}"),
            LengthSpec::Bimodal {
                short,
                long,
                long_pct,
            } => format!("lenB{short}-{long}p{long_pct}"),
        }
    }

    /// Parse a canonical length label (inverse of [`LengthSpec::label`]).
    ///
    /// # Errors
    /// Returns an error for anything but `len<n>`, `lenU<min>-<max>`, or
    /// `lenB<short>-<long>p<pct>` with in-range parameters.
    pub fn parse(s: &str) -> SimResult<LengthSpec> {
        let bad = |why: String| SimError::InvalidConfig(format!("length spec `{s}`: {why}"));
        let num = |part: &str| -> SimResult<u32> {
            part.parse()
                .map_err(|e| bad(format!("bad number `{part}`: {e}")))
        };
        let rest = s
            .strip_prefix("len")
            .ok_or_else(|| bad("expected len<n>, lenU<min>-<max>, or lenB<s>-<l>p<pct>".into()))?;
        let spec = if let Some(rest) = rest.strip_prefix('U') {
            let (min, max) = rest
                .split_once('-')
                .ok_or_else(|| bad("uniform form is lenU<min>-<max>".into()))?;
            LengthSpec::Uniform {
                min: num(min)?,
                max: num(max)?,
            }
        } else if let Some(rest) = rest.strip_prefix('B') {
            let (lens, pct) = rest
                .split_once('p')
                .ok_or_else(|| bad("bimodal form is lenB<short>-<long>p<pct>".into()))?;
            let (short, long) = lens
                .split_once('-')
                .ok_or_else(|| bad("bimodal form is lenB<short>-<long>p<pct>".into()))?;
            LengthSpec::Bimodal {
                short: num(short)?,
                long: num(long)?,
                long_pct: num(pct)?,
            }
        } else {
            LengthSpec::Fixed { flits: num(rest)? }
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Check parameter ranges.
    ///
    /// # Errors
    /// Returns the first violated constraint (positive lengths, ordered
    /// bounds, percentage within 0..=100).
    pub fn validate(&self) -> SimResult<()> {
        let err = |why: String| Err(SimError::InvalidConfig(why));
        match *self {
            LengthSpec::Fixed { flits: 0 } => err("packet length must be positive".into()),
            LengthSpec::Uniform { min, max } if min == 0 || min > max => err(format!(
                "uniform length range {min}-{max} needs 0 < min <= max"
            )),
            LengthSpec::Bimodal {
                short,
                long,
                long_pct,
            } if short == 0 || short > long || long_pct > 100 => err(format!(
                "bimodal lengths {short}-{long}p{long_pct} need 0 < short <= long, pct <= 100"
            )),
            _ => Ok(()),
        }
    }

    /// Expected packet length in flits (for flit-rate normalization).
    pub fn mean_flits(&self) -> f64 {
        match *self {
            LengthSpec::Fixed { flits } => f64::from(flits),
            LengthSpec::Uniform { min, max } => (f64::from(min) + f64::from(max)) / 2.0,
            LengthSpec::Bimodal {
                short,
                long,
                long_pct,
            } => {
                let p = f64::from(long_pct) / 100.0;
                f64::from(long) * p + f64::from(short) * (1.0 - p)
            }
        }
    }

    /// Draw one packet length. Fixed specs consume no RNG draws.
    pub fn draw(&self, rng: &mut StdRng) -> u32 {
        match *self {
            LengthSpec::Fixed { flits } => flits,
            LengthSpec::Uniform { min, max } => rng.gen_range(min..=max),
            LengthSpec::Bimodal {
                short,
                long,
                long_pct,
            } => {
                if rng.gen_range(0u32..100) < long_pct {
                    long
                } else {
                    short
                }
            }
        }
    }
}

/// One phase of a workload: a destination pattern driven by an injection
/// process for `cycles` cycles (`0` = hold forever; only valid on the final
/// phase), with an optional per-phase packet-length distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadPhase {
    /// Destination-selection pattern in force during the phase.
    pub pattern: TrafficPattern,
    /// Injection process in force during the phase.
    pub process: InjectionProcess,
    /// Phase duration in cycles; `0` means the phase holds forever once
    /// reached (the stationary case).
    pub cycles: u64,
    /// Packet-length distribution; `None` (the default, and what legacy
    /// serialized phases deserialize to) uses the generator's global
    /// `packet_len` with byte-identical RNG draw order.
    #[serde(default)]
    pub length: Option<LengthSpec>,
}

impl WorkloadPhase {
    /// A phase binding `pattern` to `process` for `cycles` cycles.
    pub fn new(pattern: TrafficPattern, process: InjectionProcess, cycles: u64) -> Self {
        WorkloadPhase {
            pattern,
            process,
            cycles,
            length: None,
        }
    }

    /// A Bernoulli phase at `rate` flits/node/cycle (the legacy pairing).
    pub fn bernoulli(pattern: TrafficPattern, rate: f64, cycles: u64) -> Self {
        WorkloadPhase::new(pattern, InjectionProcess::Bernoulli { rate }, cycles)
    }

    /// The same phase with a packet-length distribution attached.
    #[must_use]
    pub fn with_length(mut self, length: LengthSpec) -> Self {
        self.length = Some(length);
        self
    }

    /// Expected packet length in flits, falling back to `default_len` (the
    /// generator's global `packet_len`) for phases without a length spec.
    pub fn mean_len_flits(&self, default_len: u32) -> f64 {
        self.length
            .as_ref()
            .map_or(f64::from(default_len), LengthSpec::mean_flits)
    }

    /// Canonical phase label: `<pattern>:<process>[:<len…>]` with
    /// `@<cycles>` appended for bounded phases.
    pub fn label(&self) -> String {
        let mut s = format!("{}:{}", self.pattern.name(), self.process.label());
        if let Some(length) = &self.length {
            s.push(':');
            s.push_str(&length.label());
        }
        if self.cycles > 0 {
            s.push_str(&format!("@{}", self.cycles));
        }
        s
    }
}

/// A composable workload: ordered [`WorkloadPhase`]s. If every phase is
/// bounded the schedule repeats cyclically; a final phase with `cycles == 0`
/// holds forever instead. A single unbounded phase is the stationary case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// The phase schedule, in order.
    pub phases: Vec<WorkloadPhase>,
}

impl WorkloadSpec {
    /// A workload from an explicit phase list.
    pub fn new(phases: Vec<WorkloadPhase>) -> Self {
        WorkloadSpec { phases }
    }

    /// A stationary workload: one unbounded phase of `pattern` × `process`.
    pub fn stationary(pattern: TrafficPattern, process: InjectionProcess) -> Self {
        WorkloadSpec::new(vec![WorkloadPhase::new(pattern, process, 0)])
    }

    /// The legacy pairing: a stationary Bernoulli workload at `rate`
    /// flits/node/cycle.
    pub fn bernoulli(pattern: TrafficPattern, rate: f64) -> Self {
        WorkloadSpec::stationary(pattern, InjectionProcess::Bernoulli { rate })
    }

    /// Canonical label: phase labels joined with `|` inside `ph[…]`, e.g.
    /// `ph[uniform:bern0.1@5000|tornado:burst0.3x0.05@5000]`.
    /// [`WorkloadSpec::parse`] inverts this exactly; sweep scenario labels,
    /// CLI flags, and report keys all use this one grammar.
    pub fn label(&self) -> String {
        let phases: Vec<String> = self.phases.iter().map(WorkloadPhase::label).collect();
        format!("ph[{}]", phases.join("|"))
    }

    /// Parse a canonical workload label (inverse of [`WorkloadSpec::label`]).
    /// The parsed spec is shape-checked (non-empty, ranges, `@0`/missing
    /// duration only on the final phase); topology fit is checked later by
    /// [`WorkloadSpec::validate`].
    ///
    /// # Errors
    /// Returns an error describing the first malformed phase.
    pub fn parse(s: &str) -> SimResult<WorkloadSpec> {
        let inner = s
            .strip_prefix("ph[")
            .and_then(|r| r.strip_suffix(']'))
            .ok_or_else(|| {
                SimError::InvalidConfig(format!(
                    "workload `{s}`: expected ph[<phase>|<phase>|…], e.g. \
                     ph[uniform:bern0.1@5000|tornado:burst0.3x0.05@5000]"
                ))
            })?;
        let mut phases = Vec::new();
        for part in inner.split('|') {
            let (pattern, rest) = part.split_once(':').ok_or_else(|| {
                SimError::InvalidConfig(format!(
                    "workload phase `{part}`: expected <pattern>:<process>[:len…][@cycles]"
                ))
            })?;
            let pattern = TrafficPattern::parse(pattern)?;
            let (rest, cycles) = match rest.split_once('@') {
                Some((rest, cycles)) => {
                    let cycles: u64 = cycles.parse().map_err(|e| {
                        SimError::InvalidConfig(format!(
                            "workload phase `{part}`: bad duration `{cycles}`: {e}"
                        ))
                    })?;
                    (rest, cycles)
                }
                None => (rest, 0),
            };
            // Process labels never contain `:`, so a second colon can only
            // introduce the optional length segment.
            let (process, length) = match rest.split_once(':') {
                Some((process, len)) => (process, Some(LengthSpec::parse(len)?)),
                None => (rest, None),
            };
            let process = InjectionProcess::parse(process)?;
            let mut phase = WorkloadPhase::new(pattern, process, cycles);
            phase.length = length;
            phases.push(phase);
        }
        let spec = WorkloadSpec::new(phases);
        spec.shape_check()?;
        Ok(spec)
    }

    /// Topology-independent structural checks: at least one phase, valid
    /// process and pattern parameters, and zero-duration (unbounded) phases
    /// only in final position.
    ///
    /// # Errors
    /// Returns the first violated constraint.
    pub fn shape_check(&self) -> SimResult<()> {
        if self.phases.is_empty() {
            return Err(SimError::InvalidTrace("workload has no phases".into()));
        }
        for (i, p) in self.phases.iter().enumerate() {
            if p.cycles == 0 && i + 1 != self.phases.len() {
                return Err(SimError::InvalidTrace(format!(
                    "phase {i} has zero duration but is not the final phase"
                )));
            }
            p.process.validate()?;
            p.pattern.shape_check()?;
            if let Some(length) = &p.length {
                length.validate()?;
            }
        }
        Ok(())
    }

    /// Validate the workload against a topology.
    ///
    /// # Errors
    /// Returns an error if the shape check fails or a phase pattern does not
    /// fit the topology.
    pub fn validate(&self, topo: &Topology) -> SimResult<()> {
        self.shape_check()?;
        for p in &self.phases {
            p.pattern.validate(topo)?;
        }
        Ok(())
    }

    /// The phase in force at absolute cycle `t`: its index, the phase, and
    /// the offset into it. Bounded schedules repeat; an unbounded final
    /// phase absorbs all remaining time.
    ///
    /// # Panics
    /// Panics on an empty phase list (rejected by validation).
    pub fn phase_at(&self, t: u64) -> (usize, &WorkloadPhase, u64) {
        let last = self.phases.len() - 1;
        let mut pos = if self.phases[last].cycles == 0 {
            t // terminal hold: no wrap-around
        } else {
            let total: u64 = self.phases.iter().map(|p| p.cycles).sum();
            t % total
        };
        for (i, p) in self.phases.iter().enumerate() {
            if i == last || pos < p.cycles {
                return (i, p, pos);
            }
            pos -= p.cycles;
        }
        unreachable!("phase lookup within total duration")
    }

    /// Long-run mean injection rate: cycle-weighted over one schedule
    /// period, or the final phase's rate when it holds forever.
    pub fn mean_rate(&self) -> f64 {
        match self.phases.last() {
            Some(last) if last.cycles == 0 => last.process.mean_rate(),
            _ => {
                let total: u64 = self.phases.iter().map(|p| p.cycles).sum();
                if total == 0 {
                    return 0.0;
                }
                self.phases
                    .iter()
                    .map(|p| p.process.mean_rate() * p.cycles as f64)
                    .sum::<f64>()
                    / total as f64
            }
        }
    }

    /// Long-run mean packet length in flits: cycle-weighted over one
    /// schedule period (or the terminal hold phase), with `default_len`
    /// standing in for phases that use the generator's global `packet_len`.
    pub fn mean_len_flits(&self, default_len: u32) -> f64 {
        match self.phases.last() {
            Some(last) if last.cycles == 0 => last.mean_len_flits(default_len),
            _ => {
                let total: u64 = self.phases.iter().map(|p| p.cycles).sum();
                if total == 0 {
                    return f64::from(default_len);
                }
                self.phases
                    .iter()
                    .map(|p| p.mean_len_flits(default_len) * p.cycles as f64)
                    .sum::<f64>()
                    / total as f64
            }
        }
    }
}

/// Traffic specification: a rate-based [`WorkloadSpec`] or an explicit
/// packet schedule (trace-driven traffic).
///
/// Serialization note: this enum has hand-written serde impls so legacy
/// configuration files keep loading. The pre-workload variants
/// `Stationary {pattern, rate}` and `PhaseTrace {phases: [{pattern, rate,
/// cycles}]}` deserialize into the equivalent single-/multi-phase Bernoulli
/// [`WorkloadSpec`] with byte-identical simulation behavior.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficSpec {
    /// A rate-based workload (phases of pattern × injection process).
    Workload(WorkloadSpec),
    /// An explicit packet schedule (trace-driven traffic). Packet lengths
    /// come from the trace, not the generator's `packet_len`.
    Trace(PacketTrace),
}

impl TrafficSpec {
    /// The legacy pairing: a stationary Bernoulli workload of `pattern` at
    /// `rate` flits/node/cycle.
    pub fn stationary(pattern: TrafficPattern, rate: f64) -> Self {
        TrafficSpec::Workload(WorkloadSpec::bernoulli(pattern, rate))
    }

    /// The workload spec, if this is rate-based traffic.
    pub fn workload(&self) -> Option<&WorkloadSpec> {
        match self {
            TrafficSpec::Workload(w) => Some(w),
            TrafficSpec::Trace(_) => None,
        }
    }

    /// Validate the spec against a topology.
    ///
    /// # Errors
    /// Returns an error if the workload or trace is invalid for the
    /// topology.
    pub fn validate(&self, topo: &Topology) -> SimResult<()> {
        match self {
            TrafficSpec::Workload(w) => w.validate(topo),
            TrafficSpec::Trace(trace) => trace.validate(topo),
        }
    }
}

impl serde::Serialize for TrafficSpec {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let build = || -> Result<serde::Value, serde::SerError> {
            let (tag, inner) = match self {
                TrafficSpec::Workload(w) => ("Workload", serde::to_value(w)?),
                TrafficSpec::Trace(t) => ("Trace", serde::to_value(t)?),
            };
            Ok(serde::Value::Map(vec![(tag.to_string(), inner)]))
        };
        match build() {
            Ok(v) => s.serialize_value(v),
            Err(e) => Err(<S::Error as serde::ser::Error>::custom(e)),
        }
    }
}

impl<'de> serde::Deserialize<'de> for TrafficSpec {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let fail = |msg: String| <D::Error as serde::de::Error>::custom(msg);
        let v = d.value();
        let entries = v
            .as_map()
            .filter(|m| m.len() == 1)
            .ok_or_else(|| fail("TrafficSpec: expected a single-variant object".into()))?;
        let (tag, inner) = &entries[0];
        fn field<'a, E: serde::de::Error>(
            obj: &'a serde::Value,
            tag: &str,
            key: &str,
        ) -> Result<&'a serde::Value, E> {
            obj.get(key)
                .ok_or_else(|| E::custom(format!("TrafficSpec::{tag}: missing field `{key}`")))
        }
        let field = |obj, key| field::<D::Error>(obj, tag, key);
        match tag.as_str() {
            "Workload" => Ok(TrafficSpec::Workload(
                serde::from_value(inner).map_err(|e| fail(e.to_string()))?,
            )),
            "Trace" => Ok(TrafficSpec::Trace(
                serde::from_value(inner).map_err(|e| fail(e.to_string()))?,
            )),
            // Legacy (pre-workload) forms, kept loadable forever: the
            // equivalent Bernoulli workloads reproduce them byte-for-byte.
            "Stationary" => {
                let pattern: TrafficPattern =
                    serde::from_value(field(inner, "pattern")?).map_err(|e| fail(e.to_string()))?;
                let rate: f64 =
                    serde::from_value(field(inner, "rate")?).map_err(|e| fail(e.to_string()))?;
                Ok(TrafficSpec::Workload(WorkloadSpec::bernoulli(
                    pattern, rate,
                )))
            }
            "PhaseTrace" => {
                let phases = field(inner, "phases")?
                    .as_seq()
                    .ok_or_else(|| fail("TrafficSpec::PhaseTrace: `phases` must be a list".into()))?
                    .iter()
                    .map(|p| {
                        let pattern: TrafficPattern = serde::from_value(field(p, "pattern")?)
                            .map_err(|e| fail(e.to_string()))?;
                        let rate: f64 = serde::from_value(field(p, "rate")?)
                            .map_err(|e| fail(e.to_string()))?;
                        let cycles: u64 = serde::from_value(field(p, "cycles")?)
                            .map_err(|e| fail(e.to_string()))?;
                        Ok(WorkloadPhase::bernoulli(pattern, rate, cycles))
                    })
                    .collect::<Result<Vec<WorkloadPhase>, D::Error>>()?;
                Ok(TrafficSpec::Workload(WorkloadSpec::new(phases)))
            }
            other => Err(fail(format!("TrafficSpec: unknown variant `{other}`"))),
        }
    }
}

/// Generates packets cycle by cycle under a [`TrafficSpec`].
///
/// ```
/// use noc_sim::{Topology, TrafficGenerator, TrafficPattern, TrafficSpec};
///
/// let topo = Topology::mesh(4, 4);
/// let spec = TrafficSpec::stationary(TrafficPattern::Transpose, 0.5);
/// let mut gen = TrafficGenerator::new(&topo, spec, 4, 42)?;
/// let packets = gen.tick(&topo, 0);
/// for p in &packets {
///     assert_ne!(p.src, p.dst);
/// }
/// # Ok::<(), noc_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct TrafficGenerator {
    spec: TrafficSpec,
    packet_len: u32,
    rng: StdRng,
    next_id: u64,
    generated: u64,
    /// Phase the generator last ticked in (`None` before the first tick and
    /// for trace-driven specs); phase entry resets per-node process state.
    cur_phase: Option<usize>,
    /// Per-node ON/OFF state for bursty phases.
    burst_on: Vec<bool>,
}

impl TrafficGenerator {
    /// Build a generator.
    ///
    /// # Errors
    /// Returns an error if the spec is invalid for the topology or
    /// `packet_len == 0`.
    pub fn new(topo: &Topology, spec: TrafficSpec, packet_len: u32, seed: u64) -> SimResult<Self> {
        if packet_len == 0 {
            return Err(SimError::InvalidConfig(
                "packet length must be positive".into(),
            ));
        }
        spec.validate(topo)?;
        Ok(TrafficGenerator {
            spec,
            packet_len,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
            generated: 0,
            cur_phase: None,
            burst_on: Vec::new(),
        })
    }

    /// Packet length in flits.
    pub fn packet_len(&self) -> u32 {
        self.packet_len
    }

    /// Total packets generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// The workload phase in force at cycle `t` (`None` for trace-driven
    /// specs).
    pub fn phase_index(&self, t: u64) -> Option<usize> {
        match &self.spec {
            TrafficSpec::Workload(w) => Some(w.phase_at(t).0),
            TrafficSpec::Trace(_) => None,
        }
    }

    /// The workload phase the last [`TrafficGenerator::tick`] ran in
    /// (`None` before the first tick and for trace-driven specs). Drives
    /// the per-phase stat buckets without a second schedule lookup.
    pub fn current_phase(&self) -> Option<usize> {
        self.cur_phase
    }

    /// Replace the traffic spec at runtime (used by experiments that steer
    /// traffic externally). Per-node process state resets.
    ///
    /// # Errors
    /// Returns an error if the new spec is invalid for the topology.
    pub fn set_spec(&mut self, topo: &Topology, spec: TrafficSpec) -> SimResult<()> {
        spec.validate(topo)?;
        self.spec = spec;
        self.cur_phase = None;
        self.burst_on.clear();
        Ok(())
    }

    /// Generate the packets created at cycle `t`. For rate-based specs,
    /// each node samples its phase's injection process with per-packet
    /// probability `rate / packet_len`, so the *flit* injection rate matches
    /// the spec (self-addressed packets are skipped). For trace-driven
    /// specs, the scheduled events are emitted verbatim.
    pub fn tick(&mut self, topo: &Topology, t: u64) -> Vec<Packet> {
        // Disjoint field borrows: the phase stays borrowed from `spec`
        // across the node loop while `rng`/`burst_on` mutate, so the hot
        // path never clones the phase (hotspot patterns carry a Vec).
        let TrafficGenerator {
            spec,
            packet_len,
            rng,
            next_id,
            generated,
            cur_phase,
            burst_on,
        } = self;
        let mut out = Vec::new();
        let (index, phase, offset) = match spec {
            TrafficSpec::Trace(trace) => {
                for e in trace.events_at(t) {
                    out.push(Packet {
                        id: PacketId(*next_id),
                        src: e.src,
                        dst: e.dst,
                        len_flits: e.len_flits,
                        created_at: t,
                    });
                    *next_id += 1;
                    *generated += 1;
                }
                return out;
            }
            TrafficSpec::Workload(w) => w.phase_at(t),
        };
        if *cur_phase != Some(index) {
            *cur_phase = Some(index);
            // Phase entry (re-)initializes per-node process state. This
            // consumes RNG draws only for processes that need state (bursty
            // ON/OFF), so stateless phases — Bernoulli in particular — keep
            // the exact draw sequence of the pre-workload generator.
            if let InjectionProcess::Bursty { .. } = phase.process {
                burst_on.clear();
                for _ in 0..topo.num_nodes() {
                    let on = rng.gen::<f64>() < 0.5;
                    burst_on.push(on);
                }
            }
        }
        // Rates are flits/node/cycle; a phase-level length spec normalizes
        // by its *mean* so offered flit load stays what the label says. A
        // phase without one divides by the global `packet_len` — the exact
        // pre-length expression, preserving byte-identical draw sequences.
        let plen = phase.mean_len_flits(*packet_len);
        for src in topo.nodes() {
            let inject = match &phase.process {
                InjectionProcess::Bernoulli { rate } => rng.gen::<f64>() < rate / plen,
                InjectionProcess::Bursty { rate_on, switch } => {
                    if rng.gen::<f64>() < *switch {
                        burst_on[src.0] = !burst_on[src.0];
                    }
                    burst_on[src.0] && rng.gen::<f64>() < rate_on / plen
                }
                InjectionProcess::Periodic { rate, period, on } => {
                    offset % period < *on && rng.gen::<f64>() < rate / plen
                }
            };
            if !inject {
                continue;
            }
            let dst = phase.pattern.destination(topo, src, rng);
            if dst == src {
                continue;
            }
            // Length draw comes after the destination draw and only for
            // phases with a spec (Fixed draws nothing), so legacy phases
            // consume the exact legacy RNG sequence.
            let len_flits = phase
                .length
                .as_ref()
                .map_or(*packet_len, |spec| spec.draw(rng));
            out.push(Packet {
                id: PacketId(*next_id),
                src,
                dst,
                len_flits,
                created_at: t,
            });
            *next_id += 1;
            *generated += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn uniform_on_single_node_returns_src() {
        let t = Topology::mesh(1, 1);
        let mut r = rng();
        assert_eq!(
            TrafficPattern::Uniform.destination(&t, NodeId(0), &mut r),
            NodeId(0)
        );
        // And the generator therefore produces no packets.
        let spec = TrafficSpec::stationary(TrafficPattern::Uniform, 0.9);
        let mut g = TrafficGenerator::new(&t, spec, 1, 0).unwrap();
        for c in 0..100 {
            assert!(g.tick(&t, c).is_empty());
        }
    }

    #[test]
    fn uniform_never_targets_self() {
        let t = Topology::mesh(4, 4);
        let mut r = rng();
        for _ in 0..500 {
            let d = TrafficPattern::Uniform.destination(&t, NodeId(5), &mut r);
            assert_ne!(d, NodeId(5));
            assert!(d.0 < 16);
        }
    }

    #[test]
    fn uniform_covers_all_destinations() {
        let t = Topology::mesh(4, 4);
        let mut r = rng();
        let mut seen = [false; 16];
        for _ in 0..2000 {
            seen[TrafficPattern::Uniform.destination(&t, NodeId(0), &mut r).0] = true;
        }
        assert!(
            seen.iter().skip(1).all(|&s| s),
            "all non-self nodes should be hit"
        );
        assert!(!seen[0]);
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let t = Topology::mesh(4, 4);
        let mut r = rng();
        // (1,2) = node 9 -> (2,1) = node 6.
        assert_eq!(
            TrafficPattern::Transpose.destination(&t, NodeId(9), &mut r),
            NodeId(6)
        );
    }

    #[test]
    fn bit_complement_mirrors_grid() {
        let t = Topology::mesh(4, 4);
        let mut r = rng();
        assert_eq!(
            TrafficPattern::BitComplement.destination(&t, NodeId(0), &mut r),
            NodeId(15)
        );
        assert_eq!(
            TrafficPattern::BitComplement.destination(&t, NodeId(5), &mut r),
            NodeId(10)
        );
    }

    #[test]
    fn bit_reverse_reverses_index_bits() {
        let t = Topology::mesh(4, 4);
        let mut r = rng();
        // 16 nodes -> 4 bits; 0b0001 -> 0b1000 = 8.
        assert_eq!(
            TrafficPattern::BitReverse.destination(&t, NodeId(1), &mut r),
            NodeId(8)
        );
        assert_eq!(
            TrafficPattern::BitReverse.destination(&t, NodeId(6), &mut r),
            NodeId(6)
        );
    }

    #[test]
    fn shuffle_rotates_index_bits() {
        let t = Topology::mesh(4, 4);
        let mut r = rng();
        // 0b1000 -> 0b0001.
        assert_eq!(
            TrafficPattern::Shuffle.destination(&t, NodeId(8), &mut r),
            NodeId(1)
        );
        // 0b0101 -> 0b1010.
        assert_eq!(
            TrafficPattern::Shuffle.destination(&t, NodeId(5), &mut r),
            NodeId(10)
        );
    }

    #[test]
    fn tornado_shifts_half_row() {
        let t = Topology::mesh(8, 8);
        let mut r = rng();
        // shift = ceil(8/2)-1 = 3: x=0 -> x=3, same row.
        assert_eq!(
            TrafficPattern::Tornado.destination(&t, NodeId(0), &mut r),
            NodeId(3)
        );
    }

    #[test]
    fn neighbor_wraps_row() {
        let t = Topology::mesh(4, 4);
        let mut r = rng();
        assert_eq!(
            TrafficPattern::Neighbor.destination(&t, NodeId(3), &mut r),
            NodeId(0)
        );
        assert_eq!(
            TrafficPattern::Neighbor.destination(&t, NodeId(0), &mut r),
            NodeId(1)
        );
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let t = Topology::mesh(4, 4);
        let mut r = rng();
        let p = TrafficPattern::Hotspot {
            hotspots: vec![NodeId(10)],
            fraction: 0.5,
        };
        let hits = (0..2000)
            .filter(|_| p.destination(&t, NodeId(0), &mut r) == NodeId(10))
            .count();
        // ~50% + small uniform contribution.
        assert!(
            (800..1300).contains(&hits),
            "hotspot hits {hits} outside expectation"
        );
    }

    #[test]
    fn pattern_names_roundtrip() {
        for (name, pattern) in TrafficPattern::NAMED {
            assert_eq!(pattern.name(), name);
            assert_eq!(TrafficPattern::from_name(name), Some(pattern));
        }
        // Hotspot labels carry their parameters and parse back (the former
        // name/from_name asymmetry).
        let p = TrafficPattern::Hotspot {
            hotspots: vec![NodeId(5), NodeId(6)],
            fraction: 0.3,
        };
        assert_eq!(p.name(), "hotspot5-6f0.3");
        assert_eq!(TrafficPattern::from_name(&p.name()), Some(p));
        let single = TrafficPattern::Hotspot {
            hotspots: vec![NodeId(0)],
            fraction: 0.125,
        };
        assert_eq!(TrafficPattern::from_name(&single.name()), Some(single));
        assert_eq!(TrafficPattern::from_name("hotspot"), None);
        assert_eq!(TrafficPattern::from_name("hotspotf0.5"), None);
        assert_eq!(TrafficPattern::from_name("hotspot1-xf0.5"), None);
        assert_eq!(TrafficPattern::from_name("mystery"), None);
    }

    #[test]
    fn pattern_validation_catches_mismatches() {
        let rect = Topology::mesh(4, 3);
        assert!(TrafficPattern::Transpose.validate(&rect).is_err());
        assert!(TrafficPattern::BitReverse.validate(&rect).is_err());
        assert!(TrafficPattern::Uniform.validate(&rect).is_ok());
        let square = Topology::mesh(4, 4);
        assert!(TrafficPattern::Transpose.validate(&square).is_ok());
        assert!(TrafficPattern::Hotspot {
            hotspots: vec![],
            fraction: 0.5
        }
        .validate(&square)
        .is_err());
        assert!(TrafficPattern::Hotspot {
            hotspots: vec![NodeId(99)],
            fraction: 0.5
        }
        .validate(&square)
        .is_err());
        assert!(TrafficPattern::Hotspot {
            hotspots: vec![NodeId(0)],
            fraction: 1.5
        }
        .validate(&square)
        .is_err());
    }

    #[test]
    fn process_labels_roundtrip() {
        let processes = [
            InjectionProcess::Bernoulli { rate: 0.1 },
            InjectionProcess::Bernoulli { rate: 0.0 },
            InjectionProcess::Bursty {
                rate_on: 0.3,
                switch: 0.05,
            },
            InjectionProcess::Periodic {
                rate: 0.4,
                period: 100,
                on: 20,
            },
        ];
        for p in processes {
            let label = p.label();
            assert_eq!(InjectionProcess::parse(&label).unwrap(), p, "{label}");
        }
        assert_eq!(
            InjectionProcess::Bursty {
                rate_on: 0.3,
                switch: 0.05
            }
            .label(),
            "burst0.3x0.05"
        );
        assert!(InjectionProcess::parse("bern1.5").is_err());
        assert!(InjectionProcess::parse("burst0.3").is_err());
        assert!(InjectionProcess::parse("pulse0.3x100").is_err());
        assert!(InjectionProcess::parse("pulse0.3x100x200").is_err());
        assert!(InjectionProcess::parse("burst0.3x0").is_err());
        assert!(InjectionProcess::parse("poisson0.1").is_err());
    }

    #[test]
    fn process_mean_rates() {
        assert_eq!(InjectionProcess::Bernoulli { rate: 0.2 }.mean_rate(), 0.2);
        assert_eq!(
            InjectionProcess::Bursty {
                rate_on: 0.3,
                switch: 0.05
            }
            .mean_rate(),
            0.15
        );
        assert_eq!(
            InjectionProcess::Periodic {
                rate: 0.4,
                period: 100,
                on: 25
            }
            .mean_rate(),
            0.1
        );
    }

    #[test]
    fn workload_labels_roundtrip() {
        let spec = WorkloadSpec::new(vec![
            WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.1, 5000),
            WorkloadPhase::new(
                TrafficPattern::Tornado,
                InjectionProcess::Bursty {
                    rate_on: 0.3,
                    switch: 0.05,
                },
                5000,
            ),
            WorkloadPhase::new(
                TrafficPattern::Hotspot {
                    hotspots: vec![NodeId(0), NodeId(12)],
                    fraction: 0.3,
                },
                InjectionProcess::Periodic {
                    rate: 0.4,
                    period: 200,
                    on: 50,
                },
                0,
            ),
        ]);
        let label = spec.label();
        assert_eq!(
            label,
            "ph[uniform:bern0.1@5000|tornado:burst0.3x0.05@5000|\
             hotspot0-12f0.3:pulse0.4x200x50]"
        );
        assert_eq!(WorkloadSpec::parse(&label).unwrap(), spec);

        // Stationary specs have an unbounded single phase and no `@`.
        let stationary = WorkloadSpec::bernoulli(TrafficPattern::Uniform, 0.1);
        assert_eq!(stationary.label(), "ph[uniform:bern0.1]");
        assert_eq!(
            WorkloadSpec::parse(&stationary.label()).unwrap(),
            stationary
        );

        assert!(WorkloadSpec::parse("uniform:bern0.1").is_err());
        assert!(WorkloadSpec::parse("ph[]").is_err());
        assert!(WorkloadSpec::parse("ph[uniform]").is_err());
        assert!(WorkloadSpec::parse("ph[mystery:bern0.1]").is_err());
        // Unbounded phases are only legal in final position.
        assert!(WorkloadSpec::parse("ph[uniform:bern0.1|tornado:bern0.2@100]").is_err());
        // Out-of-range hotspot parameters are caught at parse time, not
        // deferred to topology validation.
        assert!(WorkloadSpec::parse("ph[hotspot0f1.5:bern0.1]").is_err());
        assert!(TrafficPattern::parse("hotspot0f1.5").is_err());
        assert!(TrafficPattern::parse("hotspot0f0.5").is_ok());
        assert!(TrafficPattern::parse("mystery").is_err());
    }

    #[test]
    fn workload_mean_rate_is_cycle_weighted() {
        let spec = WorkloadSpec::new(vec![
            WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.1, 300),
            WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.4, 100),
        ]);
        assert!((spec.mean_rate() - 0.175).abs() < 1e-12);
        // A terminal hold dominates the long run.
        let held = WorkloadSpec::new(vec![
            WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.4, 100),
            WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.1, 0),
        ]);
        assert_eq!(held.mean_rate(), 0.1);
    }

    #[test]
    fn phase_lookup_cycles_and_holds() {
        let cyclic = WorkloadSpec::new(vec![
            WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.1, 100),
            WorkloadPhase::bernoulli(TrafficPattern::Transpose, 0.4, 50),
        ]);
        assert_eq!(cyclic.phase_at(0).0, 0);
        assert_eq!(cyclic.phase_at(99).0, 0);
        assert_eq!(cyclic.phase_at(100).0, 1);
        assert_eq!(cyclic.phase_at(149).0, 1);
        assert_eq!(cyclic.phase_at(150).0, 0, "bounded schedules repeat");
        assert_eq!(cyclic.phase_at(150).2, 0, "offset resets on wrap");

        let held = WorkloadSpec::new(vec![
            WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.1, 100),
            WorkloadPhase::bernoulli(TrafficPattern::Transpose, 0.4, 0),
        ]);
        assert_eq!(held.phase_at(99).0, 0);
        assert_eq!(held.phase_at(100).0, 1);
        assert_eq!(held.phase_at(1_000_000).0, 1, "terminal phase holds");
        assert_eq!(held.phase_at(1_000_100).2, 1_000_000);
    }

    #[test]
    fn generator_matches_requested_rate() {
        let t = Topology::mesh(4, 4);
        let spec = TrafficSpec::stationary(TrafficPattern::Uniform, 0.2);
        let mut g = TrafficGenerator::new(&t, spec, 4, 7).unwrap();
        let cycles = 20_000u64;
        let mut flits = 0u64;
        for c in 0..cycles {
            flits += g
                .tick(&t, c)
                .iter()
                .map(|p| p.len_flits as u64)
                .sum::<u64>();
        }
        let rate = flits as f64 / (cycles as f64 * 16.0);
        assert!(
            (rate - 0.2).abs() < 0.01,
            "measured flit rate {rate}, wanted 0.2"
        );
    }

    /// Measure a generator's mean flit rate and the index of dispersion
    /// (variance/mean) of offered flits aggregated over 32-cycle blocks —
    /// the same estimator the stats layer uses, which makes the temporal
    /// clumping of bursty sources visible.
    fn offered_stats(spec: TrafficSpec, cycles: u64) -> (f64, f64) {
        const BLOCK: u64 = 32;
        let t = Topology::mesh(4, 4);
        let mut g = TrafficGenerator::new(&t, spec, 4, 7).unwrap();
        let mut total = 0u64;
        let mut acc = 0u64;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let blocks = cycles / BLOCK;
        for c in 0..blocks * BLOCK {
            let flits: u64 = g.tick(&t, c).iter().map(|p| p.len_flits as u64).sum();
            total += flits;
            acc += flits;
            if (c + 1) % BLOCK == 0 {
                sum += acc as f64;
                sum_sq += (acc * acc) as f64;
                acc = 0;
            }
        }
        let mean = sum / blocks as f64;
        let var = sum_sq / blocks as f64 - mean * mean;
        (
            total as f64 / (blocks as f64 * BLOCK as f64 * 16.0),
            var / mean,
        )
    }

    #[test]
    fn bursty_process_matches_mean_rate_but_is_burstier() {
        let bern = TrafficSpec::stationary(TrafficPattern::Uniform, 0.2);
        let bursty = TrafficSpec::Workload(WorkloadSpec::stationary(
            TrafficPattern::Uniform,
            InjectionProcess::Bursty {
                rate_on: 0.4,
                switch: 0.02,
            },
        ));
        let (bern_rate, bern_disp) = offered_stats(bern, 40_000);
        let (bursty_rate, bursty_disp) = offered_stats(bursty, 40_000);
        assert!(
            (bursty_rate - 0.2).abs() < 0.02,
            "bursty mean rate {bursty_rate}, wanted ~0.2"
        );
        assert!((bern_rate - 0.2).abs() < 0.01);
        assert!(
            bursty_disp > 1.5 * bern_disp,
            "on/off bursts must clump arrivals: dispersion {bursty_disp} \
             vs Bernoulli {bern_disp}"
        );
    }

    #[test]
    fn periodic_process_pulses_in_lockstep() {
        let spec = TrafficSpec::Workload(WorkloadSpec::stationary(
            TrafficPattern::Uniform,
            InjectionProcess::Periodic {
                rate: 0.8,
                period: 100,
                on: 25,
            },
        ));
        let t = Topology::mesh(4, 4);
        let mut g = TrafficGenerator::new(&t, spec, 4, 7).unwrap();
        let mut on_window = 0u64;
        let mut off_window = 0u64;
        for c in 0..10_000 {
            let n = g.tick(&t, c).len() as u64;
            if c % 100 < 25 {
                on_window += n;
            } else {
                off_window += n;
            }
        }
        assert_eq!(off_window, 0, "no packets outside the pulse");
        assert!(on_window > 500, "pulses must carry the traffic");
    }

    #[test]
    fn phase_trace_switches_patterns() {
        let t = Topology::mesh(4, 4);
        let spec = WorkloadSpec::new(vec![
            WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.1, 100),
            WorkloadPhase::bernoulli(TrafficPattern::Transpose, 0.4, 50),
        ]);
        assert!(spec.validate(&t).is_ok());
        let rate_at = |t: u64| spec.phase_at(t).1.process.mean_rate();
        assert_eq!(rate_at(0), 0.1);
        assert_eq!(rate_at(99), 0.1);
        assert_eq!(rate_at(100), 0.4);
        assert_eq!(rate_at(149), 0.4);
        // Wraps around.
        assert_eq!(rate_at(150), 0.1);
    }

    #[test]
    fn invalid_specs_rejected() {
        let t = Topology::mesh(4, 4);
        assert!(TrafficSpec::stationary(TrafficPattern::Uniform, 1.5)
            .validate(&t)
            .is_err());
        assert!(WorkloadSpec::new(vec![]).validate(&t).is_err());
        // Zero duration anywhere but last is invalid.
        assert!(WorkloadSpec::new(vec![
            WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.1, 0),
            WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.1, 10),
        ])
        .validate(&t)
        .is_err());
        assert!(WorkloadSpec::stationary(
            TrafficPattern::Uniform,
            InjectionProcess::Bursty {
                rate_on: 0.2,
                switch: 0.0
            }
        )
        .validate(&t)
        .is_err());
        assert!(WorkloadSpec::stationary(
            TrafficPattern::Uniform,
            InjectionProcess::Periodic {
                rate: 0.2,
                period: 10,
                on: 11
            }
        )
        .validate(&t)
        .is_err());
        assert!(TrafficGenerator::new(
            &t,
            TrafficSpec::stationary(TrafficPattern::Uniform, 0.1),
            0,
            1
        )
        .is_err());
    }

    #[test]
    fn legacy_spec_json_deserializes_into_workloads() {
        // Pre-workload serialized forms must keep loading, as the
        // equivalent Bernoulli workloads.
        let stationary = r#"{"Stationary":{"pattern":"Uniform","rate":0.1}}"#;
        let spec: TrafficSpec = serde_json::from_str(stationary).unwrap();
        assert_eq!(spec, TrafficSpec::stationary(TrafficPattern::Uniform, 0.1));

        let phased = r#"{"PhaseTrace":{"phases":[
            {"pattern":"Uniform","rate":0.05,"cycles":100},
            {"pattern":"Transpose","rate":0.2,"cycles":50}]}}"#;
        let spec: TrafficSpec = serde_json::from_str(phased).unwrap();
        assert_eq!(
            spec,
            TrafficSpec::Workload(WorkloadSpec::new(vec![
                WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.05, 100),
                WorkloadPhase::bernoulli(TrafficPattern::Transpose, 0.2, 50),
            ]))
        );

        assert!(serde_json::from_str::<TrafficSpec>(r#"{"Mystery":{}}"#).is_err());
        assert!(serde_json::from_str::<TrafficSpec>(r#"{"Stationary":{"rate":0.1}}"#).is_err());
    }

    #[test]
    fn traffic_spec_serializes_roundtrip() {
        let specs = [
            TrafficSpec::stationary(TrafficPattern::Uniform, 0.1),
            TrafficSpec::Workload(WorkloadSpec::new(vec![
                WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.05, 100),
                WorkloadPhase::new(
                    TrafficPattern::Hotspot {
                        hotspots: vec![NodeId(3)],
                        fraction: 0.25,
                    },
                    InjectionProcess::Bursty {
                        rate_on: 0.3,
                        switch: 0.05,
                    },
                    0,
                ),
            ])),
        ];
        for spec in specs {
            let json = serde_json::to_string(&spec).unwrap();
            let back: TrafficSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "{json}");
        }
    }

    #[test]
    fn trace_spec_emits_scheduled_packets() {
        use crate::trace::{PacketTrace, TraceEvent};
        let t = Topology::mesh(4, 4);
        let trace = PacketTrace::new(
            vec![
                TraceEvent {
                    cycle: 1,
                    src: NodeId(0),
                    dst: NodeId(5),
                    len_flits: 3,
                },
                TraceEvent {
                    cycle: 1,
                    src: NodeId(2),
                    dst: NodeId(9),
                    len_flits: 1,
                },
                TraceEvent {
                    cycle: 4,
                    src: NodeId(7),
                    dst: NodeId(0),
                    len_flits: 2,
                },
            ],
            Some(10),
        )
        .unwrap();
        let mut g = TrafficGenerator::new(&t, TrafficSpec::Trace(trace), 5, 0).unwrap();
        assert!(g.tick(&t, 0).is_empty());
        assert_eq!(g.phase_index(0), None, "trace specs have no phases");
        let at1 = g.tick(&t, 1);
        assert_eq!(at1.len(), 2);
        assert_eq!(at1[0].len_flits, 3, "trace length overrides packet_len");
        assert_eq!(g.tick(&t, 4).len(), 1);
        // Repeats at cycle 11.
        assert_eq!(g.tick(&t, 11).len(), 2);
        assert_eq!(g.generated(), 5);
    }

    #[test]
    fn trace_spec_validates_topology() {
        use crate::trace::{PacketTrace, TraceEvent};
        let t = Topology::mesh(2, 2);
        let trace = PacketTrace::new(
            vec![TraceEvent {
                cycle: 0,
                src: NodeId(0),
                dst: NodeId(99),
                len_flits: 1,
            }],
            None,
        )
        .unwrap();
        assert!(TrafficSpec::Trace(trace).validate(&t).is_err());
    }

    #[test]
    fn length_spec_labels_round_trip() {
        let specs = [
            LengthSpec::fixed(4),
            LengthSpec::Uniform { min: 1, max: 8 },
            LengthSpec::Bimodal {
                short: 1,
                long: 8,
                long_pct: 20,
            },
        ];
        for spec in specs {
            let label = spec.label();
            assert_eq!(LengthSpec::parse(&label).unwrap(), spec, "{label}");
        }
        assert_eq!(LengthSpec::fixed(4).label(), "len4");
        assert_eq!(LengthSpec::Uniform { min: 1, max: 8 }.label(), "lenU1-8");
        assert_eq!(
            LengthSpec::Bimodal {
                short: 1,
                long: 8,
                long_pct: 20
            }
            .label(),
            "lenB1-8p20"
        );
    }

    #[test]
    fn length_spec_rejects_bad_parameters() {
        assert!(LengthSpec::parse("len0").is_err());
        assert!(LengthSpec::parse("lenU0-4").is_err());
        assert!(LengthSpec::parse("lenU5-2").is_err());
        assert!(LengthSpec::parse("lenB4-2p10").is_err());
        assert!(LengthSpec::parse("lenB1-8p120").is_err());
        assert!(LengthSpec::parse("len").is_err());
        assert!(LengthSpec::parse("lenU4").is_err());
        assert!(LengthSpec::parse("lenB1-8").is_err());
        assert!(LengthSpec::parse("flits4").is_err());
    }

    #[test]
    fn length_spec_means_and_draws() {
        assert_eq!(LengthSpec::fixed(4).mean_flits(), 4.0);
        assert_eq!(LengthSpec::Uniform { min: 1, max: 8 }.mean_flits(), 4.5);
        let bimodal = LengthSpec::Bimodal {
            short: 1,
            long: 9,
            long_pct: 25,
        };
        assert!((bimodal.mean_flits() - 3.0).abs() < 1e-12);

        let mut r = rng();
        for _ in 0..200 {
            assert_eq!(LengthSpec::fixed(4).draw(&mut r), 4);
        }
        let mut seen = [false; 9];
        for _ in 0..500 {
            let l = LengthSpec::Uniform { min: 1, max: 8 }.draw(&mut r);
            assert!((1..=8).contains(&l));
            seen[l as usize] = true;
        }
        assert!(seen[1..=8].iter().all(|&s| s), "all lengths drawn");
        let mut longs = 0;
        for _ in 0..1000 {
            match bimodal.draw(&mut r) {
                9 => longs += 1,
                1 => {}
                other => panic!("bimodal drew {other}"),
            }
        }
        assert!((150..400).contains(&longs), "~25% long: {longs}");
    }

    #[test]
    fn workload_labels_round_trip_length_segment() {
        let spec = WorkloadSpec::new(vec![
            WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.1, 500)
                .with_length(LengthSpec::fixed(8)),
            WorkloadPhase::bernoulli(TrafficPattern::Tornado, 0.2, 0).with_length(
                LengthSpec::Bimodal {
                    short: 1,
                    long: 8,
                    long_pct: 20,
                },
            ),
        ]);
        let label = spec.label();
        assert_eq!(
            label,
            "ph[uniform:bern0.1:len8@500|tornado:bern0.2:lenB1-8p20]"
        );
        assert_eq!(WorkloadSpec::parse(&label).unwrap(), spec);
        // Bad length segments fail at parse time.
        assert!(WorkloadSpec::parse("ph[uniform:bern0.1:len0]").is_err());
        assert!(WorkloadSpec::parse("ph[uniform:bern0.1:bogus]").is_err());
    }

    #[test]
    fn lengthed_phases_normalize_packet_rate_by_mean_length() {
        // Offered *flit* rate should track the process rate regardless of
        // packet length: len8 packets must be offered 8x more rarely.
        let t = Topology::mesh(8, 8);
        let flits = |len: Option<LengthSpec>| {
            let mut phase = WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.2, 0);
            if let Some(l) = len {
                phase = phase.with_length(l);
            }
            let spec = TrafficSpec::Workload(WorkloadSpec::new(vec![phase]));
            let mut g = TrafficGenerator::new(&t, spec, 1, 7).unwrap();
            let mut flits = 0u64;
            for c in 0..4000 {
                flits += g
                    .tick(&t, c)
                    .iter()
                    .map(|p| u64::from(p.len_flits))
                    .sum::<u64>();
            }
            flits as f64 / (4000.0 * 64.0)
        };
        let single = flits(None);
        let long = flits(Some(LengthSpec::fixed(8)));
        let mixed = flits(Some(LengthSpec::Uniform { min: 1, max: 8 }));
        for (name, rate) in [("single", single), ("len8", long), ("lenU1-8", mixed)] {
            assert!(
                (rate - 0.2).abs() / 0.2 < 0.1,
                "{name} flit rate {rate} should track offered 0.2"
            );
        }
    }

    #[test]
    fn fixed_length_spec_preserves_rng_stream() {
        // A `len(packet_len)` fixed spec consumes no RNG draws, so the
        // packet stream (ids, sources, destinations, timing) is
        // byte-identical to the legacy no-length-spec configuration.
        let t = Topology::mesh(4, 4);
        let run = |len: Option<LengthSpec>| {
            let mut phase = WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.3, 0);
            if let Some(l) = len {
                phase = phase.with_length(l);
            }
            let spec = TrafficSpec::Workload(WorkloadSpec::new(vec![phase]));
            let mut g = TrafficGenerator::new(&t, spec, 5, 11).unwrap();
            let mut out = Vec::new();
            for c in 0..500 {
                out.extend(g.tick(&t, c));
            }
            out
        };
        assert_eq!(run(None), run(Some(LengthSpec::fixed(5))));
    }

    #[test]
    fn packet_ids_are_unique_and_monotone() {
        let t = Topology::mesh(4, 4);
        let spec = TrafficSpec::stationary(TrafficPattern::Uniform, 0.5);
        let mut g = TrafficGenerator::new(&t, spec, 1, 3).unwrap();
        let mut last = None;
        for c in 0..100 {
            for p in g.tick(&t, c) {
                if let Some(l) = last {
                    assert!(p.id.0 > l);
                }
                last = Some(p.id.0);
            }
        }
        assert!(g.generated() > 0);
    }
}
