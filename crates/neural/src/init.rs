//! Weight initialization schemes.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Weight initialization scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Init {
    /// Xavier/Glorot uniform: `U(-√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`.
    /// Suits tanh/sigmoid layers.
    XavierUniform,
    /// He uniform: `U(-√(6/fan_in), +√(6/fan_in))`. Suits ReLU layers.
    HeUniform,
    /// All zeros (biases, tests).
    Zeros,
}

impl Init {
    /// Sample one weight for a layer with the given fan-in/fan-out.
    pub fn sample(self, fan_in: usize, fan_out: usize, rng: &mut StdRng) -> f32 {
        match self {
            Init::XavierUniform => {
                let limit = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
                rng.gen_range(-limit..=limit)
            }
            Init::HeUniform => {
                let limit = (6.0 / fan_in as f64).sqrt() as f32;
                rng.gen_range(-limit..=limit)
            }
            Init::Zeros => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        let limit_x = (6.0f64 / 96.0).sqrt() as f32;
        let limit_h = (6.0f64 / 64.0).sqrt() as f32;
        for _ in 0..1000 {
            let x = Init::XavierUniform.sample(64, 32, &mut rng);
            assert!(x.abs() <= limit_x);
            let h = Init::HeUniform.sample(64, 32, &mut rng);
            assert!(h.abs() <= limit_h);
            assert_eq!(Init::Zeros.sample(64, 32, &mut rng), 0.0);
        }
    }

    #[test]
    fn samples_are_spread_out() {
        let mut rng = StdRng::seed_from_u64(1);
        let vals: Vec<f32> = (0..500)
            .map(|_| Init::XavierUniform.sample(10, 10, &mut rng))
            .collect();
        let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean} should be near zero");
        let distinct = vals.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(distinct > 400, "values should not repeat");
    }
}
