//! Fault-injection liveness and determinism guarantees.
//!
//! The acceptance bar for degraded-fabric operation: under any single link
//! fault, every injected packet is either delivered or explicitly counted in
//! the drop/unreachable bucket within a bounded cycle budget — the network
//! never wedges. The liveness smoke below drives every routing algorithm on
//! 4×4 and 8×8 fabrics, healthy and faulted, and checks the packet
//! conservation identity `offered = ejected + dropped + still-queued`
//! after a full drain.

use noc_sim::{
    FaultEvent, FaultPlan, FaultTarget, NodeId, Port, RoutingAlgorithm, SimConfig, Simulator,
    TopologyKind, TrafficPattern, TrafficSpec,
};

/// All algorithm/topology pairings the simulator supports.
fn all_routings() -> Vec<(RoutingAlgorithm, TopologyKind)> {
    RoutingAlgorithm::NAMED
        .iter()
        .map(|&(_, alg)| {
            let kind = if alg.supports(TopologyKind::Mesh) {
                TopologyKind::Mesh
            } else {
                TopologyKind::Torus
            };
            (alg, kind)
        })
        .collect()
}

fn single_link_fault(kind: TopologyKind) -> FaultPlan {
    // An interior east-west link both mesh sizes have: 5 -> 6 works on 4x4
    // (row 1) and 8x8 (row 0); tori wrap but the link exists all the same.
    let _ = kind;
    FaultPlan::new(vec![FaultEvent {
        start: 0,
        duration: None,
        target: FaultTarget::Link {
            node: NodeId(5),
            port: Port::East,
        },
    }])
    .unwrap()
}

/// Drive `cfg` under uniform load, then stop traffic and drain. Panics if
/// the network wedges or a packet goes unaccounted.
fn assert_delivers_or_drops(mut cfg: SimConfig, what: &str) {
    cfg.seed = 11;
    let mut sim = Simulator::new(cfg).expect("valid faulted config");
    sim.run(2_000);
    // Stop offering new packets, then drain within a hard budget.
    sim.set_traffic(TrafficSpec::stationary(TrafficPattern::Uniform, 0.0))
        .expect("valid spec");
    let mut budget = 4_000u64;
    while sim.network().in_flight() > 0 {
        assert!(budget > 0, "{what}: network wedged with flits in flight");
        sim.run(100);
        budget = budget.saturating_sub(100);
    }
    let s = sim.stats();
    assert!(
        s.offered_packets > 50,
        "{what}: too little traffic to judge"
    );
    // Queued-but-never-injected packets at live sources survive the drain
    // (rate 0 still injects the backlog, so after a clean drain the queues
    // are empty and every offered packet is terminal).
    assert_eq!(
        s.offered_packets,
        s.ejected_packets + s.dropped_packets,
        "{what}: every offered packet must be delivered or counted dropped \
         (offered {}, ejected {}, dropped {})",
        s.offered_packets,
        s.ejected_packets,
        s.dropped_packets
    );
    // Flit-level conservation: every injected flit either ejected or was
    // dropped (dropped_flits may additionally cover never-injected flits of
    // source-dropped packets, hence >=).
    assert!(
        s.ejected_flits <= s.injected_flits,
        "{what}: cannot eject more than was injected"
    );
    assert!(
        s.ejected_flits + s.dropped_flits >= s.injected_flits,
        "{what}: injected flits leaked (injected {}, ejected {}, dropped {})",
        s.injected_flits,
        s.ejected_flits,
        s.dropped_flits
    );
}

#[test]
fn every_routing_delivers_or_drops_on_4x4() {
    for (alg, kind) in all_routings() {
        for faulted in [false, true] {
            let mut cfg = SimConfig::default()
                .with_size(4, 4)
                .with_regions(2, 2)
                .with_traffic(TrafficPattern::Uniform, 0.08)
                .with_routing(alg);
            cfg.kind = kind;
            if faulted {
                cfg = cfg.with_faults(single_link_fault(kind));
            }
            assert_delivers_or_drops(cfg, &format!("4x4/{:?}/faulted={faulted}", alg));
        }
    }
}

#[test]
fn every_routing_delivers_or_drops_on_8x8() {
    for (alg, kind) in all_routings() {
        for faulted in [false, true] {
            let mut cfg = SimConfig::default()
                .with_size(8, 8)
                .with_traffic(TrafficPattern::Uniform, 0.06)
                .with_routing(alg);
            cfg.kind = kind;
            if faulted {
                cfg = cfg.with_faults(single_link_fault(kind));
            }
            assert_delivers_or_drops(cfg, &format!("8x8/{:?}/faulted={faulted}", alg));
        }
    }
}

/// Every torus-capable routing, healthy and faulted, on both fabric sizes.
/// The faulted runs kill a *wrap* link — the torus's defining wire — so the
/// dateline path is exercised, not just the mesh-like interior.
#[test]
fn every_torus_routing_delivers_or_drops_with_a_dead_wrap_link() {
    let torus_routings: Vec<RoutingAlgorithm> = RoutingAlgorithm::NAMED
        .iter()
        .map(|&(_, alg)| alg)
        .filter(|alg| alg.supports(TopologyKind::Torus))
        .collect();
    assert!(
        torus_routings.len() >= 2,
        "DOR and minimal-adaptive at least"
    );
    for (w, rate) in [(4usize, 0.08), (8usize, 0.06)] {
        // The east wrap wire out of the top-right corner.
        let wrap = FaultPlan::new(vec![FaultEvent {
            start: 0,
            duration: None,
            target: FaultTarget::Link {
                node: NodeId(w - 1),
                port: Port::East,
            },
        }])
        .unwrap();
        for &alg in &torus_routings {
            for faulted in [false, true] {
                let mut cfg = SimConfig::default()
                    .with_size(w, w)
                    .with_regions(2, 2)
                    .with_traffic(TrafficPattern::Uniform, rate)
                    .with_routing(alg);
                cfg.kind = TopologyKind::Torus;
                if faulted {
                    cfg = cfg.with_faults(wrap.clone());
                }
                assert_delivers_or_drops(cfg, &format!("{w}x{w} torus/{alg:?}/faulted={faulted}"));
            }
        }
    }
}

/// The tentpole acceptance bar: minimal-adaptive torus routing drains
/// explicit all-to-all traffic on a faulted 8x8 torus — every packet
/// delivered or counted dropped, nothing wedged, and the adaptive
/// alternative saves the overwhelming majority of the traffic.
#[test]
fn adaptive_torus_drains_all_to_all_on_a_faulted_8x8() {
    use noc_sim::{Network, Packet, PacketId, StatsCollector};
    let mut cfg = SimConfig::default()
        .with_size(8, 8)
        .with_routing(RoutingAlgorithm::TorusMinAdaptive)
        .with_packet_len(2);
    cfg.kind = TopologyKind::Torus;
    // One wrap link and one interior link die before any traffic moves.
    cfg = cfg.with_faults(
        FaultPlan::new(vec![
            FaultEvent {
                start: 0,
                duration: None,
                target: FaultTarget::Link {
                    node: NodeId(7),
                    port: Port::East,
                },
            },
            FaultEvent {
                start: 0,
                duration: None,
                target: FaultTarget::Link {
                    node: NodeId(27),
                    port: Port::South,
                },
            },
        ])
        .unwrap(),
    );
    let mut net = Network::new(&cfg).expect("valid faulted torus");
    let mut stats = StatsCollector::new(net.regions().num_regions());
    let mut offered = 0u64;
    for src in 0..64usize {
        for dst in 0..64usize {
            if src != dst {
                net.offer(
                    vec![Packet {
                        id: PacketId(offered),
                        src: NodeId(src),
                        dst: NodeId(dst),
                        len_flits: 2,
                        created_at: 0,
                    }],
                    &mut stats,
                );
                offered += 1;
            }
        }
    }
    let mut budget = 60_000u32;
    while net.in_flight() > 0 {
        assert!(budget > 0, "faulted torus wedged with flits in flight");
        net.step(&mut stats);
        budget -= 1;
    }
    assert_eq!(
        stats.ejected_packets + stats.dropped_packets,
        offered,
        "every all-to-all packet must be delivered or counted dropped"
    );
    assert!(
        stats.dropped_packets * 20 < offered,
        "adaptive routing must save the vast majority: {} of {} dropped",
        stats.dropped_packets,
        offered
    );
}

/// Deterministic algorithms must actually drop across the dead link (they
/// cannot reroute), adaptive ones with a minimal alternative must save most
/// of the traffic. Both end drained either way.
#[test]
fn drops_happen_where_expected() {
    let run = |alg: RoutingAlgorithm| {
        let cfg = SimConfig::default()
            .with_size(4, 4)
            .with_regions(2, 2)
            .with_traffic(TrafficPattern::Uniform, 0.08)
            .with_routing(alg)
            .with_faults(single_link_fault(TopologyKind::Mesh))
            .with_seed(11);
        let mut sim = Simulator::new(cfg).expect("valid config");
        sim.run(4_000);
        let s = sim.stats();
        (s.ejected_packets, s.dropped_packets)
    };
    let (xy_ok, xy_drop) = run(RoutingAlgorithm::Xy);
    assert!(xy_drop > 0, "XY has no alternative to a dead link");
    assert!(xy_ok > 0, "unaffected node pairs still deliver");
    let (oe_ok, oe_drop) = run(RoutingAlgorithm::OddEven);
    assert!(oe_ok > 0);
    assert!(
        oe_drop < xy_drop,
        "odd-even reroutes around the fault more often than XY \
         (oe {oe_drop} vs xy {xy_drop} drops)"
    );
}

/// Same faulted scenario, same seed -> bit-identical stats. The fault path
/// must not introduce any scheduling or iteration-order nondeterminism.
#[test]
fn faulted_runs_are_deterministic() {
    let run = || {
        let cfg = SimConfig::default()
            .with_size(4, 4)
            .with_regions(2, 2)
            .with_traffic(TrafficPattern::Uniform, 0.12)
            .with_routing(RoutingAlgorithm::WestFirst)
            .with_faults(
                FaultPlan::new(vec![
                    FaultEvent {
                        start: 100,
                        duration: Some(500),
                        target: FaultTarget::Link {
                            node: NodeId(5),
                            port: Port::East,
                        },
                    },
                    FaultEvent {
                        start: 300,
                        duration: None,
                        target: FaultTarget::Router { node: NodeId(10) },
                    },
                ])
                .unwrap(),
            )
            .with_seed(3);
        let mut sim = Simulator::new(cfg).expect("valid config");
        sim.run(2_500);
        (
            sim.stats().injected_flits,
            sim.stats().ejected_flits,
            sim.stats().dropped_flits,
            sim.stats().dropped_packets,
            sim.stats().sum_packet_latency,
            sim.stats().energy.total_pj(),
        )
    };
    let a = run();
    assert_eq!(a, run(), "faulted runs must reproduce exactly");
    assert!(a.2 > 0, "the scenario must actually exercise drops");
}
