//! Dynamic voltage and frequency scaling (DVFS).
//!
//! The configuration knob the self-configuration agent actuates: each
//! *region* of the chip (a rectangular block of routers) runs at one of a
//! discrete set of voltage/frequency levels. Frequency scaling is modeled in
//! the cycle-driven simulator with a phase accumulator: a router at relative
//! frequency `f ∈ (0, 1]` performs its pipeline on a fraction `f` of global
//! clock cycles. Dynamic energy scales with `V²` and leakage with `V`
//! relative to the nominal voltage.

use crate::error::{SimError, SimResult};
use crate::topology::{NodeId, Topology};
use serde::{Deserialize, Serialize};

/// One voltage/frequency operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VfLevel {
    /// Supply voltage in volts.
    pub voltage: f64,
    /// Frequency relative to the nominal (maximum) clock, in `(0, 1]`.
    pub freq_scale: f64,
}

impl VfLevel {
    /// Dynamic energy multiplier relative to nominal voltage: `(V/V_nom)²`.
    pub fn dynamic_scale(&self, v_nom: f64) -> f64 {
        let r = self.voltage / v_nom;
        r * r
    }

    /// Leakage power multiplier relative to nominal voltage: `V/V_nom`.
    pub fn leakage_scale(&self, v_nom: f64) -> f64 {
        self.voltage / v_nom
    }
}

/// An ordered table of V/F levels, from slowest/lowest-power (index 0) to
/// fastest/highest-power (last index). The last level is the nominal point.
///
/// ```
/// use noc_sim::VfTable;
///
/// let table = VfTable::four_level();
/// let low = table.level(0)?;
/// // Running at 0.6 V instead of the nominal 1.1 V costs (0.6/1.1)² of the
/// // dynamic energy per event.
/// assert!(low.dynamic_scale(table.nominal_voltage()) < 0.3);
/// # Ok::<(), noc_sim::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VfTable {
    levels: Vec<VfLevel>,
}

impl VfTable {
    /// Build a table from explicit levels, ordered ascending by frequency.
    ///
    /// # Errors
    /// Returns an error if the table is empty, any frequency scale is outside
    /// `(0, 1]`, any voltage is non-positive, or levels are not strictly
    /// increasing in frequency.
    pub fn new(levels: Vec<VfLevel>) -> SimResult<Self> {
        if levels.is_empty() {
            return Err(SimError::InvalidConfig(
                "V/F table must not be empty".into(),
            ));
        }
        for l in &levels {
            if !(l.freq_scale > 0.0 && l.freq_scale <= 1.0) {
                return Err(SimError::InvalidConfig(format!(
                    "frequency scale {} outside (0, 1]",
                    l.freq_scale
                )));
            }
            if l.voltage <= 0.0 {
                return Err(SimError::InvalidConfig(format!(
                    "non-positive voltage {}",
                    l.voltage
                )));
            }
        }
        if levels
            .windows(2)
            .any(|w| w[0].freq_scale >= w[1].freq_scale)
        {
            return Err(SimError::InvalidConfig(
                "V/F levels must be strictly increasing in frequency".into(),
            ));
        }
        Ok(VfTable { levels })
    }

    /// The four-level table used by the paper-style experiments:
    /// (0.6 V, 0.4×), (0.8 V, 0.6×), (1.0 V, 0.8×), (1.1 V, 1.0×).
    pub fn four_level() -> Self {
        VfTable::new(vec![
            VfLevel {
                voltage: 0.6,
                freq_scale: 0.4,
            },
            VfLevel {
                voltage: 0.8,
                freq_scale: 0.6,
            },
            VfLevel {
                voltage: 1.0,
                freq_scale: 0.8,
            },
            VfLevel {
                voltage: 1.1,
                freq_scale: 1.0,
            },
        ])
        .expect("built-in table is valid")
    }

    /// A two-level table (low / nominal), useful for tabular baselines.
    pub fn two_level() -> Self {
        VfTable::new(vec![
            VfLevel {
                voltage: 0.7,
                freq_scale: 0.5,
            },
            VfLevel {
                voltage: 1.1,
                freq_scale: 1.0,
            },
        ])
        .expect("built-in table is valid")
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Level at `idx`.
    ///
    /// # Errors
    /// Returns an error if the index is out of range.
    pub fn level(&self, idx: usize) -> SimResult<VfLevel> {
        self.levels
            .get(idx)
            .copied()
            .ok_or(SimError::VfLevelOutOfRange {
                level: idx,
                levels: self.levels.len(),
            })
    }

    /// Index of the nominal (fastest) level.
    pub fn max_level(&self) -> usize {
        self.levels.len() - 1
    }

    /// Nominal voltage (the voltage of the fastest level).
    pub fn nominal_voltage(&self) -> f64 {
        self.levels[self.levels.len() - 1].voltage
    }

    /// All levels in order.
    pub fn levels(&self) -> &[VfLevel] {
        &self.levels
    }
}

impl Default for VfTable {
    fn default() -> Self {
        VfTable::four_level()
    }
}

/// Partition of the grid into `regions_x × regions_y` rectangular regions,
/// each independently voltage/frequency scaled.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionMap {
    regions_x: usize,
    regions_y: usize,
    width: usize,
    height: usize,
}

impl RegionMap {
    /// Build a region map over a topology.
    ///
    /// # Errors
    /// Returns an error if either region count is zero or exceeds the grid
    /// dimension.
    pub fn new(topo: &Topology, regions_x: usize, regions_y: usize) -> SimResult<Self> {
        if regions_x == 0 || regions_y == 0 {
            return Err(SimError::InvalidConfig(
                "region counts must be positive".into(),
            ));
        }
        if regions_x > topo.width() || regions_y > topo.height() {
            return Err(SimError::InvalidConfig(format!(
                "region grid {regions_x}x{regions_y} exceeds topology {}x{}",
                topo.width(),
                topo.height()
            )));
        }
        Ok(RegionMap {
            regions_x,
            regions_y,
            width: topo.width(),
            height: topo.height(),
        })
    }

    /// Total number of regions.
    pub fn num_regions(&self) -> usize {
        self.regions_x * self.regions_y
    }

    /// Region containing a node.
    pub fn region_of(&self, topo: &Topology, node: NodeId) -> usize {
        let c = topo.coord(node);
        let rx = c.x * self.regions_x / self.width;
        let ry = c.y * self.regions_y / self.height;
        ry * self.regions_x + rx
    }

    /// All nodes belonging to `region`.
    pub fn nodes_in(&self, topo: &Topology, region: usize) -> Vec<NodeId> {
        topo.nodes()
            .filter(|&n| self.region_of(topo, n) == region)
            .collect()
    }
}

/// A forced-throttle window (thermal/power emergency injection): while
/// active, the region's effective V/F level is capped at `level` regardless
/// of what the controller requests. Used to test controller reaction to
/// events outside their own actuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThrottleEvent {
    /// First cycle of the emergency.
    pub start: u64,
    /// Duration in cycles.
    pub duration: u64,
    /// Affected region.
    pub region: usize,
    /// Level cap imposed while active.
    pub level: usize,
}

impl ThrottleEvent {
    /// Whether the emergency is active at `cycle`.
    pub fn active_at(&self, cycle: u64) -> bool {
        cycle >= self.start && cycle < self.start.saturating_add(self.duration)
    }
}

/// Per-node frequency divider implemented as a phase accumulator, allowing
/// fractional frequency ratios.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClockGate {
    freq_scale: f64,
    phase: f64,
}

impl ClockGate {
    /// A gate running at the given relative frequency.
    pub fn new(freq_scale: f64) -> Self {
        ClockGate {
            freq_scale,
            phase: 0.0,
        }
    }

    /// Change the relative frequency (takes effect from the next tick).
    pub fn set_freq_scale(&mut self, freq_scale: f64) {
        self.freq_scale = freq_scale;
    }

    /// Current relative frequency.
    pub fn freq_scale(&self) -> f64 {
        self.freq_scale
    }

    /// Advance one global clock cycle; returns whether the gated domain is
    /// active this cycle. Over `N` cycles the domain is active
    /// `round(N * freq_scale)` times.
    pub fn tick(&mut self) -> bool {
        self.phase += self.freq_scale;
        if self.phase >= 1.0 - 1e-12 {
            self.phase -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_level_table_is_monotone() {
        let t = VfTable::four_level();
        assert_eq!(t.num_levels(), 4);
        assert_eq!(t.max_level(), 3);
        for w in t.levels().windows(2) {
            assert!(w[0].freq_scale < w[1].freq_scale);
            assert!(w[0].voltage < w[1].voltage);
        }
    }

    #[test]
    fn energy_scales_quadratically() {
        let t = VfTable::four_level();
        let v_nom = t.nominal_voltage();
        let low = t.level(0).unwrap();
        let expected = (0.6 / 1.1) * (0.6 / 1.1);
        assert!((low.dynamic_scale(v_nom) - expected).abs() < 1e-12);
        assert!((low.leakage_scale(v_nom) - 0.6 / 1.1).abs() < 1e-12);
    }

    #[test]
    fn invalid_tables_rejected() {
        assert!(VfTable::new(vec![]).is_err());
        assert!(VfTable::new(vec![VfLevel {
            voltage: 1.0,
            freq_scale: 1.5
        }])
        .is_err());
        assert!(VfTable::new(vec![VfLevel {
            voltage: -1.0,
            freq_scale: 0.5
        }])
        .is_err());
        assert!(VfTable::new(vec![
            VfLevel {
                voltage: 1.0,
                freq_scale: 0.8
            },
            VfLevel {
                voltage: 1.1,
                freq_scale: 0.8
            },
        ])
        .is_err());
    }

    #[test]
    fn level_out_of_range_is_error() {
        let t = VfTable::two_level();
        assert_eq!(
            t.level(5),
            Err(SimError::VfLevelOutOfRange {
                level: 5,
                levels: 2
            })
        );
    }

    #[test]
    fn region_map_partitions_grid() {
        let topo = Topology::mesh(8, 8);
        let rm = RegionMap::new(&topo, 2, 2).unwrap();
        assert_eq!(rm.num_regions(), 4);
        // Top-left quadrant is region 0.
        assert_eq!(rm.region_of(&topo, NodeId(0)), 0);
        // Top-right quadrant is region 1.
        assert_eq!(rm.region_of(&topo, NodeId(7)), 1);
        // Bottom-left is region 2, bottom-right region 3.
        assert_eq!(rm.region_of(&topo, NodeId(56)), 2);
        assert_eq!(rm.region_of(&topo, NodeId(63)), 3);
        // Every node is in exactly one region; regions cover the grid evenly.
        let mut counts = vec![0usize; 4];
        for n in topo.nodes() {
            counts[rm.region_of(&topo, n)] += 1;
        }
        assert_eq!(counts, vec![16, 16, 16, 16]);
    }

    #[test]
    fn region_nodes_in_is_consistent() {
        let topo = Topology::mesh(4, 4);
        let rm = RegionMap::new(&topo, 2, 1).unwrap();
        let all: usize = (0..rm.num_regions())
            .map(|r| rm.nodes_in(&topo, r).len())
            .sum();
        assert_eq!(all, topo.num_nodes());
    }

    #[test]
    fn single_region_covers_everything() {
        let topo = Topology::mesh(5, 3);
        let rm = RegionMap::new(&topo, 1, 1).unwrap();
        for n in topo.nodes() {
            assert_eq!(rm.region_of(&topo, n), 0);
        }
    }

    #[test]
    fn invalid_region_map_rejected() {
        let topo = Topology::mesh(4, 4);
        assert!(RegionMap::new(&topo, 0, 1).is_err());
        assert!(RegionMap::new(&topo, 5, 1).is_err());
    }

    #[test]
    fn throttle_event_window_is_half_open() {
        let t = ThrottleEvent {
            start: 100,
            duration: 50,
            region: 0,
            level: 0,
        };
        assert!(!t.active_at(99));
        assert!(t.active_at(100));
        assert!(t.active_at(149));
        assert!(!t.active_at(150));
    }

    #[test]
    fn clock_gate_full_speed_always_active() {
        let mut g = ClockGate::new(1.0);
        assert!((0..100).all(|_| g.tick()));
    }

    #[test]
    fn clock_gate_half_speed_alternates() {
        let mut g = ClockGate::new(0.5);
        let active = (0..100).filter(|_| g.tick()).count();
        assert_eq!(active, 50);
    }

    #[test]
    fn clock_gate_fractional_rate_converges() {
        let mut g = ClockGate::new(0.4);
        let active = (0..1000).filter(|_| g.tick()).count();
        assert_eq!(active, 400);
    }
}
